//! Defining a scheduling strategy outside the workspace and running it
//! through the whole evaluation pipeline.
//!
//! The `Scheduler` trait is the extension point of OOCTS: implement `name()`
//! and `schedule()`, register the strategy, and the experiment runner, the
//! Dolan–Moré profiles and the CSV export treat it exactly like the paper's
//! built-ins.
//!
//! The strategy implemented here — `DeepestFirst` — always recurses into the
//! child with the tallest subtree first. Not a good idea (the paper's
//! `PostOrderMinIO` orders children by an exact analysis instead), but that
//! is the point: the harness makes it easy to measure *how* bad an idea is.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use std::sync::Arc;

use oocts::prelude::*;
use oocts_gen::dataset::{synth_dataset, DatasetConfig};
use oocts_profile::bounds::MemoryBound;
use oocts_tree::TreeError;

/// A postorder that visits the child with the deepest subtree first.
#[derive(Debug, Clone, Copy)]
struct DeepestFirst;

impl Scheduler for DeepestFirst {
    fn name(&self) -> String {
        "DeepestFirst".to_string()
    }

    fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
        fn height(tree: &Tree, node: NodeId) -> usize {
            tree.children(node)
                .iter()
                .map(|&c| 1 + height(tree, c))
                .max()
                .unwrap_or(0)
        }
        fn emit(tree: &Tree, node: NodeId, order: &mut Vec<NodeId>) {
            let mut children = tree.children(node).to_vec();
            children.sort_by_key(|&c| std::cmp::Reverse(height(tree, c)));
            for c in children {
                emit(tree, c, order);
            }
            order.push(node);
        }
        let mut order = Vec::with_capacity(tree.len());
        emit(tree, tree.root(), &mut order);
        Ok(Schedule::new(order))
    }
}

fn main() {
    // Registration makes the strategy addressable by name — from `--algos`
    // flags, config files, or anything else that stores a string.
    let mut registry = SchedulerRegistry::with_builtins();
    registry
        .register(Arc::new(DeepestFirst))
        .expect("name is free");
    println!("registered schedulers: {}\n", registry.names().join(", "));

    // A small SYNTH sample, compared against two built-ins picked by name.
    let instances: Vec<(String, Tree)> = synth_dataset(&DatasetConfig {
        synth_instances: 20,
        synth_nodes: 500,
        trees_scale: 1,
        seed: 7,
    })
    .into_iter()
    .map(|i| (i.name, i.tree))
    .collect();

    let schedulers: Vec<Arc<dyn Scheduler>> = ["PostOrderMinIO", "RecExpand", "DeepestFirst"]
        .iter()
        .map(|name| registry.get(name).expect("registered"))
        .collect();
    let config = ExperimentConfig::new(schedulers, MemoryBound::Middle);
    let results = run_experiment(&instances, &config).expect("feasible bounds");

    let profile = results.profile();
    println!(
        "{}",
        profile.to_ascii(&[0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.00])
    );
    for (i, name) in results.scheduler_names().iter().enumerate() {
        println!(
            "{name:<16} win-rate {:>5.1}%   mean overhead {:>7.2}%",
            profile.win_rate(i) * 100.0,
            profile.mean_overhead(i) * 100.0
        );
    }
    println!("\nCSV head:");
    for line in results.to_csv().lines().take(4) {
        println!("{line}");
    }
}
