//! Quickstart: build a small task tree, inspect its memory bounds, and
//! compare every scheduling strategy of the paper on it.
//!
//! Run with: `cargo run --example quickstart`

use oocts::prelude::*;
use oocts_core::brute_force_min_io;
use oocts_profile::bounds::{MemoryBound, MemoryBounds};
use oocts_tree::dot::to_dot_annotated;

fn main() {
    // The Figure 6 tree of the paper: two chains below a common root.
    // Weights are the sizes of the data each task passes to its parent.
    let mut b = TreeBuilder::new();
    let root = b.add_root(1);
    let l1 = b.add_child(root, 4);
    let l2 = b.add_child(l1, 8);
    let l3 = b.add_child(l2, 2);
    b.add_child(l3, 9);
    let r1 = b.add_child(root, 6);
    let r2 = b.add_child(r1, 4);
    b.add_child(r2, 10);
    let tree = b.build().expect("valid tree");

    // Memory bounds: LB is the minimum memory to run any single task,
    // Peak_incore the memory needed to avoid I/O entirely.
    let bounds = MemoryBounds::of(&tree);
    println!(
        "tree with {} tasks, total data {} units",
        tree.len(),
        tree.total_weight()
    );
    println!(
        "LB = {}, Peak_incore = {}",
        bounds.lower_bound, bounds.peak_incore
    );

    // Execute out-of-core with the paper's memory bound M = 10.
    let memory = bounds.memory(MemoryBound::Middle).max(10);
    println!("\nout-of-core execution with M = {memory}:");
    let (_, optimal) = brute_force_min_io(&tree, memory).expect("feasible");
    println!("  optimal I/O volume (brute force): {optimal}");
    for scheduler in builtin_schedulers() {
        let report = scheduler
            .solve(&tree, memory)
            .expect("feasible memory bound");
        println!(
            "  {:<22} {:>3} I/Os   performance {:.3}   scheduling {:?}",
            report.scheduler, report.io_volume, report.performance, report.wall_time
        );
    }

    // Export the best schedule as an annotated DOT graph.
    let best = FullRecExpand.solve(&tree, memory).unwrap();
    let io = fif_io(&tree, &best.schedule, memory).unwrap();
    let dot = to_dot_annotated(&tree, &best.schedule, Some(&io.tau));
    println!("\nGraphviz rendering of the FullRecExpand traversal:\n{dot}");
}
