//! Multifrontal workflow: from a sparse matrix to an out-of-core factorization
//! schedule.
//!
//! This is the scenario that motivates the paper: the elimination tree of a
//! sparse Cholesky factorization manipulates contribution blocks that are too
//! large to keep in memory all at once, and the traversal order decides how
//! much of them must be written to disk.
//!
//! Run with: `cargo run --release --example multifrontal [grid_side]`

use oocts::prelude::*;
use oocts_profile::bounds::{MemoryBound, MemoryBounds};
use oocts_sparse::ordering::{compute_ordering, Ordering};
use oocts_sparse::{assembly_tree, grid_laplacian_2d, AssemblyOptions};

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    println!("== multifrontal factorization of a {side}x{side} grid Laplacian ==");
    let pattern = grid_laplacian_2d(side, side, false);
    println!(
        "matrix: n = {}, {} off-diagonal nonzeros",
        pattern.order(),
        pattern.nnz_off_diagonal()
    );

    for ordering in [
        Ordering::NestedDissection,
        Ordering::ReverseCuthillMcKee,
        Ordering::MinimumDegree,
    ] {
        let grid = (ordering == Ordering::NestedDissection).then_some((side, side));
        let perm = compute_ordering(&pattern, ordering, grid);
        let permuted = pattern.permute(&perm);
        let tree = assembly_tree(&permuted, AssemblyOptions::default()).expect("assembly tree");
        let bounds = MemoryBounds::of(&tree);
        println!(
            "\n-- ordering {:?}: assembly tree with {} tasks, height {}, LB {}, peak {} --",
            ordering,
            tree.len(),
            tree.height(),
            bounds.lower_bound,
            bounds.peak_incore
        );
        if !bounds.is_interesting() {
            println!("   (peak == LB: no memory bound forces I/O, skipping)");
            continue;
        }
        let memory = bounds.memory(MemoryBound::Middle);
        println!("   out-of-core execution with M = {memory}:");
        for scheduler in trees_schedulers() {
            let report = scheduler.solve(&tree, memory).expect("feasible");
            println!(
                "   {:<18} {:>10} units of I/O   performance {:.4}",
                report.scheduler, report.io_volume, report.performance
            );
        }
    }
}
