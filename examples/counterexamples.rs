//! The paper's counterexamples (Section 4): why neither the best postorder
//! nor the peak-memory-optimal traversal is a competitive algorithm for
//! MinIO, reproduced numerically on the parametric families of Figure 2.
//!
//! Run with: `cargo run --release --example counterexamples`

use oocts::prelude::*;
use oocts_gen::paper;

fn main() {
    println!("== Figure 2(a): the best postorder pays Θ(n·M), the optimum pays 1 ==\n");
    let m = 64;
    println!(
        "{:>7} {:>7} {:>14} {:>14}",
        "leaves", "nodes", "postorder I/O", "reference I/O"
    );
    for levels in [0usize, 4, 16, 64] {
        let (tree, reference) = paper::fig2a_family(levels, m);
        let reference_io = fif_io(&tree, &reference, m).unwrap().total_io;
        let postorder = PostOrderMinIo.solve(&tree, m).unwrap();
        println!(
            "{:>7} {:>7} {:>14} {:>14}",
            levels + 2,
            tree.len(),
            postorder.io_volume,
            reference_io
        );
    }

    println!("\n== Figure 2(c): OptMinMem pays k(k+1), the reference pays 2k ==\n");
    println!(
        "{:>5} {:>7} {:>6} {:>14} {:>14}",
        "k", "nodes", "M", "OptMinMem I/O", "reference I/O"
    );
    for k in [4u64, 16, 64] {
        let (tree, reference, memory) = paper::fig2c_family(k);
        let reference_io = fif_io(&tree, &reference, memory).unwrap().total_io;
        let mm = OptMinMem.solve(&tree, memory).unwrap();
        println!(
            "{:>5} {:>7} {:>6} {:>14} {:>14}",
            k,
            tree.len(),
            memory,
            mm.io_volume,
            reference_io
        );
    }

    println!("\nBoth ratios grow unboundedly with the instance size, which is exactly");
    println!("the paper's argument that PostOrderMinIO and OptMinMem are not");
    println!("constant-factor competitive for MinIO (Sections 4.3 and 4.4).");
}
