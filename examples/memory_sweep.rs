//! Memory sweep: how the I/O volume of each strategy degrades as the memory
//! bound shrinks from the in-core peak down to the structural lower bound, on
//! one random binary tree of the SYNTH family.
//!
//! Run with: `cargo run --release --example memory_sweep [nodes] [seed]`

use oocts::prelude::*;
use oocts_gen::random_binary_tree;
use oocts_profile::bounds::MemoryBounds;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let tree = random_binary_tree(nodes, 1..=100, seed);
    let bounds = MemoryBounds::of(&tree);
    println!(
        "random binary tree: {} nodes, LB = {}, Peak_incore = {}",
        tree.len(),
        bounds.lower_bound,
        bounds.peak_incore
    );

    let schedulers = trees_schedulers();
    print!("{:>10} ", "M");
    for s in &schedulers {
        print!("{:>16}", s.name());
    }
    println!();

    // Ten evenly spaced memory bounds across the interesting range.
    let lb = bounds.lower_bound;
    let peak = bounds.peak_incore;
    for step in 0..=10u64 {
        let memory = lb + (peak - lb) * step / 10;
        print!("{memory:>10} ");
        for s in &schedulers {
            let report = s.solve(&tree, memory).expect("feasible");
            print!("{:>16}", report.io_volume);
        }
        println!();
    }
    println!("\n(I/O volumes in memory units; 0 on the last line: M = Peak_incore.)");
}
