//! Property tests: Liu's OptMinMem is exactly optimal, and the best postorder
//! is never better than it.

use oocts_minmem::{brute_force_min_peak, opt_min_mem, post_order_min_mem};
use oocts_tree::{peak_memory, Tree};
use proptest::prelude::*;

/// Strategy: random trees with `n ∈ [1, 9]` nodes and weights in `[1, 12]`.
/// Node 0 is the root and the parent of node `i > 0` is a uniformly random
/// node with a smaller index, which generates every tree shape.
fn random_tree(max_nodes: usize, max_weight: u64) -> impl Strategy<Value = Tree> {
    (1..=max_nodes)
        .prop_flat_map(move |n| {
            let weights = proptest::collection::vec(1..=max_weight, n);
            let parents: Vec<BoxedStrategy<usize>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(0usize).boxed()
                    } else {
                        (0..i).boxed()
                    }
                })
                .collect();
            (weights, parents)
        })
        .prop_map(|(weights, parents)| {
            let opts: Vec<Option<usize>> = parents
                .iter()
                .enumerate()
                .map(|(i, &p)| if i == 0 { None } else { Some(p) })
                .collect();
            Tree::from_parents(&weights, &opts).expect("construction is always a valid tree")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn opt_min_mem_matches_brute_force(tree in random_tree(9, 12)) {
        let (schedule, peak) = opt_min_mem(&tree);
        schedule.validate(&tree).unwrap();
        prop_assert_eq!(schedule.len(), tree.len());
        // The reported peak is the simulated peak of the returned schedule.
        prop_assert_eq!(peak_memory(&tree, &schedule).unwrap(), peak);
        // And it matches the exhaustive optimum.
        let (_, best) = brute_force_min_peak(&tree);
        prop_assert_eq!(peak, best);
    }

    #[test]
    fn post_order_min_mem_is_valid_and_dominated(tree in random_tree(9, 12)) {
        let (schedule, peak) = post_order_min_mem(&tree);
        schedule.validate(&tree).unwrap();
        prop_assert!(schedule.is_postorder(&tree));
        prop_assert_eq!(peak_memory(&tree, &schedule).unwrap(), peak);
        let (_, opt) = opt_min_mem(&tree);
        prop_assert!(peak >= opt);
    }

    #[test]
    fn peaks_are_bounded_by_total_weight_and_lb(tree in random_tree(9, 12)) {
        let (_, peak) = opt_min_mem(&tree);
        prop_assert!(peak >= tree.min_feasible_memory());
        prop_assert!(peak <= tree.total_weight().max(tree.min_feasible_memory()));
    }
}
