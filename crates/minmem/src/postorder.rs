//! PostOrderMinMem: the best postorder traversal for peak memory (Liu 1986).
//!
//! In a postorder traversal each subtree is processed entirely before any
//! other node outside of it. The peak memory of the subtree rooted at `i`
//! under the best postorder is
//!
//! ```text
//! P_i = max( w̄_i , max_j ( P_j + Σ_{k processed before j} w_k ) )
//! ```
//!
//! and, by the rearrangement result (Theorem 3 in the paper, Lemma 3.1 in
//! Liu 1986), the inner maximum is minimized by processing the children by
//! non-increasing `P_j − w_j`.

use oocts_tree::{NodeId, Schedule, Tree};

/// Computes the best postorder traversal of the whole tree for peak memory.
///
/// Returns the schedule and its peak memory.
pub fn post_order_min_mem(tree: &Tree) -> (Schedule, u64) {
    post_order_min_mem_subtree(tree, tree.root())
}

/// Computes the best postorder traversal of the subtree rooted at `root`
/// (as an independent tree). Returns the schedule and its peak memory.
pub fn post_order_min_mem_subtree(tree: &Tree, root: NodeId) -> (Schedule, u64) {
    let order = tree.subtree_postorder(root);
    let mut peak = vec![0u64; tree.len()];
    // Chosen processing order of the children of each node: one flat copy of
    // the CSR child arena, each node's range re-sorted in place (no per-node
    // vector allocations).
    let mut sorted_children = tree.children_flat().to_vec();
    // (key, original slot, child) triples for the current node; an unstable
    // sort with the slot as tie-break reproduces a stable sort without its
    // temp-buffer allocation.
    let mut keyed: Vec<(i128, u32, NodeId)> = Vec::new();

    for &node in order {
        let children = tree.children(node);
        if children.is_empty() {
            peak[node.index()] = tree.weight(node);
            continue;
        }
        // Non-increasing P_j − w_j; compare without subtraction to avoid any
        // issue with unsigned underflow (P_j ≥ w_j always, but stay safe).
        keyed.clear();
        for (slot, &c) in children.iter().enumerate() {
            let key = peak[c.index()] as i128 - tree.weight(c) as i128;
            keyed.push((key, slot as u32, c));
        }
        keyed.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let range = tree.child_range(node);
        let mut resident = 0u64;
        let mut p = tree.execution_weight(node);
        for (i, &(_, _, c)) in keyed.iter().enumerate() {
            sorted_children[range.start + i] = c;
            p = p.max(resident + peak[c.index()]);
            resident += tree.weight(c);
        }
        peak[node.index()] = p;
    }

    // Emit the postorder that follows the chosen child orders, iteratively.
    let mut schedule = Vec::with_capacity(order.len());
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some((node, idx)) = stack.pop() {
        let kids = &sorted_children[tree.child_range(node)];
        if idx < kids.len() {
            stack.push((node, idx + 1));
            stack.push((kids[idx], 0));
        } else {
            schedule.push(node);
        }
    }
    (Schedule::new(schedule), peak[root.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liu::opt_min_mem;
    use oocts_tree::{peak_memory, TreeBuilder};

    #[test]
    fn postorder_schedule_is_postorder_and_peak_matches() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(2);
        let a = b.add_child(r, 3);
        b.add_child(a, 7);
        b.add_child(a, 1);
        let c = b.add_child(r, 5);
        b.add_child(c, 2);
        let t = b.build().unwrap();
        let (s, peak) = post_order_min_mem(&t);
        s.validate(&t).unwrap();
        assert!(s.is_postorder(&t));
        assert_eq!(peak_memory(&t, &s).unwrap(), peak);
    }

    #[test]
    fn best_postorder_orders_children_by_peak_minus_weight() {
        // Node with two children: child A has subtree peak 10 and output 1,
        // child B has subtree peak 4 and output 4. Processing A first gives
        // max(10, 1 + 4) = 10; B first gives max(4, 4 + 10) = 14.
        let mut b = TreeBuilder::new();
        let r = b.add_root(1);
        let a = b.add_child(r, 1);
        b.add_child(a, 10);
        b.add_child(r, 4);
        let t = b.build().unwrap();
        let (s, peak) = post_order_min_mem(&t);
        assert_eq!(peak, 10);
        // A's subtree (leaf then a) must come before B.
        let order = s.order();
        assert_eq!(order[0], NodeId(2));
        assert_eq!(order[1], NodeId(1));
        assert_eq!(order[2], NodeId(3));
    }

    #[test]
    fn postorder_peak_at_least_optimal_peak() {
        let t = {
            let mut b = TreeBuilder::new();
            let root = b.add_root(1);
            for _ in 0..2 {
                let mut parent = root;
                for &w in &[3u64, 5, 2, 6] {
                    parent = b.add_child(parent, w);
                }
            }
            b.build().unwrap()
        };
        let (_, p_post) = post_order_min_mem(&t);
        let (_, p_opt) = opt_min_mem(&t);
        assert!(p_post >= p_opt);
        // On the Figure 2(b) instance the best postorder reaches 9 while the
        // optimal traversal reaches 8.
        assert_eq!(p_post, 9);
        assert_eq!(p_opt, 8);
    }
}
