//! Exhaustive search over all topological orders — the test oracle for
//! MinMem on small trees.

use oocts_tree::{NodeId, Schedule, Tree};

/// Default safety limit on the number of nodes accepted by the brute-force
/// searchers (the number of topological orders grows factorially).
pub const BRUTE_FORCE_MAX_NODES: usize = 12;

/// Finds the minimum peak memory over *all* topological orders of the tree,
/// together with one order achieving it.
///
/// # Panics
/// Panics if the tree has more than [`BRUTE_FORCE_MAX_NODES`] nodes.
pub fn brute_force_min_peak(tree: &Tree) -> (Schedule, u64) {
    assert!(
        tree.len() <= BRUTE_FORCE_MAX_NODES,
        "brute-force search limited to {BRUTE_FORCE_MAX_NODES} nodes"
    );
    let n = tree.len();
    // ready[i] = number of children not yet executed.
    let mut missing: Vec<usize> = (0..n)
        .map(|i| tree.children(NodeId::from_index(i)).len())
        .collect();
    let mut ready: Vec<NodeId> = tree.node_ids().filter(|&i| tree.is_leaf(i)).collect();
    let mut best = (Vec::new(), u64::MAX);
    let mut current = Vec::with_capacity(n);
    explore(
        tree,
        &mut ready,
        &mut missing,
        &mut current,
        0,
        0,
        &mut best,
    );
    (Schedule::new(best.0), best.1)
}

// lint: allow(L008, exhaustive oracle; factorial blow-up caps it to tiny trees long before stack depth matters)
#[allow(clippy::too_many_arguments)]
fn explore(
    tree: &Tree,
    ready: &mut Vec<NodeId>,
    missing: &mut [usize],
    current: &mut Vec<NodeId>,
    resident: u64,
    peak: u64,
    best: &mut (Vec<NodeId>, u64),
) {
    if peak >= best.1 {
        return; // branch-and-bound: cannot improve
    }
    if current.len() == tree.len() {
        best.0 = current.clone();
        best.1 = peak;
        return;
    }
    // Try every ready node. Snapshot the candidates: the `ready` vector is
    // mutated and restored inside the loop body, which may permute it.
    let candidates: Vec<NodeId> = ready.clone();
    for node in candidates {
        let w = tree.weight(node);
        let cw = tree.children_weight(node);
        let step_peak = resident + w.saturating_sub(cw);
        let new_resident = resident - cw + w;
        let new_peak = peak.max(step_peak);

        // Apply.
        ready.retain(|&x| x != node);
        current.push(node);
        let mut parent_became_ready = false;
        if let Some(p) = tree.parent(node) {
            missing[p.index()] -= 1;
            if missing[p.index()] == 0 {
                ready.push(p);
                parent_became_ready = true;
            }
        }

        explore(tree, ready, missing, current, new_resident, new_peak, best);

        // Undo.
        if let Some(p) = tree.parent(node) {
            if parent_became_ready {
                ready.retain(|&x| x != p);
            }
            missing[p.index()] += 1;
        }
        current.pop();
        ready.push(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liu::opt_min_mem;
    use oocts_tree::{peak_memory, TreeBuilder};

    #[test]
    fn brute_force_matches_liu_on_small_examples() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(2);
        let a = b.add_child(r, 3);
        b.add_child(a, 7);
        let c = b.add_child(r, 5);
        b.add_child(c, 2);
        b.add_child(c, 4);
        let t = b.build().unwrap();
        let (s_bf, p_bf) = brute_force_min_peak(&t);
        let (s_liu, p_liu) = opt_min_mem(&t);
        assert_eq!(p_bf, p_liu);
        assert_eq!(peak_memory(&t, &s_bf).unwrap(), p_bf);
        assert_eq!(peak_memory(&t, &s_liu).unwrap(), p_liu);
    }

    #[test]
    fn brute_force_explores_non_postorders() {
        // Figure 2(b)-like shrunk instance where interleaving wins.
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        for _ in 0..2 {
            let mut parent = root;
            for &w in &[3u64, 5, 2, 6] {
                parent = b.add_child(parent, w);
            }
        }
        let t = b.build().unwrap();
        let (_, p_bf) = brute_force_min_peak(&t);
        assert_eq!(p_bf, 8);
    }

    #[test]
    #[should_panic(expected = "brute-force search limited")]
    fn brute_force_rejects_large_trees() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(1);
        for _ in 0..BRUTE_FORCE_MAX_NODES + 1 {
            b.add_child(r, 1);
        }
        let t = b.build().unwrap();
        brute_force_min_peak(&t);
    }
}
