//! # oocts-minmem — peak-memory minimizing tree traversals
//!
//! This crate implements the two classical algorithms the paper builds upon
//! (Section 3.3):
//!
//! * [`opt_min_mem`] — **OptMinMem**, Liu's optimal algorithm for the MinMem
//!   problem (J. W. H. Liu, *An application of generalized tree pebbling to
//!   sparse matrix factorization*, SIAM J. Algebraic Discrete Methods, 1987):
//!   computes a traversal of minimum peak memory, without the postorder
//!   restriction, via hill–valley segment merging;
//! * [`post_order_min_mem`] — **PostOrderMinMem**, Liu's best *postorder*
//!   traversal for peak memory (Liu, ACM TOMS 1986): children are processed
//!   by non-increasing `P_j − w_j`, where `P_j` is the postorder peak of the
//!   subtree rooted at `j`.
//!
//! A brute-force scheduler (`brute_force_min_peak`, behind the
//! `brute-force` feature) over all topological orders is provided as a test
//! oracle for small trees.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

#[cfg(feature = "brute-force")]
pub mod bruteforce;
pub mod liu;
pub mod postorder;
pub mod segments;

#[cfg(feature = "brute-force")]
pub use bruteforce::brute_force_min_peak;
pub use liu::{
    opt_min_mem, opt_min_mem_peak, opt_min_mem_subtree, opt_min_mem_subtree_with, ScratchSpace,
};
pub use postorder::{post_order_min_mem, post_order_min_mem_subtree};
pub use segments::Segment;
