//! OptMinMem: Liu's optimal algorithm for peak-memory minimization.
//!
//! The algorithm processes the tree bottom-up. The optimal traversal of each
//! subtree is kept in its canonical hill–valley form (see
//! [`crate::segments`]); at an inner node the children's segment sequences
//! are merged in non-increasing `hill − valley` order (Liu's composition
//! theorem, restated as Theorem 3 in the paper), the node itself is executed
//! last, and the combined profile is re-decomposed.
//!
//! Correctness is property-tested against an exhaustive search over all
//! topological orders for small random trees (see `tests/` and the
//! `bruteforce` module).

use oocts_tree::{NodeId, Schedule, Tree};

use crate::segments::{decompose_into, merge_into, Atom, Segment};

/// Reusable working buffers for OptMinMem.
///
/// One Liu run builds and tears down a segment list per node; callers that
/// solve repeatedly (the RecExpand expansion loop re-solves subtrees after
/// every node expansion) keep a single `ScratchSpace` so every `Vec` —
/// per-node results, the merge and decompose staging areas, and the pools of
/// emptied segment/task vectors — is recycled across runs.
#[derive(Debug, Default)]
pub struct ScratchSpace {
    /// Canonical segment sequence per node, indexed by node id. Child slots
    /// are drained (`mem::take`) when their parent combines them.
    results: Vec<Vec<Segment>>,
    /// The children's sequences detached for merging at the current node.
    child_bufs: Vec<Vec<Segment>>,
    /// Merge output for the current node.
    merged: Vec<Segment>,
    /// Absolute memory profile of the current node before re-decomposition.
    atoms: Vec<Atom>,
    /// Emptied segment vectors awaiting reuse.
    seg_pool: Vec<Vec<Segment>>,
    /// Emptied task vectors awaiting reuse.
    task_pool: Vec<Vec<NodeId>>,
}

impl ScratchSpace {
    /// Creates an empty scratch space; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn pooled_segs(&mut self) -> Vec<Segment> {
        self.seg_pool.pop().unwrap_or_default()
    }

    fn pooled_tasks(&mut self) -> Vec<NodeId> {
        self.task_pool.pop().unwrap_or_default()
    }
}

/// Computes a peak-memory-optimal traversal of the whole tree.
///
/// Returns the schedule and its peak memory.
pub fn opt_min_mem(tree: &Tree) -> (Schedule, u64) {
    opt_min_mem_subtree(tree, tree.root())
}

/// Computes a peak-memory-optimal traversal of the subtree rooted at `root`,
/// as if it were an independent tree (no other data resident).
///
/// Returns the schedule (covering exactly the subtree) and its peak memory.
pub fn opt_min_mem_subtree(tree: &Tree, root: NodeId) -> (Schedule, u64) {
    let mut scratch = ScratchSpace::new();
    opt_min_mem_subtree_with(tree, root, &mut scratch)
}

/// Scratch-reusing variant of [`opt_min_mem_subtree`]: repeated solves
/// recycle all internal buffers through `scratch`.
pub fn opt_min_mem_subtree_with(
    tree: &Tree,
    root: NodeId,
    scratch: &mut ScratchSpace,
) -> (Schedule, u64) {
    let mut segments = optimal_segments_with(tree, root, scratch);
    let peak = segments.iter().map(|s| s.hill).max().unwrap_or(0);
    // The global peak is attained in the first segment (hills are
    // non-increasing and the first segment starts from an empty memory).
    debug_assert_eq!(peak, segments.first().map(|s| s.hill).unwrap_or(0));
    let mut order = Vec::with_capacity(tree.subtree_size(root));
    for seg in segments.iter_mut() {
        let mut tasks = std::mem::take(&mut seg.tasks);
        order.append(&mut tasks);
        scratch.task_pool.push(tasks);
    }
    segments.clear();
    scratch.seg_pool.push(segments);
    (Schedule::new(order), peak)
}

/// Convenience wrapper returning only the optimal peak memory
/// (`Peak_incore` in the paper's Section 6.1).
pub fn opt_min_mem_peak(tree: &Tree) -> u64 {
    opt_min_mem(tree).1
}

/// Computes the canonical hill–valley representation of an optimal traversal
/// of the subtree rooted at `root`.
pub fn optimal_segments(tree: &Tree, root: NodeId) -> Vec<Segment> {
    let mut scratch = ScratchSpace::new();
    optimal_segments_with(tree, root, &mut scratch)
}

/// Scratch-reusing variant of [`optimal_segments`]: the bottom-up inner loop
/// of Liu's algorithm, allocation-free once `scratch` has warmed up.
// lint: no_alloc
pub fn optimal_segments_with(
    tree: &Tree,
    root: NodeId,
    scratch: &mut ScratchSpace,
) -> Vec<Segment> {
    // Bottom-up over the precomputed postorder slice so arbitrarily deep
    // trees do not overflow the call stack.
    let order = tree.subtree_postorder(root);
    // The postorder guarantees children are processed before their parent;
    // taking a child's slot leaves an empty Vec behind, which is never read
    // again, so no Option wrapper is needed.
    // lint: allow(L003, one-time scratch growth to the tree size: amortized across runs)
    scratch.results.resize_with(tree.len(), Vec::new);
    for &node in order {
        let w = tree.weight(node);
        let mut segs = scratch.pooled_segs();
        if tree.is_leaf(node) {
            let mut tasks = scratch.pooled_tasks();
            tasks.push(node); // lint: allow(L003, single push into a pooled task vector: amortized)
                              // lint: allow(L003, single push into a pooled segment vector: amortized)
            segs.push(Segment {
                hill: w,
                valley: w,
                tasks,
            });
        } else {
            // Detach the children's canonical sequences and merge them in
            // non-increasing hill − valley order (Liu's composition).
            scratch.child_bufs.clear();
            for &c in tree.children(node) {
                let child_segs = std::mem::take(&mut scratch.results[c.index()]);
                scratch.child_bufs.push(child_segs); // lint: allow(L003, staging area reuses its capacity across nodes: amortized)
            }
            merge_into(&mut scratch.child_bufs, &mut scratch.merged);
            for buf in scratch.child_bufs.drain(..) {
                debug_assert!(buf.is_empty());
                scratch.seg_pool.push(buf); // lint: allow(L003, recycling an emptied vector into the pool: amortized)
            }

            // Absolute profile: the merged children runs, then the node
            // itself executed last.
            let cw = tree.children_weight(node);
            let wbar = w.max(cw);
            scratch.atoms.clear();
            let mut base = 0u64;
            for seg in scratch.merged.drain(..) {
                let peak = base + seg.hill;
                base += seg.valley;
                // lint: allow(L003, staging area reuses its capacity across nodes: amortized)
                scratch.atoms.push(Atom {
                    peak,
                    resident: base,
                    tasks: seg.tasks,
                });
            }
            debug_assert_eq!(base, cw, "children valleys must sum to their weights");
            // Executing the node: all children outputs (and nothing else from
            // this subtree) are resident, so the absolute peak is exactly w̄
            // and the resident data afterwards is the node's own output.
            let mut tasks = scratch.task_pool.pop().unwrap_or_default();
            tasks.push(node); // lint: allow(L003, single push into a pooled task vector: amortized)
                              // lint: allow(L003, staging area reuses its capacity across nodes: amortized)
            scratch.atoms.push(Atom {
                peak: wbar,
                resident: w,
                tasks,
            });
            let (atoms, task_pool) = (&mut scratch.atoms, &mut scratch.task_pool);
            decompose_into(atoms, &mut segs, task_pool);
        }
        scratch.results[node.index()] = segs;
    }
    std::mem::take(&mut scratch.results[root.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::{peak_memory, TreeBuilder};

    #[test]
    fn singleton_tree() {
        let t = Tree::singleton(7);
        let (s, peak) = opt_min_mem(&t);
        assert_eq!(peak, 7);
        assert_eq!(s.len(), 1);
        assert_eq!(peak_memory(&t, &s).unwrap(), 7);
    }

    #[test]
    fn chain_peak_is_max_edge() {
        // Chain root(1) <- a(5) <- b(3) <- c(4): peak = max over nodes of
        // max(w_i, w_child) = 5 (executing a with b... let's check: execute
        // c: 4; b: max(3,4)=4; a: max(5,3)=5; root: max(1,5)=5.
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 5);
        let b = bld.add_child(a, 3);
        bld.add_child(b, 4);
        let t = bld.build().unwrap();
        let (s, peak) = opt_min_mem(&t);
        assert_eq!(peak, 5);
        assert_eq!(peak_memory(&t, &s).unwrap(), 5);
        s.validate(&t).unwrap();
    }

    #[test]
    fn reported_peak_matches_simulation() {
        // Figure 6's tree from the paper (left diagram).
        let t = fig6_tree();
        let (s, peak) = opt_min_mem(&t);
        s.validate(&t).unwrap();
        assert_eq!(peak_memory(&t, &s).unwrap(), peak);
    }

    /// The tree of Appendix A, Figure 6: the optimal peak memory is 12.
    fn fig6_tree() -> Tree {
        // Left branch: root <- 4 <- 8 <- 2(a) <- 9 ; right branch:
        // root <- 6 <- 4(b) <- 10. Node "root" has weight... the figure
        // shows root at top; weights along left chain (top to bottom):
        // 4, 8, 2, 9 and right chain: 6, 4, 10. Root weight is not shown;
        // use 1.
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let l1 = b.add_child(root, 4);
        let l2 = b.add_child(l1, 8);
        let l3 = b.add_child(l2, 2);
        b.add_child(l3, 9);
        let r1 = b.add_child(root, 6);
        let r2 = b.add_child(r1, 4);
        b.add_child(r2, 10);
        b.build().unwrap()
    }

    #[test]
    fn fig6_opt_min_mem_peak_is_12() {
        // The paper (Appendix A) states that OptMinMem reaches a peak of 12
        // on this instance by interleaving the two branches.
        let t = fig6_tree();
        let (_, peak) = opt_min_mem(&t);
        assert_eq!(peak, 12);
    }

    #[test]
    fn subtree_optimum_is_local() {
        let t = fig6_tree();
        // Subtree rooted at the left-branch node of weight 8 (id 2): chain
        // 8 <- 2 <- 9 → peak = max(9, max(2,9), max(8,2)) = 9.
        let (s, peak) = opt_min_mem_subtree(&t, NodeId(2));
        assert_eq!(peak, 9);
        assert_eq!(s.len(), 3);
        s.validate(&t).unwrap();
    }

    #[test]
    fn interleaving_beats_postorder_when_useful() {
        // Classic example where any postorder is worse than the optimal
        // traversal: two "heavy leaf, light residue" branches.
        // root(1) with two identical chains: x(1) <- y(10).
        // Postorder peak: process one chain (peak 10, residue 1), then the
        // other (10 + 1 = 11). Optimal cannot do better here (11 vs 11)...
        // Use the paper's Figure 2(b) instead, where OptMinMem reaches 8
        // while the best postorder reaches 9.
        let t = fig2b_tree();
        let (s, peak) = opt_min_mem(&t);
        s.validate(&t).unwrap();
        assert_eq!(peak, 8);
        assert_eq!(peak_memory(&t, &s).unwrap(), 8);
    }

    /// Figure 2(b): root with two chains of weights (from root down)
    /// 3, 5, 2, 6 and 3, 5, 2, 6 — wait, the figure labels are
    /// (3,5,2,6) on the left chain and (3,5,2,6) on the right; node labels
    /// inside give weights 3,5,2,6 / 3,5,2,6. See `oocts-gen` for the exact
    /// instance; here we rebuild it locally to keep the crate dependency-free.
    fn fig2b_tree() -> Tree {
        // Weights inside nodes, left chain top→bottom: 3, 5, 2, 6;
        // right chain: 3, 5, 2, 6. Root weight from figure: root node shown
        // without weight label is the sink; we follow the oocts-gen
        // construction: root(1) with two chains [3,5,2,6].
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        for _ in 0..2 {
            let mut parent = root;
            for &w in &[3u64, 5, 2, 6] {
                parent = b.add_child(parent, w);
            }
        }
        b.build().unwrap()
    }
}
