//! OptMinMem: Liu's optimal algorithm for peak-memory minimization.
//!
//! The algorithm processes the tree bottom-up. The optimal traversal of each
//! subtree is kept in its canonical hill–valley form (see
//! [`crate::segments`]); at an inner node the children's segment sequences
//! are merged in non-increasing `hill − valley` order (Liu's composition
//! theorem, restated as Theorem 3 in the paper), the node itself is executed
//! last, and the combined profile is re-decomposed.
//!
//! Correctness is property-tested against an exhaustive search over all
//! topological orders for small random trees (see `tests/` and the
//! `bruteforce` module).

use oocts_tree::{NodeId, Schedule, Tree};

use crate::segments::{decompose, merge, Atom, Segment};

/// Computes a peak-memory-optimal traversal of the whole tree.
///
/// Returns the schedule and its peak memory.
pub fn opt_min_mem(tree: &Tree) -> (Schedule, u64) {
    opt_min_mem_subtree(tree, tree.root())
}

/// Computes a peak-memory-optimal traversal of the subtree rooted at `root`,
/// as if it were an independent tree (no other data resident).
///
/// Returns the schedule (covering exactly the subtree) and its peak memory.
pub fn opt_min_mem_subtree(tree: &Tree, root: NodeId) -> (Schedule, u64) {
    let segments = optimal_segments(tree, root);
    let peak = segments.iter().map(|s| s.hill).max().unwrap_or(0);
    // The global peak is attained in the first segment (hills are
    // non-increasing and the first segment starts from an empty memory).
    debug_assert_eq!(peak, segments.first().map(|s| s.hill).unwrap_or(0));
    let mut order = Vec::new();
    for seg in segments {
        order.extend(seg.tasks);
    }
    (Schedule::new(order), peak)
}

/// Convenience wrapper returning only the optimal peak memory
/// (`Peak_incore` in the paper's Section 6.1).
pub fn opt_min_mem_peak(tree: &Tree) -> u64 {
    opt_min_mem(tree).1
}

/// Computes the canonical hill–valley representation of an optimal traversal
/// of the subtree rooted at `root`.
pub fn optimal_segments(tree: &Tree, root: NodeId) -> Vec<Segment> {
    // Bottom-up over an iterative postorder so arbitrarily deep trees do not
    // overflow the call stack.
    let order = tree.subtree_postorder(root);
    // The postorder guarantees children are processed before their parent;
    // taking a child's slot leaves an empty Vec behind, which is never read
    // again, so no Option wrapper is needed.
    let mut results: Vec<Vec<Segment>> = vec![Vec::new(); tree.len()];
    for node in order {
        let children = tree.children(node);
        let segs = if children.is_empty() {
            let w = tree.weight(node);
            vec![Segment {
                hill: w,
                valley: w,
                tasks: vec![node],
            }]
        } else {
            let child_segs: Vec<Vec<Segment>> = children
                .iter()
                .map(|&c| std::mem::take(&mut results[c.index()]))
                .collect();
            combine(tree, node, child_segs)
        };
        results[node.index()] = segs;
    }
    std::mem::take(&mut results[root.index()])
}

/// Liu's composition step: merge the children's canonical segment sequences,
/// execute `node` last, and re-decompose the resulting profile.
fn combine(tree: &Tree, node: NodeId, children: Vec<Vec<Segment>>) -> Vec<Segment> {
    let merged = merge(children);
    let w = tree.weight(node);
    let cw = tree.children_weight(node);
    let wbar = w.max(cw);

    let mut atoms = Vec::with_capacity(merged.len() + 1);
    let mut base = 0u64;
    for seg in merged {
        let peak = base + seg.hill;
        base += seg.valley;
        atoms.push(Atom {
            peak,
            resident: base,
            tasks: seg.tasks,
        });
    }
    debug_assert_eq!(base, cw, "children valleys must sum to their weights");
    // Executing the node: all children outputs (and nothing else from this
    // subtree) are resident, so the absolute peak is exactly w̄ and the
    // resident data afterwards is the node's own output.
    atoms.push(Atom {
        peak: wbar,
        resident: w,
        tasks: vec![node],
    });
    decompose(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::{peak_memory, TreeBuilder};

    #[test]
    fn singleton_tree() {
        let t = Tree::singleton(7);
        let (s, peak) = opt_min_mem(&t);
        assert_eq!(peak, 7);
        assert_eq!(s.len(), 1);
        assert_eq!(peak_memory(&t, &s).unwrap(), 7);
    }

    #[test]
    fn chain_peak_is_max_edge() {
        // Chain root(1) <- a(5) <- b(3) <- c(4): peak = max over nodes of
        // max(w_i, w_child) = 5 (executing a with b... let's check: execute
        // c: 4; b: max(3,4)=4; a: max(5,3)=5; root: max(1,5)=5.
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 5);
        let b = bld.add_child(a, 3);
        bld.add_child(b, 4);
        let t = bld.build().unwrap();
        let (s, peak) = opt_min_mem(&t);
        assert_eq!(peak, 5);
        assert_eq!(peak_memory(&t, &s).unwrap(), 5);
        s.validate(&t).unwrap();
    }

    #[test]
    fn reported_peak_matches_simulation() {
        // Figure 6's tree from the paper (left diagram).
        let t = fig6_tree();
        let (s, peak) = opt_min_mem(&t);
        s.validate(&t).unwrap();
        assert_eq!(peak_memory(&t, &s).unwrap(), peak);
    }

    /// The tree of Appendix A, Figure 6: the optimal peak memory is 12.
    fn fig6_tree() -> Tree {
        // Left branch: root <- 4 <- 8 <- 2(a) <- 9 ; right branch:
        // root <- 6 <- 4(b) <- 10. Node "root" has weight... the figure
        // shows root at top; weights along left chain (top to bottom):
        // 4, 8, 2, 9 and right chain: 6, 4, 10. Root weight is not shown;
        // use 1.
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let l1 = b.add_child(root, 4);
        let l2 = b.add_child(l1, 8);
        let l3 = b.add_child(l2, 2);
        b.add_child(l3, 9);
        let r1 = b.add_child(root, 6);
        let r2 = b.add_child(r1, 4);
        b.add_child(r2, 10);
        b.build().unwrap()
    }

    #[test]
    fn fig6_opt_min_mem_peak_is_12() {
        // The paper (Appendix A) states that OptMinMem reaches a peak of 12
        // on this instance by interleaving the two branches.
        let t = fig6_tree();
        let (_, peak) = opt_min_mem(&t);
        assert_eq!(peak, 12);
    }

    #[test]
    fn subtree_optimum_is_local() {
        let t = fig6_tree();
        // Subtree rooted at the left-branch node of weight 8 (id 2): chain
        // 8 <- 2 <- 9 → peak = max(9, max(2,9), max(8,2)) = 9.
        let (s, peak) = opt_min_mem_subtree(&t, NodeId(2));
        assert_eq!(peak, 9);
        assert_eq!(s.len(), 3);
        s.validate(&t).unwrap();
    }

    #[test]
    fn interleaving_beats_postorder_when_useful() {
        // Classic example where any postorder is worse than the optimal
        // traversal: two "heavy leaf, light residue" branches.
        // root(1) with two identical chains: x(1) <- y(10).
        // Postorder peak: process one chain (peak 10, residue 1), then the
        // other (10 + 1 = 11). Optimal cannot do better here (11 vs 11)...
        // Use the paper's Figure 2(b) instead, where OptMinMem reaches 8
        // while the best postorder reaches 9.
        let t = fig2b_tree();
        let (s, peak) = opt_min_mem(&t);
        s.validate(&t).unwrap();
        assert_eq!(peak, 8);
        assert_eq!(peak_memory(&t, &s).unwrap(), 8);
    }

    /// Figure 2(b): root with two chains of weights (from root down)
    /// 3, 5, 2, 6 and 3, 5, 2, 6 — wait, the figure labels are
    /// (3,5,2,6) on the left chain and (3,5,2,6) on the right; node labels
    /// inside give weights 3,5,2,6 / 3,5,2,6. See `oocts-gen` for the exact
    /// instance; here we rebuild it locally to keep the crate dependency-free.
    fn fig2b_tree() -> Tree {
        // Weights inside nodes, left chain top→bottom: 3, 5, 2, 6;
        // right chain: 3, 5, 2, 6. Root weight from figure: root node shown
        // without weight label is the sink; we follow the oocts-gen
        // construction: root(1) with two chains [3,5,2,6].
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        for _ in 0..2 {
            let mut parent = root;
            for &w in &[3u64, 5, 2, 6] {
                parent = b.add_child(parent, w);
            }
        }
        b.build().unwrap()
    }
}
