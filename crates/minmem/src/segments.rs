//! Hill–valley segments: the compact representation of (partial) traversals
//! used by Liu's optimal MinMem algorithm.
//!
//! A traversal of a subtree is summarised by a sequence of *segments*. Each
//! segment covers a contiguous run of the traversal and records, **relative
//! to the memory resident when the segment starts**:
//!
//! * its `hill` — the maximum memory in use at any point of the segment, and
//! * its `valley` — the memory still resident when the segment ends.
//!
//! The canonical decomposition (Liu 1987) cuts the traversal at the global
//! minimum of the memory profile following each global maximum, which yields
//! segments whose `hill − valley` values are non-increasing. Liu's
//! composition theorem states that an optimal traversal of a node is obtained
//! by merging the segments of its children's optimal traversals in
//! non-increasing `hill − valley` order and executing the node last.

use oocts_tree::NodeId;

/// A contiguous piece of a traversal, summarised by its hill and valley
/// (both relative to the memory resident when the segment starts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Maximum memory used during the segment (relative to its start).
    pub hill: u64,
    /// Memory still resident at the end of the segment (relative to its
    /// start). Always `≤ hill`.
    pub valley: u64,
    /// The tasks executed by this segment, in order.
    pub tasks: Vec<NodeId>,
}

impl Segment {
    /// The sort key of Liu's composition theorem: segments are merged in
    /// non-increasing `hill − valley` order.
    #[inline]
    pub fn key(&self) -> u64 {
        self.hill - self.valley
    }
}

/// One step of an absolute memory profile used while re-decomposing a merged
/// traversal: the peak reached while the step runs and the memory resident
/// after it, both *absolute* within the subtree being combined.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Peak memory while the atom runs (absolute).
    pub peak: u64,
    /// Memory resident after the atom (absolute).
    pub resident: u64,
    /// The tasks of this atom.
    pub tasks: Vec<NodeId>,
}

/// Canonical hill–valley decomposition of a sequence of atoms.
///
/// Boundaries are placed at the (last occurrence of the) minimum resident
/// value following each (first occurrence of the) maximum peak, which
/// guarantees non-increasing hills, non-decreasing valleys and therefore
/// non-increasing `hill − valley` keys.
pub fn decompose(atoms: Vec<Atom>) -> Vec<Segment> {
    let mut atoms = atoms;
    let mut out = Vec::new();
    let mut task_pool = Vec::new();
    decompose_into(&mut atoms, &mut out, &mut task_pool);
    out
}

/// Buffer-reusing variant of [`decompose`]: drains `atoms` into canonical
/// segments appended to `out` (cleared first). Task lists are *moved* out of
/// the atoms — the first atom of each segment donates its vector, the rest
/// are appended into it — and every emptied vector is returned to
/// `task_pool`, so a caller cycling through many nodes reuses all task
/// storage.
// lint: no_alloc
pub fn decompose_into(
    atoms: &mut Vec<Atom>,
    out: &mut Vec<Segment>,
    task_pool: &mut Vec<Vec<NodeId>>,
) {
    out.clear();
    let n = atoms.len();
    let mut start = 0usize;
    let mut resident_before = 0u64;
    while start < n {
        // First index in [start, n) with the maximum peak.
        let mut hill_idx = start;
        for i in start..n {
            if atoms[i].peak > atoms[hill_idx].peak {
                hill_idx = i;
            }
        }
        // Last index in [hill_idx, n) with the minimum resident.
        let mut valley_idx = hill_idx;
        for i in hill_idx..n {
            if atoms[i].resident <= atoms[valley_idx].resident {
                valley_idx = i;
            }
        }
        let hill_abs = atoms[hill_idx].peak;
        let valley_abs = atoms[valley_idx].resident;
        // The first atom donates its task vector; the others drain into it
        // (append moves elements and keeps the source's capacity for reuse).
        let mut tasks = std::mem::take(&mut atoms[start].tasks);
        for atom in &mut atoms[start + 1..=valley_idx] {
            tasks.append(&mut atom.tasks);
            task_pool.push(std::mem::take(&mut atom.tasks)); // lint: allow(L003, recycling an emptied vector into the pool: amortized)
        }
        // Both values are at least the previous valley: the previous valley
        // was the minimum resident over a suffix containing this one.
        debug_assert!(hill_abs >= resident_before);
        debug_assert!(valley_abs >= resident_before);
        // lint: allow(L003, segment output buffer is pooled by the caller: amortized)
        out.push(Segment {
            hill: hill_abs - resident_before,
            valley: valley_abs - resident_before,
            tasks,
        });
        resident_before = valley_abs;
        start = valley_idx + 1;
    }
    atoms.clear();
    debug_assert!(is_canonical(out));
}

/// `true` if the segment keys are non-increasing (the invariant required by
/// the composition merge).
pub fn is_canonical(segments: &[Segment]) -> bool {
    segments.windows(2).all(|w| w[0].key() >= w[1].key())
}

/// Merges several canonical segment sequences into a single sequence ordered
/// by non-increasing `hill − valley`, preserving the internal order of each
/// input sequence (ties never reorder segments of the same child).
pub fn merge(children: Vec<Vec<Segment>>) -> Vec<Segment> {
    let mut bufs = children;
    let mut out = Vec::new();
    merge_into(&mut bufs, &mut out);
    out
}

/// Buffer-reusing variant of [`merge`]: drains every child sequence into
/// `out` (cleared first), leaving each child vector empty but with its
/// capacity intact so the caller can recycle it.
///
/// Each child is reversed once so its next segment pops from the back in
/// O(1); segments are moved, never cloned.
// lint: no_alloc
pub fn merge_into(children: &mut [Vec<Segment>], out: &mut Vec<Segment>) {
    out.clear();
    for child in children.iter_mut() {
        child.reverse();
    }
    loop {
        // Pick the child whose head segment has the largest key; on ties the
        // lowest index wins, so a strict `>` preserves child order.
        let mut best: Option<(usize, u64)> = None;
        for (i, child) in children.iter().enumerate() {
            if let Some(seg) = child.last() {
                let key = seg.key();
                if best.is_none_or(|(_, bk)| key > bk) {
                    best = Some((i, key));
                }
            }
        }
        let Some((i, _)) = best else { break };
        if let Some(seg) = children[i].pop() {
            out.push(seg); // lint: allow(L003, merge output buffer is pooled by the caller: amortized)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(peak: u64, resident: u64, id: u32) -> Atom {
        Atom {
            peak,
            resident,
            tasks: vec![NodeId(id)],
        }
    }

    #[test]
    fn decompose_single_atom() {
        let segs = decompose(vec![atom(5, 3, 0)]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].hill, 5);
        assert_eq!(segs[0].valley, 3);
        assert_eq!(segs[0].tasks, vec![NodeId(0)]);
    }

    #[test]
    fn decompose_monotone_profile() {
        // Peaks decreasing, residents increasing: each atom is its own
        // segment only if the hills strictly dominate; here the global max is
        // the first atom and the minimum resident afterwards is at the first
        // atom itself.
        let segs = decompose(vec![atom(10, 2, 0), atom(6, 4, 1), atom(5, 5, 2)]);
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].hill, segs[0].valley), (10, 2));
        // Segment 2 is relative to resident 2, segment 3 to resident 4.
        assert_eq!((segs[1].hill, segs[1].valley), (4, 2));
        assert_eq!((segs[2].hill, segs[2].valley), (1, 1));
        assert!(is_canonical(&segs));
    }

    #[test]
    fn decompose_groups_atoms_before_the_peak() {
        // The global peak is in the middle: everything before it joins its
        // segment.
        let segs = decompose(vec![atom(3, 1, 0), atom(9, 4, 1), atom(5, 5, 2)]);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].hill, segs[0].valley), (9, 4));
        assert_eq!(segs[0].tasks, vec![NodeId(0), NodeId(1)]);
        assert_eq!((segs[1].hill, segs[1].valley), (1, 1));
    }

    #[test]
    fn decompose_takes_minimum_after_the_peak() {
        // Resident dips after the peak: the boundary is at the dip.
        let segs = decompose(vec![atom(9, 6, 0), atom(7, 2, 1), atom(6, 5, 2)]);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].hill, segs[0].valley), (9, 2));
        assert_eq!(segs[0].tasks, vec![NodeId(0), NodeId(1)]);
        assert_eq!((segs[1].hill, segs[1].valley), (4, 3));
        assert!(is_canonical(&segs));
    }

    #[test]
    fn merge_orders_by_key_and_preserves_child_order() {
        let a = vec![
            Segment {
                hill: 10,
                valley: 1,
                tasks: vec![NodeId(0)],
            },
            Segment {
                hill: 4,
                valley: 2,
                tasks: vec![NodeId(1)],
            },
        ];
        let b = vec![Segment {
            hill: 8,
            valley: 3,
            tasks: vec![NodeId(2)],
        }];
        let merged = merge(vec![a, b]);
        let keys: Vec<u64> = merged.iter().map(Segment::key).collect();
        assert_eq!(keys, vec![9, 5, 2]);
        // Child a's two segments keep their relative order.
        let pos0 = merged
            .iter()
            .position(|s| s.tasks.contains(&NodeId(0)))
            .unwrap();
        let pos1 = merged
            .iter()
            .position(|s| s.tasks.contains(&NodeId(1)))
            .unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn merge_with_equal_keys_does_not_reorder_same_child() {
        let a = vec![
            Segment {
                hill: 5,
                valley: 1,
                tasks: vec![NodeId(0)],
            },
            Segment {
                hill: 4,
                valley: 0,
                tasks: vec![NodeId(1)],
            },
        ];
        let merged = merge(vec![a.clone()]);
        assert_eq!(merged, a);
    }
}
