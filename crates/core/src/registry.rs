//! Name-based scheduler lookup and registration: [`SchedulerRegistry`].
//!
//! The registry maps *specs* — `"RecExpand"`, `"RecExpand(max_rounds=5)"`,
//! `"RandomPostOrder(seed=42)"` — to [`Scheduler`] instances. Built-in
//! strategies are pre-registered by [`SchedulerRegistry::with_builtins`];
//! user-defined strategies join through [`SchedulerRegistry::register`] (an
//! instance) or [`SchedulerRegistry::register_factory`] (a parameterized
//! constructor) and are from then on indistinguishable from built-ins: the
//! experiment runner, the figure binaries' `--algos` flag and the CSV/profile
//! reports all address schedulers by name only.

use std::collections::BTreeMap;
use std::str::FromStr;
use std::sync::Arc;

use crate::scheduler::{
    FullRecExpand, OptMinMem, PostOrderMinIo, PostOrderMinMem, RandomPostOrder, RecExpand,
    Scheduler,
};

/// A parsed scheduler spec: a strategy name plus optional `key=value`
/// parameters, the canonical string form being `Name` or
/// `Name(key=value, key=value)`.
///
/// `SchedulerSpec` implements [`FromStr`], so `"RecExpand(max_rounds=5)"
/// .parse::<SchedulerSpec>()` works anywhere; resolution against the set of
/// registered strategies is [`SchedulerRegistry::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSpec {
    /// The strategy name (registry key; matched case-insensitively).
    pub name: String,
    /// The `key=value` parameters, in written order.
    pub params: Vec<(String, String)>,
}

impl SchedulerSpec {
    /// A spec with no parameters.
    pub fn bare(name: impl Into<String>) -> Self {
        SchedulerSpec {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// The value of parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses parameter `key` as an integer, with a default when absent.
    pub fn int_param<T: FromStr>(&self, key: &str, default: T) -> Result<T, SchedulerError> {
        match self.param(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| SchedulerError::BadParameter {
                spec: self.to_string(),
                key: key.to_string(),
                value: v.to_string(),
            }),
        }
    }

    /// Errors if the spec carries a parameter outside `allowed` — factories
    /// call this so that typos (`RecExpand(rounds=3)`) fail loudly instead of
    /// being ignored.
    pub fn ensure_only(&self, allowed: &[&str]) -> Result<(), SchedulerError> {
        for (k, _) in &self.params {
            if !allowed.contains(&k.as_str()) {
                return Err(SchedulerError::UnknownParameter {
                    spec: self.to_string(),
                    key: k.clone(),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.params.is_empty() {
            f.write_str("(")?;
            for (i, (k, v)) in self.params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl FromStr for SchedulerSpec {
    type Err = SchedulerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let malformed = || SchedulerError::MalformedSpec {
            spec: s.to_string(),
        };
        let (name, rest) = match s.find('(') {
            None => (s, None),
            Some(open) => {
                let inner = s[open + 1..].strip_suffix(')').ok_or_else(malformed)?;
                (&s[..open], Some(inner))
            }
        };
        let name = name.trim();
        if name.is_empty() || name.contains([',', ')', '=']) {
            return Err(malformed());
        }
        let mut params = Vec::new();
        if let Some(inner) = rest {
            for part in inner.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (k, v) = part.split_once('=').ok_or_else(malformed)?;
                let (k, v) = (k.trim(), v.trim());
                if k.is_empty() || v.is_empty() {
                    return Err(malformed());
                }
                params.push((k.to_string(), v.to_string()));
            }
        }
        Ok(SchedulerSpec {
            name: name.to_string(),
            params,
        })
    }
}

/// Errors of scheduler lookup and construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// The spec string does not follow `Name` / `Name(key=value, …)`.
    MalformedSpec {
        /// The offending spec string.
        spec: String,
    },
    /// No strategy of this name is registered.
    UnknownScheduler {
        /// The requested name.
        name: String,
        /// The names that are registered, for the error message.
        available: Vec<String>,
    },
    /// A parameter value failed to parse.
    BadParameter {
        /// The full spec string.
        spec: String,
        /// The parameter key.
        key: String,
        /// The unparsable value.
        value: String,
    },
    /// The spec carries a parameter the strategy does not understand.
    UnknownParameter {
        /// The full spec string.
        spec: String,
        /// The unrecognized key.
        key: String,
    },
    /// A name was registered twice.
    DuplicateName {
        /// The already-taken name.
        name: String,
    },
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::MalformedSpec { spec } => {
                write!(
                    f,
                    "malformed scheduler spec {spec:?}: expected `Name` or `Name(key=value, ...)`"
                )
            }
            SchedulerError::UnknownScheduler { name, available } => {
                write!(
                    f,
                    "unknown scheduler {name:?}; registered: {}",
                    available.join(", ")
                )
            }
            SchedulerError::BadParameter { spec, key, value } => {
                write!(f, "bad value {value:?} for parameter `{key}` in {spec:?}")
            }
            SchedulerError::UnknownParameter { spec, key } => {
                write!(f, "unknown parameter `{key}` in {spec:?}")
            }
            SchedulerError::DuplicateName { name } => {
                write!(f, "a scheduler named {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// A constructor turning a parsed [`SchedulerSpec`] into a strategy instance.
pub type SchedulerFactory =
    Box<dyn Fn(&SchedulerSpec) -> Result<Arc<dyn Scheduler>, SchedulerError> + Send + Sync>;

/// An open set of named scheduling strategies.
///
/// ```
/// use std::sync::Arc;
/// use oocts_core::registry::SchedulerRegistry;
/// use oocts_core::scheduler::Scheduler;
/// use oocts_tree::{Schedule, Tree, TreeError};
///
/// #[derive(Debug)]
/// struct PlainPostorder;
/// impl Scheduler for PlainPostorder {
///     fn name(&self) -> String { "PlainPostorder".into() }
///     fn schedule(&self, tree: &Tree, _m: u64) -> Result<Schedule, TreeError> {
///         Ok(Schedule::postorder(tree))
///     }
/// }
///
/// let mut registry = SchedulerRegistry::with_builtins();
/// registry.register(Arc::new(PlainPostorder)).unwrap();
/// let s = registry.get("PlainPostorder").unwrap();
/// assert_eq!(s.name(), "PlainPostorder");
/// assert!(registry.get("RecExpand(max_rounds=4)").is_ok());
/// ```
pub struct SchedulerRegistry {
    // Keyed by lower-cased name so `--algos optminmem` works from a shell.
    entries: BTreeMap<String, (String, SchedulerFactory)>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchedulerRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with every built-in strategy:
    /// `PostOrderMinIO`, `OptMinMem`, `RecExpand` (parameter `max_rounds`,
    /// default 2), `FullRecExpand`, `PostOrderMinMem`, and
    /// `RandomPostOrder` (parameter `seed`, default 0).
    pub fn with_builtins() -> Self {
        let mut r = SchedulerRegistry::new();
        r.insert_factory("PostOrderMinIO", |spec| {
            spec.ensure_only(&[])?;
            Ok(Arc::new(PostOrderMinIo))
        });
        r.insert_factory("OptMinMem", |spec| {
            spec.ensure_only(&[])?;
            Ok(Arc::new(OptMinMem))
        });
        r.insert_factory("RecExpand", |spec| {
            spec.ensure_only(&["max_rounds"])?;
            let max_rounds = spec.int_param("max_rounds", RecExpand::PAPER_ROUNDS)?;
            Ok(Arc::new(RecExpand { max_rounds }))
        });
        r.insert_factory("FullRecExpand", |spec| {
            spec.ensure_only(&[])?;
            Ok(Arc::new(FullRecExpand))
        });
        r.insert_factory("PostOrderMinMem", |spec| {
            spec.ensure_only(&[])?;
            Ok(Arc::new(PostOrderMinMem))
        });
        r.insert_factory("RandomPostOrder", |spec| {
            spec.ensure_only(&["seed"])?;
            let seed = spec.int_param("seed", 0u64)?;
            Ok(Arc::new(RandomPostOrder { seed }))
        });
        r
    }

    // Infallible insertion for the builtin table: last registration wins,
    // so it needs no duplicate check and no Result.
    fn insert_factory(
        &mut self,
        name: &str,
        factory: impl Fn(&SchedulerSpec) -> Result<Arc<dyn Scheduler>, SchedulerError>
            + Send
            + Sync
            + 'static,
    ) {
        self.entries.insert(
            name.to_ascii_lowercase(),
            (name.to_string(), Box::new(factory)),
        );
    }

    /// Registers a fixed strategy instance under (the base name of) its own
    /// [`Scheduler::name`]. The instance is shared (cloned `Arc`) across all
    /// lookups. A lookup may request the bare name or repeat the instance's
    /// canonical parameterized name; any other parameters are rejected.
    pub fn register(&mut self, scheduler: Arc<dyn Scheduler>) -> Result<(), SchedulerError> {
        let canonical: SchedulerSpec = scheduler.name().parse()?;
        let base = canonical.name.clone();
        self.register_factory(&base, move |requested| {
            if requested.params.is_empty() || requested.params == canonical.params {
                Ok(Arc::clone(&scheduler))
            } else {
                Err(SchedulerError::UnknownParameter {
                    spec: requested.to_string(),
                    key: requested.params[0].0.clone(),
                })
            }
        })
    }

    /// Registers a parameterized constructor under `name`. The factory
    /// receives the parsed spec and builds an instance; it should call
    /// [`SchedulerSpec::ensure_only`] to reject unknown parameters.
    pub fn register_factory(
        &mut self,
        name: &str,
        factory: impl Fn(&SchedulerSpec) -> Result<Arc<dyn Scheduler>, SchedulerError>
            + Send
            + Sync
            + 'static,
    ) -> Result<(), SchedulerError> {
        let key = name.to_ascii_lowercase();
        if self.entries.contains_key(&key) {
            return Err(SchedulerError::DuplicateName {
                name: name.to_string(),
            });
        }
        self.entries
            .insert(key, (name.to_string(), Box::new(factory)));
        Ok(())
    }

    /// Resolves a parsed spec to a strategy instance.
    pub fn resolve(&self, spec: &SchedulerSpec) -> Result<Arc<dyn Scheduler>, SchedulerError> {
        let (_, factory) = self
            .entries
            .get(&spec.name.to_ascii_lowercase())
            .ok_or_else(|| SchedulerError::UnknownScheduler {
                name: spec.name.clone(),
                available: self.names().iter().map(|s| s.to_string()).collect(),
            })?;
        factory(spec)
    }

    /// Parses and resolves a spec string (`"RecExpand(max_rounds=5)"`).
    pub fn get(&self, spec: &str) -> Result<Arc<dyn Scheduler>, SchedulerError> {
        self.resolve(&spec.parse()?)
    }

    /// Parses a comma-separated list of specs — the `--algos` syntax of the
    /// figure binaries. Parameterized specs keep their parentheses as long as
    /// they contain no comma (`RecExpand(max_rounds=5),OptMinMem` is fine).
    pub fn get_list(&self, list: &str) -> Result<Vec<Arc<dyn Scheduler>>, SchedulerError> {
        split_spec_list(list)
            .into_iter()
            .filter(|part| !part.is_empty())
            .map(|part| self.get(&part))
            .collect()
    }

    /// The registered names, in their originally registered capitalization,
    /// sorted case-insensitively.
    pub fn names(&self) -> Vec<&str> {
        self.entries
            .values()
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// `true` if a strategy of this name (case-insensitive) is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&name.to_ascii_lowercase())
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no strategy is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        SchedulerRegistry::with_builtins()
    }
}

impl std::fmt::Debug for SchedulerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Splits a comma-separated spec list, keeping commas inside `(...)` intact.
fn split_spec_list(list: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in list.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                parts.push(current.trim().to_string());
                current = String::new();
            }
            _ => current.push(c),
        }
    }
    parts.push(current.trim().to_string());
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::builtin_schedulers;
    use oocts_tree::{Schedule, Tree, TreeBuilder, TreeError};

    #[test]
    fn specs_parse_and_roundtrip() {
        let bare: SchedulerSpec = "RecExpand".parse().unwrap();
        assert_eq!(bare, SchedulerSpec::bare("RecExpand"));
        let with_params: SchedulerSpec = " RecExpand( max_rounds = 5 ) ".parse().unwrap();
        assert_eq!(with_params.name, "RecExpand");
        assert_eq!(with_params.param("max_rounds"), Some("5"));
        assert_eq!(with_params.to_string(), "RecExpand(max_rounds=5)");
        for bad in ["", "(x=1)", "Rec(", "Rec(max_rounds)", "Rec(=1)", "a=b"] {
            assert!(
                bad.parse::<SchedulerSpec>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn every_builtin_name_roundtrips_through_the_registry() {
        let registry = SchedulerRegistry::with_builtins();
        for s in builtin_schedulers() {
            let looked_up = registry.get(&s.name()).unwrap();
            assert_eq!(looked_up.name(), s.name(), "name() ↔ get() must round-trip");
        }
        assert_eq!(registry.len(), builtin_schedulers().len());
    }

    #[test]
    fn lookup_is_case_insensitive_and_parameterized() {
        let registry = SchedulerRegistry::with_builtins();
        assert_eq!(registry.get("optminmem").unwrap().name(), "OptMinMem");
        let re = registry.get("RecExpand(max_rounds=7)").unwrap();
        assert_eq!(re.name(), "RecExpand(max_rounds=7)");
        let rp = registry.get("randompostorder(seed=9)").unwrap();
        assert_eq!(rp.name(), "RandomPostOrder(seed=9)");
    }

    #[test]
    fn unknown_names_and_parameters_error() {
        let registry = SchedulerRegistry::with_builtins();
        assert!(matches!(
            registry.get("NoSuchThing"),
            Err(SchedulerError::UnknownScheduler { .. })
        ));
        assert!(matches!(
            registry.get("OptMinMem(seed=1)"),
            Err(SchedulerError::UnknownParameter { .. })
        ));
        assert!(matches!(
            registry.get("RecExpand(max_rounds=lots)"),
            Err(SchedulerError::BadParameter { .. })
        ));
    }

    #[test]
    fn spec_error_paths_reject_out_of_range_and_malformed_values() {
        let registry = SchedulerRegistry::with_builtins();
        // Out-of-range / untypeable parameter values: the spec parses but the
        // factory's typed `int_param` rejects the value.
        for bad in [
            "RecExpand(max_rounds=-1)",
            "RecExpand(max_rounds=2.5)",
            "RecExpand(max_rounds=99999999999999999999999)",
            "RandomPostOrder(seed=-5)",
        ] {
            assert!(
                matches!(registry.get(bad), Err(SchedulerError::BadParameter { .. })),
                "{bad:?} must be rejected as a bad parameter value"
            );
        }
        // Malformed parameter lists fail already at parse time.
        for bad in [
            "RecExpand(max_rounds=5",
            "Rec()trailing",
            "Re)c(",
            ",",
            "x(y=1,=2)",
        ] {
            assert!(
                matches!(
                    bad.parse::<SchedulerSpec>(),
                    Err(SchedulerError::MalformedSpec { .. })
                ),
                "{bad:?} must be rejected as malformed"
            );
        }
        // Errors render the offending spec for the user.
        let err = match registry.get("NoSuchThing") {
            Err(e) => e,
            Ok(_) => panic!("NoSuchThing must not resolve"),
        };
        assert!(err.to_string().contains("NoSuchThing"));
        let err = "Rec(".parse::<SchedulerSpec>().unwrap_err();
        assert!(err.to_string().contains("Rec("));
    }

    #[test]
    fn get_list_splits_on_top_level_commas_only() {
        let registry = SchedulerRegistry::with_builtins();
        let list = registry
            .get_list("PostOrderMinIO, RecExpand(max_rounds=3),optminmem")
            .unwrap();
        let names: Vec<_> = list.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["PostOrderMinIO", "RecExpand(max_rounds=3)", "OptMinMem"]
        );
        assert!(registry.get_list("PostOrderMinIO,bogus").is_err());
    }

    #[derive(Debug)]
    struct Constant;
    impl crate::scheduler::Scheduler for Constant {
        fn name(&self) -> String {
            "Constant".to_string()
        }
        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            Ok(Schedule::postorder(tree))
        }
    }

    #[test]
    fn custom_instances_register_and_resolve() {
        let mut registry = SchedulerRegistry::with_builtins();
        registry.register(Arc::new(Constant)).unwrap();
        assert!(registry.contains("constant"));
        let s = registry.get("Constant").unwrap();
        let mut b = TreeBuilder::new();
        let r = b.add_root(1);
        b.add_child(r, 2);
        let t = b.build().unwrap();
        assert_eq!(s.schedule(&t, 10).unwrap().len(), 2);
        // Second registration of the same name fails.
        assert!(matches!(
            registry.register(Arc::new(Constant)),
            Err(SchedulerError::DuplicateName { .. })
        ));
    }
}
