//! The open scheduling interface: the [`Scheduler`] trait and the built-in
//! strategy adapters.
//!
//! Every scheduling strategy — the paper's as well as user-defined ones —
//! implements [`Scheduler`]: map `(tree, M)` to an execution order. The
//! charged I/O volume is always the one produced by the Furthest-in-the-Future
//! simulator on that order ([`oocts_tree::fif_io`]), which Theorem 1 makes the
//! fairest possible accounting; the provided [`Scheduler::solve`] method
//! performs that simulation and packages the outcome as a [`SolveReport`].
//!
//! The five strategies of the closed pre-0.2 `Algorithm` enum are available
//! as zero-cost adapter types ([`PostOrderMinIo`], [`OptMinMem`],
//! [`RecExpand`], [`FullRecExpand`], [`PostOrderMinMem`]), plus a seeded
//! tie-breaking baseline ([`RandomPostOrder`]) demonstrating parameterized
//! schedulers. Name-based lookup and registration of custom strategies live
//! in [`crate::registry`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use oocts_tree::{fif_io, peak_memory, Schedule, Tree, TreeError};

use crate::postorder::post_order_min_io;
use crate::recexpand::rec_expand_with_limit;

/// A scheduling strategy for the MinIO problem.
///
/// Implementors only choose an execution order; I/O accounting is uniform
/// across all strategies (the FiF simulator, via [`Scheduler::solve`]). The
/// trait is object-safe: the experiment runner, the figure binaries and the
/// registry all work with `Arc<dyn Scheduler>`.
pub trait Scheduler: Send + Sync {
    /// The strategy's display name, also its registry key. Parameterized
    /// schedulers should render their parameters in the canonical spec
    /// syntax, e.g. `"RecExpand(max_rounds=3)"`, so that the name resolves
    /// back to an equivalent scheduler through
    /// [`crate::registry::SchedulerRegistry::get`].
    fn name(&self) -> String;

    /// Computes the execution order for `tree` under memory bound `memory`.
    fn schedule(&self, tree: &Tree, memory: u64) -> Result<Schedule, TreeError>;

    /// Like [`Scheduler::schedule`], additionally reporting node-expansion
    /// statistics. Strategies that do not expand nodes keep the default
    /// (empty stats).
    fn schedule_with_stats(
        &self,
        tree: &Tree,
        memory: u64,
    ) -> Result<(Schedule, ExpansionStats), TreeError> {
        Ok((self.schedule(tree, memory)?, ExpansionStats::default()))
    }

    /// Runs the strategy and measures it: FiF I/O volume, the paper's
    /// performance metric, the schedule's in-core peak, expansion statistics
    /// and scheduling wall-time.
    fn solve(&self, tree: &Tree, memory: u64) -> Result<SolveReport, TreeError> {
        let started = Instant::now();
        let (schedule, expansion) = self.schedule_with_stats(tree, memory)?;
        let wall_time = started.elapsed();
        let io = fif_io(tree, &schedule, memory)?;
        let peak = peak_memory(tree, &schedule)?;
        debug_assert_eq!(
            peak, io.peak_in_core,
            "the schedule's memory profile and the simulator disagree on the in-core peak"
        );
        let report = SolveReport {
            scheduler: self.name(),
            io_volume: io.total_io,
            performance: io.performance(memory),
            peak_memory: peak,
            expansion,
            wall_time,
            schedule,
        };
        // Invariant layer: in debug builds, every solve re-checks its own
        // report (full coverage, valid schedule, consistent peak).
        debug_assert!(
            report.validate(tree).is_ok(),
            "scheduler {} produced an inconsistent report: {:?}",
            report.scheduler,
            report.validate(tree)
        );
        Ok(report)
    }
}

/// Node-expansion statistics of one scheduling run (all zeros for strategies
/// that never expand nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpansionStats {
    /// Number of node expansions performed.
    pub expansions: usize,
    /// Total I/O forced through the expansions.
    pub forced_io: u64,
    /// `true` if the safety cap on expansion iterations was reached.
    pub hit_iteration_cap: bool,
}

/// The outcome of running one [`Scheduler`] on one instance.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// [`Scheduler::name`] of the strategy that produced this report.
    pub scheduler: String,
    /// Total I/O volume of the schedule under the FiF policy.
    pub io_volume: u64,
    /// The paper's performance metric `(M + IO)/M`.
    pub performance: f64,
    /// In-core peak memory of the schedule (what the order would need to run
    /// without any I/O).
    pub peak_memory: u64,
    /// Node-expansion statistics (zero for non-expanding strategies).
    pub expansion: ExpansionStats,
    /// Wall-clock time spent computing the schedule (excludes simulation).
    pub wall_time: Duration,
    /// The schedule itself.
    pub schedule: Schedule,
}

impl SolveReport {
    /// Checks this report against the instance it was produced for: the
    /// tree is well-formed, the schedule is a valid order that executes
    /// *every* node exactly once, and the reported in-core peak matches a
    /// recomputation from the schedule.
    ///
    /// [`Scheduler::solve`] runs this via `debug_assert!` on every call, so
    /// each existing test doubles as an invariant test; call it directly to
    /// check reports crossing a trust boundary in release builds too.
    pub fn validate(&self, tree: &Tree) -> Result<(), TreeError> {
        tree.validate()?;
        self.schedule.validate(tree)?;
        if self.schedule.len() != tree.len() {
            return Err(TreeError::ReportMismatch {
                field: "scheduled node count",
                reported: self.schedule.len() as u64,
                actual: tree.len() as u64,
            });
        }
        let peak = peak_memory(tree, &self.schedule)?;
        if peak != self.peak_memory {
            return Err(TreeError::ReportMismatch {
                field: "in-core peak memory",
                reported: self.peak_memory,
                actual: peak,
            });
        }
        Ok(())
    }
}

/// Best postorder for I/O volume (Section 4.1; Agullo).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostOrderMinIo;

impl Scheduler for PostOrderMinIo {
    fn name(&self) -> String {
        "PostOrderMinIO".to_string()
    }

    fn schedule(&self, tree: &Tree, memory: u64) -> Result<Schedule, TreeError> {
        Ok(post_order_min_io(tree, memory).0)
    }
}

/// Liu's optimal peak-memory traversal, run out-of-core with FiF
/// (Section 4.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptMinMem;

impl Scheduler for OptMinMem {
    fn name(&self) -> String {
        "OptMinMem".to_string()
    }

    fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
        Ok(oocts_minmem::opt_min_mem(tree).0)
    }
}

/// Best postorder for peak memory (Liu 1986), as an extra baseline not
/// plotted in the paper but useful for ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostOrderMinMem;

impl Scheduler for PostOrderMinMem {
    fn name(&self) -> String {
        "PostOrderMinMem".to_string()
    }

    fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
        Ok(oocts_minmem::post_order_min_mem(tree).0)
    }
}

/// The paper's cheap heuristic (Section 5): at most [`RecExpand::max_rounds`]
/// expansion rounds per node. The paper fixes the limit to 2; other limits
/// are exposed for ablations (`RecExpand { max_rounds: 5 }` or, through the
/// registry, `"RecExpand(max_rounds=5)"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecExpand {
    /// Maximum number of expansion iterations per node.
    pub max_rounds: usize,
}

impl Default for RecExpand {
    fn default() -> Self {
        RecExpand {
            max_rounds: Self::PAPER_ROUNDS,
        }
    }
}

impl RecExpand {
    /// The per-node iteration limit used throughout the paper.
    pub const PAPER_ROUNDS: usize = 2;

    /// The paper's configuration (`max_rounds = 2`), as a `const` for
    /// contexts where `Default::default()` is unavailable.
    pub const PAPER: RecExpand = RecExpand {
        max_rounds: Self::PAPER_ROUNDS,
    };
}

impl Scheduler for RecExpand {
    fn name(&self) -> String {
        if self.max_rounds == Self::PAPER_ROUNDS {
            "RecExpand".to_string()
        } else {
            format!("RecExpand(max_rounds={})", self.max_rounds)
        }
    }

    fn schedule(&self, tree: &Tree, memory: u64) -> Result<Schedule, TreeError> {
        Ok(self.schedule_with_stats(tree, memory)?.0)
    }

    fn schedule_with_stats(
        &self,
        tree: &Tree,
        memory: u64,
    ) -> Result<(Schedule, ExpansionStats), TreeError> {
        let out = rec_expand_with_limit(tree, memory, Some(self.max_rounds))?;
        let stats = ExpansionStats {
            expansions: out.expansions,
            forced_io: out.forced_io,
            hit_iteration_cap: out.hit_iteration_cap,
        };
        Ok((out.schedule, stats))
    }
}

/// The paper's full heuristic (Section 5): expansion rounds until the subtree
/// fits. Expensive; the paper only runs it on the SYNTH dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullRecExpand;

impl Scheduler for FullRecExpand {
    fn name(&self) -> String {
        "FullRecExpand".to_string()
    }

    fn schedule(&self, tree: &Tree, memory: u64) -> Result<Schedule, TreeError> {
        Ok(self.schedule_with_stats(tree, memory)?.0)
    }

    fn schedule_with_stats(
        &self,
        tree: &Tree,
        memory: u64,
    ) -> Result<(Schedule, ExpansionStats), TreeError> {
        let out = rec_expand_with_limit(tree, memory, None)?;
        let stats = ExpansionStats {
            expansions: out.expansions,
            forced_io: out.forced_io,
            hit_iteration_cap: out.hit_iteration_cap,
        };
        Ok((out.schedule, stats))
    }
}

/// A seeded random postorder: children are visited in an order shuffled by a
/// per-node splitmix64 stream. A deliberately weak baseline that shows how
/// parameterized (here: seeded) schedulers flow through the registry; also
/// handy to estimate how much of `PostOrderMinIO`'s quality comes from its
/// child ordering rather than from postorder structure itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomPostOrder {
    /// Seed of the shuffling stream; equal seeds give equal schedules.
    pub seed: u64,
}

impl Scheduler for RandomPostOrder {
    fn name(&self) -> String {
        format!("RandomPostOrder(seed={})", self.seed)
    }

    fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
        let mut order = Vec::with_capacity(tree.len());
        let mut state = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        // Explicit stack (chain-shaped TREES instances would overflow the
        // call stack): `true` marks a node whose children are already done.
        let mut stack = vec![(tree.root(), false)];
        while let Some((node, children_done)) = stack.pop() {
            if children_done {
                order.push(node);
                continue;
            }
            stack.push((node, true));
            let mut children = tree.children(node).to_vec();
            // Fisher–Yates with the splitmix64 stream.
            for i in (1..children.len()).rev() {
                let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                children.swap(i, j);
            }
            // Reversed, so the first shuffled child is popped (visited) first.
            for &child in children.iter().rev() {
                stack.push((child, false));
            }
        }
        Ok(Schedule::new(order))
    }
}

/// splitmix64 step: the simplest high-quality deterministic stream, avoiding
/// a dependency of `oocts-core` on an RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The four strategies compared on the SYNTH dataset (paper, Figure 4).
pub fn synth_schedulers() -> Vec<Arc<dyn Scheduler>> {
    vec![
        Arc::new(PostOrderMinIo),
        Arc::new(OptMinMem),
        Arc::new(RecExpand::default()),
        Arc::new(FullRecExpand),
    ]
}

/// The three strategies compared on the TREES dataset (paper, Figure 5):
/// `FullRecExpand` is excluded because of its computational cost.
pub fn trees_schedulers() -> Vec<Arc<dyn Scheduler>> {
    vec![
        Arc::new(PostOrderMinIo),
        Arc::new(OptMinMem),
        Arc::new(RecExpand::default()),
    ]
}

/// Every built-in strategy, in the column order of the pre-0.2 `Algorithm`
/// enum (plus the seeded baseline last).
pub fn builtin_schedulers() -> Vec<Arc<dyn Scheduler>> {
    vec![
        Arc::new(PostOrderMinIo),
        Arc::new(OptMinMem),
        Arc::new(RecExpand::default()),
        Arc::new(FullRecExpand),
        Arc::new(PostOrderMinMem),
        Arc::new(RandomPostOrder::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::TreeBuilder;

    fn fig6_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let l1 = b.add_child(root, 4);
        let l2 = b.add_child(l1, 8);
        let l3 = b.add_child(l2, 2);
        b.add_child(l3, 9);
        let r1 = b.add_child(root, 6);
        let r2 = b.add_child(r1, 4);
        b.add_child(r2, 10);
        b.build().unwrap()
    }

    #[test]
    fn every_builtin_produces_a_valid_full_schedule() {
        let t = fig6_tree();
        for s in builtin_schedulers() {
            let report = s.solve(&t, 10).unwrap();
            report.schedule.validate(&t).unwrap();
            assert_eq!(
                report.schedule.len(),
                t.len(),
                "{} must cover the tree",
                s.name()
            );
            assert!(report.performance >= 1.0);
            assert_eq!(report.scheduler, s.name());
        }
    }

    #[test]
    fn solve_reports_are_rich_and_consistent() {
        let t = fig6_tree();
        let report = RecExpand::default().solve(&t, 10).unwrap();
        let expected = (10 + report.io_volume) as f64 / 10.0;
        assert!((report.performance - expected).abs() < 1e-12);
        assert!(report.peak_memory >= t.min_feasible_memory());
        assert!(
            report.expansion.expansions >= 1,
            "fig6 at M=10 forces expansions"
        );
        assert!(!report.expansion.hit_iteration_cap);
        // Non-expanding strategies report empty stats.
        let po = PostOrderMinIo.solve(&t, 10).unwrap();
        assert_eq!(po.expansion, ExpansionStats::default());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            builtin_schedulers().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), builtin_schedulers().len());
    }

    #[test]
    fn parameterized_names_render_their_parameters() {
        assert_eq!(RecExpand::default().name(), "RecExpand");
        assert_eq!(
            RecExpand { max_rounds: 5 }.name(),
            "RecExpand(max_rounds=5)"
        );
        assert_eq!(
            RandomPostOrder { seed: 7 }.name(),
            "RandomPostOrder(seed=7)"
        );
    }

    #[test]
    fn postorder_schedulers_return_postorders() {
        let t = fig6_tree();
        let pos: [Arc<dyn Scheduler>; 3] = [
            Arc::new(PostOrderMinIo),
            Arc::new(PostOrderMinMem),
            Arc::new(RandomPostOrder { seed: 3 }),
        ];
        for s in pos {
            let sched = s.schedule(&t, 10).unwrap();
            assert!(
                sched.is_postorder(&t),
                "{} must return a postorder",
                s.name()
            );
        }
    }

    #[test]
    fn random_postorder_is_deterministic_per_seed() {
        let t = fig6_tree();
        let a = RandomPostOrder { seed: 1 }.schedule(&t, 10).unwrap();
        let b = RandomPostOrder { seed: 1 }.schedule(&t, 10).unwrap();
        assert_eq!(a.order(), b.order());
        // Some seed must differ from seed 1 on this 8-node tree.
        let mut differs = false;
        for seed in 2..20 {
            let c = RandomPostOrder { seed }.schedule(&t, 10).unwrap();
            c.validate(&t).unwrap();
            differs |= c.order() != a.order();
        }
        assert!(differs, "shuffling must actually depend on the seed");
    }

    #[test]
    fn random_postorder_handles_deep_chains_without_recursion() {
        // Chain-shaped assembly trees (RCM orderings) reach tens of
        // thousands of levels; the traversal must not use the call stack.
        let mut b = TreeBuilder::new();
        let mut node = b.add_root(1);
        for _ in 0..200_000 {
            node = b.add_child(node, 1);
        }
        let t = b.build().unwrap();
        let s = RandomPostOrder { seed: 5 }.schedule(&t, 10).unwrap();
        assert_eq!(s.len(), t.len());
        assert!(s.is_postorder(&t));
    }

    #[test]
    fn rec_expand_rounds_match_the_ablation_api() {
        let t = fig6_tree();
        for rounds in [1usize, 2, 3] {
            let via_trait = RecExpand { max_rounds: rounds }.schedule(&t, 10).unwrap();
            let direct = rec_expand_with_limit(&t, 10, Some(rounds))
                .unwrap()
                .schedule;
            assert_eq!(via_trait.order(), direct.order());
        }
    }
}
