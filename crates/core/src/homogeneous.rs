//! Homogeneous trees (all output data of size 1): the labelling of
//! Section 4.2 and the exact optimality results around it.
//!
//! For homogeneous trees the paper proves (Theorem 4) that the best postorder
//! (`PostOrderMinIO`, or equivalently the `POSTORDER` schedule that processes
//! children by non-increasing `l`-label) performs the minimum possible number
//! of I/Os over all traversals. The proof machinery — the labels `l(v)`,
//! `c(v)`, `m(v)`, `w(v)` and the total `W(T)` — doubles as an *exact lower
//! bound* usable in tests and experiments.

use oocts_tree::{NodeId, Schedule, Tree};

/// Error returned when a homogeneous-tree routine is called on a tree that
/// has a node of weight different from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotHomogeneous {
    /// A node whose weight is not 1.
    pub node: NodeId,
    /// Its weight.
    pub weight: u64,
}

impl std::fmt::Display for NotHomogeneous {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tree is not homogeneous: node {:?} has weight {}",
            self.node, self.weight
        )
    }
}

impl std::error::Error for NotHomogeneous {}

/// The labelling of Section 4.2 for a homogeneous tree and a memory bound.
#[derive(Debug, Clone)]
pub struct HomogeneousLabels {
    /// `l(v)`: minimum memory (in unit slots) needed to execute the subtree
    /// rooted at `v` without any I/O.
    pub l: Vec<u64>,
    /// `c(v)`: 1 if, under the `POSTORDER` schedule, the output of `v` is
    /// written to disk while one of its later siblings' subtrees executes.
    pub c: Vec<u8>,
    /// `w(v)`: number of children of `v` written to disk by `POSTORDER`.
    pub w: Vec<u64>,
    /// The order in which each node's children are processed (non-increasing
    /// `l`-labels).
    pub child_order: Vec<Vec<NodeId>>,
    /// The memory bound used to compute `c` and `w`.
    pub memory: u64,
}

impl HomogeneousLabels {
    /// `W(T)`: the total I/O volume of `POSTORDER`, which is also a lower
    /// bound on the I/O volume of *any* traversal (Lemmas 3 and 5).
    pub fn total_io(&self) -> u64 {
        self.w.iter().sum()
    }
}

fn check_homogeneous(tree: &Tree) -> Result<(), NotHomogeneous> {
    for node in tree.node_ids() {
        let w = tree.weight(node);
        if w != 1 {
            return Err(NotHomogeneous { node, weight: w });
        }
    }
    Ok(())
}

/// Computes the `l`, `c`, `w` labels of Section 4.2 for a homogeneous tree
/// under memory bound `memory`.
pub fn labels(tree: &Tree, memory: u64) -> Result<HomogeneousLabels, NotHomogeneous> {
    check_homogeneous(tree)?;
    let n = tree.len();
    let mut l = vec![0u64; n];
    let mut child_order: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &node in tree.postorder() {
        let children = tree.children(node);
        if children.is_empty() {
            l[node.index()] = 1;
            continue;
        }
        let mut sorted: Vec<NodeId> = children.to_vec();
        sorted.sort_by(|&a, &b| l[b.index()].cmp(&l[a.index()]));
        let mut label = 0u64;
        for (i, &c) in sorted.iter().enumerate() {
            label = label.max(l[c.index()] + i as u64);
        }
        l[node.index()] = label;
        child_order[node.index()] = sorted;
    }

    // c labels: children processed in POSTORDER order.
    let mut c = vec![0u8; n];
    let mut w = vec![0u64; n];
    for &node in tree.postorder() {
        if tree.is_leaf(node) {
            continue;
        }
        let order = &child_order[node.index()];
        let mut in_memory = 0u64; // m(v_i) = number of earlier children kept in memory
        for (i, &child) in order.iter().enumerate() {
            let keep = if i == 0 {
                true
            } else {
                l[child.index()] + in_memory <= memory
            };
            if keep {
                c[child.index()] = 0;
                in_memory += 1;
            } else {
                c[child.index()] = 1;
            }
            w[node.index()] += u64::from(c[child.index()]);
        }
    }
    // c(root) = 0 by definition (already 0).

    Ok(HomogeneousLabels {
        l,
        c,
        w,
        child_order,
        memory,
    })
}

/// The `POSTORDER` schedule of Section 4.2: a postorder that processes every
/// node's children by non-increasing `l`-label.
pub fn postorder_schedule(tree: &Tree) -> Result<Schedule, NotHomogeneous> {
    let lbl = labels(tree, u64::MAX)?;
    let mut schedule = Vec::with_capacity(tree.len());
    let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
    while let Some((node, idx)) = stack.pop() {
        let kids: &[NodeId] = if tree.children(node).is_empty() {
            &[]
        } else {
            &lbl.child_order[node.index()]
        };
        if idx < kids.len() {
            stack.push((node, idx + 1));
            stack.push((kids[idx], 0));
        } else {
            schedule.push(node);
        }
    }
    Ok(Schedule::new(schedule))
}

/// The exact minimum I/O volume of a homogeneous tree under memory bound
/// `memory`: `W(T)` (Theorem 4 — both an upper bound achieved by `POSTORDER`
/// and a lower bound for every traversal).
pub fn min_io(tree: &Tree, memory: u64) -> Result<u64, NotHomogeneous> {
    Ok(labels(tree, memory)?.total_io())
}

/// Lower bound on the I/O volume of *any* traversal of an arbitrary tree:
/// for homogeneous trees this is the exact `W(T)`; for heterogeneous trees it
/// falls back to the trivial bound `max(0, minimal peak − M)` computed from
/// Liu's optimal peak, which any traversal must pay at its peak instant...
/// (the data exceeding `M` at the tightest instant must have been written).
///
/// This helper is primarily used by tests and by the experiment reports.
pub fn io_lower_bound(tree: &Tree, memory: u64, optimal_peak: u64) -> u64 {
    if tree.is_homogeneous() {
        min_io(tree, memory).unwrap_or(0)
    } else {
        optimal_peak.saturating_sub(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::{fif_io, TreeBuilder};

    /// A complete binary tree of the given height with unit weights.
    fn complete_binary(height: u32) -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let mut frontier = vec![root];
        for _ in 0..height {
            let mut next = Vec::new();
            for node in frontier {
                next.push(b.add_child(node, 1));
                next.push(b.add_child(node, 1));
            }
            frontier = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn l_labels_of_small_trees() {
        // A leaf has l = 1.
        let t = Tree::singleton(1);
        let lbl = labels(&t, 10).unwrap();
        assert_eq!(lbl.l[0], 1);

        // A node with two leaf children: l = max(1 + 0, 1 + 1) = 2.
        let mut b = TreeBuilder::new();
        let r = b.add_root(1);
        b.add_child(r, 1);
        b.add_child(r, 1);
        let t = b.build().unwrap();
        let lbl = labels(&t, 10).unwrap();
        assert_eq!(lbl.l[r.index()], 2);

        // Complete binary tree of height 2: the classical Sethi–Ullman number
        // is height + 1 = 3.
        let t = complete_binary(2);
        let lbl = labels(&t, 10).unwrap();
        assert_eq!(lbl.l[t.root().index()], 3);
    }

    #[test]
    fn rejects_non_homogeneous_trees() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(1);
        b.add_child(r, 2);
        let t = b.build().unwrap();
        assert!(labels(&t, 10).is_err());
        assert!(postorder_schedule(&t).is_err());
        assert!(min_io(&t, 10).is_err());
    }

    #[test]
    fn postorder_schedule_needs_l_root_slots() {
        // Lemma 1: POSTORDER uses exactly l(root) slots when memory is ample.
        let t = complete_binary(3);
        let lbl = labels(&t, u64::MAX).unwrap();
        let s = postorder_schedule(&t).unwrap();
        let peak = oocts_tree::peak_memory(&t, &s).unwrap();
        assert_eq!(peak, lbl.l[t.root().index()]);
    }

    #[test]
    fn w_t_matches_fif_simulation_of_postorder() {
        // Lemma 3 (upper bound): POSTORDER performs at most W(T) I/Os; in
        // fact exactly W(T) on these instances.
        let t = complete_binary(4); // l(root) = 5
        for m in [2u64, 3, 4] {
            let lbl = labels(&t, m).unwrap();
            let s = postorder_schedule(&t).unwrap();
            let sim = fif_io(&t, &s, m).unwrap();
            assert_eq!(
                sim.total_io,
                lbl.total_io(),
                "W(T) and the FiF simulation disagree for M = {m}"
            );
        }
    }

    #[test]
    fn no_io_needed_when_memory_reaches_l_root() {
        let t = complete_binary(3); // l(root) = 4
        let m = 4;
        assert_eq!(min_io(&t, m).unwrap(), 0);
        let s = postorder_schedule(&t).unwrap();
        assert_eq!(fif_io(&t, &s, m).unwrap().total_io, 0);
    }

    #[test]
    fn io_lower_bound_heterogeneous_fallback() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        b.add_child(r, 3);
        b.add_child(r, 4);
        let t = b.build().unwrap();
        // Optimal peak is 7 (both children resident for the root).
        assert_eq!(io_lower_bound(&t, 7, 7), 0);
        assert_eq!(io_lower_bound(&t, 6, 7), 1);
    }
}
