//! Theorem 2: from an I/O function `τ` to a schedule `σ`.
//!
//! Given an I/O function `τ` for which *some* valid schedule exists, a valid
//! schedule can be computed in polynomial time: expand every node `i` with
//! `τ(i) > 0` (paper, Figure 3), run OptMinMem on the expanded tree, and map
//! the resulting schedule back to the original tree. The expanded tree can be
//! traversed within `M` units of memory if and only if `(σ, τ)` is feasible
//! for some `σ`.

use oocts_minmem::opt_min_mem;
use oocts_tree::{ExpandedTree, Schedule, Tree, TreeError};

/// Attempts to build a schedule `σ` such that `(σ, τ)` is a valid traversal
/// of `tree` under memory bound `memory`.
///
/// Returns `Ok(schedule)` if one exists, `Err(TreeError::MemoryExceeded)` if
/// no schedule is compatible with this I/O function, or another error if
/// `τ` itself is malformed (e.g. `τ(i) > w_i`).
pub fn schedule_for_io_function(
    tree: &Tree,
    tau: &[u64],
    memory: u64,
) -> Result<Schedule, TreeError> {
    assert_eq!(tau.len(), tree.len(), "tau must be indexed by node id");
    for node in tree.node_ids() {
        if tau[node.index()] > tree.weight(node) {
            return Err(TreeError::IoExceedsWeight {
                node,
                io: tau[node.index()],
                weight: tree.weight(node),
            });
        }
    }
    let mut expanded = ExpandedTree::new(tree);
    for node in tree.node_ids() {
        if tau[node.index()] > 0 {
            expanded.expand(node, tau[node.index()]);
        }
    }
    let (schedule_exp, peak) = opt_min_mem(expanded.tree());
    if peak > memory {
        return Err(TreeError::MemoryExceeded {
            node: tree.root(),
            used: peak,
            available: memory,
        });
    }
    let schedule = expanded.to_original_schedule(&schedule_exp);
    debug_assert!(schedule.validate(tree).is_ok());
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::{check_traversal, TreeBuilder};

    /// root(1) with two chains a(2) <- la(6) and b(2) <- lb(6):
    /// peak without I/O is 8; with 1 unit of `a` written out, 7 suffices.
    fn two_chains() -> Tree {
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 2);
        bld.add_child(a, 6);
        let b = bld.add_child(r, 2);
        bld.add_child(b, 6);
        bld.build().unwrap()
    }

    #[test]
    fn feasible_tau_yields_valid_traversal() {
        let t = two_chains();
        let mut tau = vec![0u64; t.len()];
        tau[1] = 1; // write one unit of node a
        let schedule = schedule_for_io_function(&t, &tau, 7).unwrap();
        // (σ, τ) is a valid traversal under M = 7 with exactly 1 I/O.
        assert_eq!(check_traversal(&t, &schedule, &tau, 7).unwrap(), 1);
    }

    #[test]
    fn infeasible_tau_is_rejected() {
        let t = two_chains();
        let tau = vec![0u64; t.len()];
        // Without any I/O the best peak is 8 > 7: no schedule exists.
        assert!(matches!(
            schedule_for_io_function(&t, &tau, 7),
            Err(TreeError::MemoryExceeded { .. })
        ));
        // But 8 units of memory are enough.
        assert!(schedule_for_io_function(&t, &tau, 8).is_ok());
    }

    #[test]
    fn malformed_tau_is_rejected() {
        let t = two_chains();
        let mut tau = vec![0u64; t.len()];
        tau[1] = 100;
        assert!(matches!(
            schedule_for_io_function(&t, &tau, 7),
            Err(TreeError::IoExceedsWeight { .. })
        ));
    }
}
