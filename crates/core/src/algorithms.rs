//! Deprecated closed enumeration of the built-in strategies.
//!
//! The [`Algorithm`] enum predates the open [`crate::scheduler::Scheduler`]
//! trait. It is kept as a thin shim — every method delegates to the
//! trait adapters the registry serves — so existing code keeps compiling,
//! but new code should use the trait API:
//!
//! | pre-0.2 | now |
//! |---|---|
//! | `Algorithm::RecExpand.run(&tree, m)` | `RecExpand::default().solve(&tree, m)` |
//! | `Algorithm::RecExpand.schedule(&tree, m)` | `RecExpand::default().schedule(&tree, m)` |
//! | `Algorithm::SYNTH_SET.to_vec()` | `scheduler::synth_schedulers()` |
//! | `Algorithm::ALL` iteration | `scheduler::builtin_schedulers()` / `SchedulerRegistry` |
//! | matching on the enum to dispatch | `SchedulerRegistry::get(name)` |

#![allow(deprecated)]

use std::str::FromStr;
use std::sync::Arc;

use oocts_tree::{Schedule, Tree, TreeError};

use crate::registry::SchedulerError;
use crate::scheduler::{
    FullRecExpand, OptMinMem, PostOrderMinIo, PostOrderMinMem, RecExpand, Scheduler,
};

/// The scheduling strategies evaluated in the paper (Section 6) plus the
/// peak-memory postorder baseline.
#[deprecated(
    since = "0.2.0",
    note = "use the open `scheduler::Scheduler` trait and `registry::SchedulerRegistry` instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Best postorder for I/O volume (Section 4.1; Agullo).
    PostOrderMinIo,
    /// Liu's optimal peak-memory traversal, run out-of-core with FiF
    /// (Section 4.4).
    OptMinMem,
    /// The paper's cheap heuristic: at most two expansion rounds per node
    /// (Section 5).
    RecExpand,
    /// The paper's full heuristic: expansion rounds until the subtree fits
    /// (Section 5). Expensive; the paper only runs it on the SYNTH dataset.
    FullRecExpand,
    /// Best postorder for peak memory (Liu 1986), as an extra baseline not
    /// plotted in the paper but useful for ablations.
    PostOrderMinMem,
}

impl Algorithm {
    /// The four strategies compared on the SYNTH dataset (paper, Figure 4).
    pub const SYNTH_SET: [Algorithm; 4] = [
        Algorithm::PostOrderMinIo,
        Algorithm::OptMinMem,
        Algorithm::RecExpand,
        Algorithm::FullRecExpand,
    ];

    /// The three strategies compared on the TREES dataset (paper, Figure 5):
    /// `FullRecExpand` is excluded because of its computational cost.
    pub const TREES_SET: [Algorithm; 3] = [
        Algorithm::PostOrderMinIo,
        Algorithm::OptMinMem,
        Algorithm::RecExpand,
    ];

    /// Every strategy known to the enum.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PostOrderMinIo,
        Algorithm::OptMinMem,
        Algorithm::RecExpand,
        Algorithm::FullRecExpand,
        Algorithm::PostOrderMinMem,
    ];

    /// The equivalent trait-based scheduler (what the registry serves under
    /// [`Algorithm::name`]).
    pub fn to_scheduler(self) -> Arc<dyn Scheduler> {
        match self {
            Algorithm::PostOrderMinIo => Arc::new(PostOrderMinIo),
            Algorithm::OptMinMem => Arc::new(OptMinMem),
            Algorithm::RecExpand => Arc::new(RecExpand::default()),
            Algorithm::FullRecExpand => Arc::new(FullRecExpand),
            Algorithm::PostOrderMinMem => Arc::new(PostOrderMinMem),
        }
    }

    /// The name used in the paper (and in our reports).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PostOrderMinIo => "PostOrderMinIO",
            Algorithm::OptMinMem => "OptMinMem",
            Algorithm::RecExpand => "RecExpand",
            Algorithm::FullRecExpand => "FullRecExpand",
            Algorithm::PostOrderMinMem => "PostOrderMinMem",
        }
    }

    /// Computes this strategy's schedule for `tree` under memory bound
    /// `memory`.
    pub fn schedule(self, tree: &Tree, memory: u64) -> Result<Schedule, TreeError> {
        self.to_scheduler().schedule(tree, memory)
    }

    /// Runs the strategy and measures its I/O volume with the FiF simulator.
    pub fn run(self, tree: &Tree, memory: u64) -> Result<AlgorithmResult, TreeError> {
        let report = self.to_scheduler().solve(tree, memory)?;
        Ok(AlgorithmResult {
            algorithm: self,
            io_volume: report.io_volume,
            performance: report.performance,
            schedule: report.schedule,
        })
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = SchedulerError;

    /// Case-insensitive lookup by [`Algorithm::name`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let wanted = s.trim();
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(wanted))
            .ok_or_else(|| SchedulerError::UnknownScheduler {
                name: wanted.to_string(),
                available: Algorithm::ALL
                    .iter()
                    .map(|a| a.name().to_string())
                    .collect(),
            })
    }
}

/// The outcome of running one strategy on one instance (shim counterpart of
/// [`crate::scheduler::SolveReport`]).
#[deprecated(since = "0.2.0", note = "use `scheduler::SolveReport` instead")]
#[derive(Debug, Clone)]
pub struct AlgorithmResult {
    /// The strategy that produced this result.
    pub algorithm: Algorithm,
    /// Total I/O volume of the schedule under the FiF policy.
    pub io_volume: u64,
    /// The paper's performance metric `(M + IO)/M`.
    pub performance: f64,
    /// The schedule itself.
    pub schedule: Schedule,
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::TreeBuilder;

    fn fig6_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let l1 = b.add_child(root, 4);
        let l2 = b.add_child(l1, 8);
        let l3 = b.add_child(l2, 2);
        b.add_child(l3, 9);
        let r1 = b.add_child(root, 6);
        let r2 = b.add_child(r1, 4);
        b.add_child(r2, 10);
        b.build().unwrap()
    }

    #[test]
    fn every_algorithm_produces_a_valid_full_schedule() {
        let t = fig6_tree();
        for algo in Algorithm::ALL {
            let res = algo.run(&t, 10).unwrap();
            res.schedule.validate(&t).unwrap();
            assert_eq!(res.schedule.len(), t.len(), "{algo} must cover the tree");
            assert!(res.performance >= 1.0);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn postorder_algorithms_return_postorders() {
        let t = fig6_tree();
        for algo in [Algorithm::PostOrderMinIo, Algorithm::PostOrderMinMem] {
            let s = algo.schedule(&t, 10).unwrap();
            assert!(s.is_postorder(&t), "{algo} must return a postorder");
        }
    }

    #[test]
    fn run_reports_consistent_performance() {
        let t = fig6_tree();
        let res = Algorithm::OptMinMem.run(&t, 10).unwrap();
        let expected = (10 + res.io_volume) as f64 / 10.0;
        assert!((res.performance - expected).abs() < 1e-12);
    }

    #[test]
    fn shim_matches_trait_adapters_exactly() {
        let t = fig6_tree();
        for algo in Algorithm::ALL {
            let scheduler = algo.to_scheduler();
            assert_eq!(algo.name(), scheduler.name());
            assert_eq!(
                algo.schedule(&t, 10).unwrap().order(),
                scheduler.schedule(&t, 10).unwrap().order(),
                "{algo}: shim and adapter must produce identical orders"
            );
        }
    }

    #[test]
    fn from_str_round_trips_names() {
        for algo in Algorithm::ALL {
            assert_eq!(algo.name().parse::<Algorithm>().unwrap(), algo);
            assert_eq!(
                algo.name().to_lowercase().parse::<Algorithm>().unwrap(),
                algo
            );
        }
        assert!("NoSuchAlgorithm".parse::<Algorithm>().is_err());
    }
}
