//! A uniform interface over all scheduling strategies compared in the paper.
//!
//! Every strategy maps `(tree, M)` to a schedule; its I/O volume is always
//! measured by the Furthest-in-the-Future simulator on that schedule
//! (Theorem 1 makes this the fairest possible accounting). The
//! [`Algorithm`] enum is what the evaluation harness, the benchmarks and the
//! examples iterate over.

use oocts_minmem::{opt_min_mem, post_order_min_mem};
use oocts_tree::{fif_io, Schedule, Tree, TreeError};

use crate::postorder::post_order_min_io;
use crate::recexpand::{full_rec_expand, rec_expand};

/// The scheduling strategies evaluated in the paper (Section 6) plus the
/// peak-memory postorder baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Best postorder for I/O volume (Section 4.1; Agullo).
    PostOrderMinIo,
    /// Liu's optimal peak-memory traversal, run out-of-core with FiF
    /// (Section 4.4).
    OptMinMem,
    /// The paper's cheap heuristic: at most two expansion rounds per node
    /// (Section 5).
    RecExpand,
    /// The paper's full heuristic: expansion rounds until the subtree fits
    /// (Section 5). Expensive; the paper only runs it on the SYNTH dataset.
    FullRecExpand,
    /// Best postorder for peak memory (Liu 1986), as an extra baseline not
    /// plotted in the paper but useful for ablations.
    PostOrderMinMem,
}

impl Algorithm {
    /// The four strategies compared on the SYNTH dataset (paper, Figure 4).
    pub const SYNTH_SET: [Algorithm; 4] = [
        Algorithm::PostOrderMinIo,
        Algorithm::OptMinMem,
        Algorithm::RecExpand,
        Algorithm::FullRecExpand,
    ];

    /// The three strategies compared on the TREES dataset (paper, Figure 5):
    /// `FullRecExpand` is excluded because of its computational cost.
    pub const TREES_SET: [Algorithm; 3] = [
        Algorithm::PostOrderMinIo,
        Algorithm::OptMinMem,
        Algorithm::RecExpand,
    ];

    /// Every strategy known to the crate.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PostOrderMinIo,
        Algorithm::OptMinMem,
        Algorithm::RecExpand,
        Algorithm::FullRecExpand,
        Algorithm::PostOrderMinMem,
    ];

    /// The name used in the paper (and in our reports).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PostOrderMinIo => "PostOrderMinIO",
            Algorithm::OptMinMem => "OptMinMem",
            Algorithm::RecExpand => "RecExpand",
            Algorithm::FullRecExpand => "FullRecExpand",
            Algorithm::PostOrderMinMem => "PostOrderMinMem",
        }
    }

    /// Computes this strategy's schedule for `tree` under memory bound
    /// `memory`.
    pub fn schedule(self, tree: &Tree, memory: u64) -> Result<Schedule, TreeError> {
        match self {
            Algorithm::PostOrderMinIo => Ok(post_order_min_io(tree, memory).0),
            Algorithm::OptMinMem => Ok(opt_min_mem(tree).0),
            Algorithm::RecExpand => Ok(rec_expand(tree, memory)?.schedule),
            Algorithm::FullRecExpand => Ok(full_rec_expand(tree, memory)?.schedule),
            Algorithm::PostOrderMinMem => Ok(post_order_min_mem(tree).0),
        }
    }

    /// Runs the strategy and measures its I/O volume with the FiF simulator.
    pub fn run(self, tree: &Tree, memory: u64) -> Result<AlgorithmResult, TreeError> {
        let schedule = self.schedule(tree, memory)?;
        let io = fif_io(tree, &schedule, memory)?;
        Ok(AlgorithmResult {
            algorithm: self,
            io_volume: io.total_io,
            performance: io.performance(memory),
            schedule,
        })
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of running one strategy on one instance.
#[derive(Debug, Clone)]
pub struct AlgorithmResult {
    /// The strategy that produced this result.
    pub algorithm: Algorithm,
    /// Total I/O volume of the schedule under the FiF policy.
    pub io_volume: u64,
    /// The paper's performance metric `(M + IO)/M`.
    pub performance: f64,
    /// The schedule itself.
    pub schedule: Schedule,
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::TreeBuilder;

    fn fig6_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let l1 = b.add_child(root, 4);
        let l2 = b.add_child(l1, 8);
        let l3 = b.add_child(l2, 2);
        b.add_child(l3, 9);
        let r1 = b.add_child(root, 6);
        let r2 = b.add_child(r1, 4);
        b.add_child(r2, 10);
        b.build().unwrap()
    }

    #[test]
    fn every_algorithm_produces_a_valid_full_schedule() {
        let t = fig6_tree();
        for algo in Algorithm::ALL {
            let res = algo.run(&t, 10).unwrap();
            res.schedule.validate(&t).unwrap();
            assert_eq!(res.schedule.len(), t.len(), "{algo} must cover the tree");
            assert!(res.performance >= 1.0);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn postorder_algorithms_return_postorders() {
        let t = fig6_tree();
        for algo in [Algorithm::PostOrderMinIo, Algorithm::PostOrderMinMem] {
            let s = algo.schedule(&t, 10).unwrap();
            assert!(s.is_postorder(&t), "{algo} must return a postorder");
        }
    }

    #[test]
    fn run_reports_consistent_performance() {
        let t = fig6_tree();
        let res = Algorithm::OptMinMem.run(&t, 10).unwrap();
        let expected = (10 + res.io_volume) as f64 / 10.0;
        assert!((res.performance - expected).abs() < 1e-12);
    }
}
