//! The paper's new heuristics: `FullRecExpand` and `RecExpand` (Section 5,
//! Algorithm 2).
//!
//! `FullRecExpand` walks the tree bottom-up. At every node `r` it repeatedly
//! runs OptMinMem on the (already partially expanded) subtree rooted at `r`;
//! as long as the resulting traversal needs more than `M` units of memory, it
//! derives the FiF I/O function of that traversal, picks the node with
//! positive I/O whose parent is scheduled the latest, and *expands* it by its
//! I/O amount (paper, Figure 3). The expansion materializes the decision
//! "this part of the datum will sit on disk during this interval" inside the
//! tree structure, so subsequent OptMinMem runs take it into account.
//!
//! `RecExpand` is the cheaper variant that performs at most two expansion
//! iterations per node (the paper exits the `while` loop after 2 iterations).
//!
//! The returned schedule is obtained by running OptMinMem on the final
//! expanded tree and mapping it back to the original tree; its I/O volume is
//! measured — like for every other algorithm — by the FiF simulator on the
//! original tree.

use oocts_minmem::{opt_min_mem_subtree_with, ScratchSpace};
use oocts_tree::{fif_io_with, ExpandedTree, FifScratch, NodeId, Schedule, Tree, TreeError};

/// Outcome of a `RecExpand`/`FullRecExpand` run.
#[derive(Debug, Clone)]
pub struct RecExpandOutcome {
    /// The schedule of the *original* tree produced by the heuristic.
    pub schedule: Schedule,
    /// Total I/O forced through node expansions (the paper charges exactly
    /// this volume to `FullRecExpand`; the FiF simulation of `schedule` can
    /// only be smaller or equal).
    pub forced_io: u64,
    /// Number of node expansions performed.
    pub expansions: usize,
    /// `true` if the safety cap on expansion iterations was reached (never
    /// observed on the paper's datasets; present to guarantee termination on
    /// adversarial inputs).
    pub hit_iteration_cap: bool,
}

/// Hard safety cap on the total number of expansions, as a multiple of the
/// tree size. `FullRecExpand`'s complexity is not polynomial in the tree size
/// alone (it may depend on the node weights); the cap guarantees termination.
const EXPANSION_CAP_FACTOR: usize = 64;

/// Runs `FullRecExpand` (unbounded expansion iterations per node).
pub fn full_rec_expand(tree: &Tree, memory: u64) -> Result<RecExpandOutcome, TreeError> {
    rec_expand_with_limit(tree, memory, None)
}

/// Runs `RecExpand`: at most `2` expansion iterations per node, as in the
/// paper's simpler variant.
pub fn rec_expand(tree: &Tree, memory: u64) -> Result<RecExpandOutcome, TreeError> {
    rec_expand_with_limit(tree, memory, Some(2))
}

/// Shared implementation: `iteration_limit` bounds the number of expansion
/// iterations per node (`None` = unbounded, i.e. `FullRecExpand`).
pub fn rec_expand_with_limit(
    tree: &Tree,
    memory: u64,
    iteration_limit: Option<usize>,
) -> Result<RecExpandOutcome, TreeError> {
    // Feasibility: every node must fit on its own.
    for node in tree.node_ids() {
        let need = tree.execution_weight(node);
        if need > memory {
            return Err(TreeError::InsufficientMemory {
                node,
                required: need,
                available: memory,
            });
        }
    }

    let mut expanded = ExpandedTree::new(tree);
    let cap = EXPANSION_CAP_FACTOR * tree.len().max(16);
    let mut hit_cap = false;

    // Scratch state held across the whole expansion loop: the loop re-solves
    // OptMinMem and replays FiF after every single expansion, so buffer reuse
    // here dominates the heuristic's constant factor.
    let mut liu_scratch = ScratchSpace::new();
    let mut fif_scratch = FifScratch::new();
    let mut positions: Vec<usize> = Vec::new();

    // Bottom-up over the *original* tree. When node `r` is processed, the
    // subtrees of its children have already been expanded so that they can be
    // executed without I/O; expansions triggered at `r` may touch any node of
    // the current subtree (including nodes inserted by earlier expansions).
    'outer: for &r in tree.postorder() {
        // Skip leaves: a single node always fits (checked above).
        if tree.is_leaf(r) {
            continue;
        }
        let mut iterations = 0usize;
        loop {
            let (schedule, peak) = opt_min_mem_subtree_with(expanded.tree(), r, &mut liu_scratch);
            if peak <= memory {
                break;
            }
            if let Some(limit) = iteration_limit {
                if iterations >= limit {
                    break;
                }
            }
            if expanded.expansions() >= cap {
                hit_cap = true;
                break 'outer;
            }
            iterations += 1;

            // FiF I/O function of the OptMinMem traversal of this subtree.
            let io = fif_io_with(expanded.tree(), &schedule, memory, &mut fif_scratch)?;
            // Node with positive I/O whose parent is scheduled the latest.
            schedule.positions_into(expanded.tree(), &mut positions);
            let Some(victim) = pick_victim(expanded.tree(), &io.tau, &positions) else {
                // Unreachable: peak exceeds M, so the FiF policy must have
                // performed some I/O; stop expanding rather than panic.
                debug_assert!(false, "peak exceeds M but FiF reported no I/O");
                break 'outer;
            };
            let amount = io.tau[victim.index()];
            fif_scratch.recycle(io.tau);
            expanded.expand(victim, amount);
        }
    }

    // Final schedule: OptMinMem on the fully expanded tree, mapped back.
    let (schedule_exp, _) =
        opt_min_mem_subtree_with(expanded.tree(), expanded.tree().root(), &mut liu_scratch);
    let schedule = expanded.to_original_schedule(&schedule_exp);
    debug_assert!(schedule.validate(tree).is_ok());
    Ok(RecExpandOutcome {
        schedule,
        forced_io: expanded.total_forced_io(),
        expansions: expanded.expansions(),
        hit_iteration_cap: hit_cap,
    })
}

/// Among nodes with `τ > 0`, returns the one whose parent is scheduled the
/// latest (ties broken towards the smaller node id, which is deterministic).
// lint: no_alloc
fn pick_victim(tree: &Tree, tau: &[u64], positions: &[usize]) -> Option<NodeId> {
    let mut best: Option<(usize, NodeId)> = None;
    for node in tree.node_ids() {
        if tau[node.index()] == 0 {
            continue;
        }
        let parent_pos = match tree.parent(node) {
            Some(p) => positions[p.index()],
            None => usize::MAX,
        };
        match best {
            None => best = Some((parent_pos, node)),
            Some((bp, bn)) => {
                if parent_pos > bp || (parent_pos == bp && node < bn) {
                    best = Some((parent_pos, node));
                }
            }
        }
    }
    best.map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_minmem::opt_min_mem;
    use oocts_tree::{fif_io, TreeBuilder};

    /// The tree of Appendix A, Figure 6 (M = 10): OptMinMem needs 4 I/Os,
    /// FullRecExpand needs 3 and is optimal, PostOrderMinIO is not optimal.
    fn fig6_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let l1 = b.add_child(root, 4);
        let l2 = b.add_child(l1, 8);
        let l3 = b.add_child(l2, 2);
        b.add_child(l3, 9);
        let r1 = b.add_child(root, 6);
        let r2 = b.add_child(r1, 4);
        b.add_child(r2, 10);
        b.build().unwrap()
    }

    /// The tree of Appendix A, Figure 7 (M = 7): PostOrderMinIO is optimal
    /// (3 I/Os, all on node c) while OptMinMem and FullRecExpand need 4.
    fn fig7_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let c = b.add_child(root, 3);
        let a = b.add_child(c, 2);
        b.add_child(a, 7);
        b.add_child(c, 3);
        let bnode = b.add_child(root, 4);
        b.add_child(bnode, 7);
        b.build().unwrap()
    }

    #[test]
    fn full_rec_expand_improves_on_opt_min_mem_fig6() {
        let t = fig6_tree();
        let m = 10;
        let (s_mm, _) = opt_min_mem(&t);
        let io_mm = fif_io(&t, &s_mm, m).unwrap().total_io;
        assert_eq!(io_mm, 4, "OptMinMem performs 4 I/Os on Figure 6");

        let out = full_rec_expand(&t, m).unwrap();
        let io_fre = fif_io(&t, &out.schedule, m).unwrap().total_io;
        assert_eq!(io_fre, 3, "FullRecExpand is optimal (3 I/Os) on Figure 6");
        assert!(!out.hit_iteration_cap);
        assert!(out.expansions >= 1);
    }

    #[test]
    fn rec_expand_not_worse_than_opt_min_mem_on_examples() {
        for (t, m) in [(fig6_tree(), 10u64), (fig7_tree(), 7u64)] {
            let (s_mm, _) = opt_min_mem(&t);
            let io_mm = fif_io(&t, &s_mm, m).unwrap().total_io;
            let out = rec_expand(&t, m).unwrap();
            let io_re = fif_io(&t, &out.schedule, m).unwrap().total_io;
            assert!(
                io_re <= io_mm,
                "RecExpand ({io_re}) must not lose to OptMinMem ({io_mm})"
            );
        }
    }

    #[test]
    fn fig7_full_rec_expand_is_not_optimal() {
        // The paper uses Figure 7 to show FullRecExpand is *not* an optimal
        // algorithm: the best postorder needs only 3 I/Os while OptMinMem
        // (and FullRecExpand, which follows its choices) needs 4.
        let t = fig7_tree();
        let m = 7;
        let (s_po, an) = crate::postorder::post_order_min_io(&t, m);
        let io_po = fif_io(&t, &s_po, m).unwrap().total_io;
        assert_eq!(io_po, 3);
        assert_eq!(an.total_io(&t), 3);
        let out = full_rec_expand(&t, m).unwrap();
        let io_fre = fif_io(&t, &out.schedule, m).unwrap().total_io;
        assert_eq!(io_fre, 4);
    }

    #[test]
    fn no_expansion_when_memory_sufficient() {
        let t = fig6_tree();
        let out = full_rec_expand(&t, 1_000).unwrap();
        assert_eq!(out.expansions, 0);
        assert_eq!(out.forced_io, 0);
        let io = fif_io(&t, &out.schedule, 1_000).unwrap().total_io;
        assert_eq!(io, 0);
    }

    #[test]
    fn infeasible_memory_is_reported() {
        let t = fig6_tree();
        assert!(matches!(
            full_rec_expand(&t, 5),
            Err(TreeError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn rec_expand_schedule_covers_whole_tree() {
        let t = fig6_tree();
        let out = rec_expand(&t, 10).unwrap();
        assert_eq!(out.schedule.len(), t.len());
        out.schedule.validate(&t).unwrap();
    }
}
