//! Report serialization helpers: [`SolveReport`] / [`ExpansionStats`] as
//! JSON [`Value`] trees.
//!
//! The benchmark harness (`oocts-bench`'s `bench` binary) and any future
//! service front end exchange solve outcomes as JSON. The conversions here
//! are the single source of truth for that wire shape, so the emitter and
//! its validators cannot drift apart: every numeric field of the report maps
//! to one stable key, wall-clock time is carried as integer nanoseconds, and
//! the schedule itself is included only on request (it dominates the payload
//! size on large instances).

use serde::value::Value;

use crate::scheduler::{ExpansionStats, SolveReport};

impl ExpansionStats {
    /// The stats as a JSON object:
    /// `{"expansions": …, "forced_io": …, "hit_iteration_cap": …}`.
    pub fn to_value(&self) -> Value {
        Value::object()
            .with("expansions", Value::U64(self.expansions as u64))
            .with("forced_io", Value::U64(self.forced_io))
            .with("hit_iteration_cap", Value::Bool(self.hit_iteration_cap))
    }
}

impl SolveReport {
    /// The report as a JSON object, without the schedule.
    ///
    /// Keys: `scheduler` (string), `io_volume` / `peak_memory` (u64),
    /// `performance` (f64), `wall_time_ns` (u64, saturated), `expansion`
    /// (the [`ExpansionStats::to_value`] object) and `schedule_len` (u64).
    pub fn to_value(&self) -> Value {
        let wall_ns = u64::try_from(self.wall_time.as_nanos()).unwrap_or(u64::MAX);
        Value::object()
            .with("scheduler", Value::Str(self.scheduler.clone()))
            .with("io_volume", Value::U64(self.io_volume))
            .with("performance", Value::F64(self.performance))
            .with("peak_memory", Value::U64(self.peak_memory))
            .with("wall_time_ns", Value::U64(wall_ns))
            .with("expansion", self.expansion.to_value())
            .with("schedule_len", Value::U64(self.schedule.len() as u64))
    }

    /// Like [`SolveReport::to_value`], with the execution order attached
    /// under `schedule` as an array of node indices.
    pub fn to_value_with_schedule(&self) -> Value {
        let order: Vec<Value> = self
            .schedule
            .order()
            .iter()
            .map(|n| Value::U64(n.index() as u64))
            .collect();
        self.to_value().with("schedule", Value::Array(order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RecExpand, Scheduler};
    use oocts_tree::TreeBuilder;

    fn sample_report() -> SolveReport {
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let a = b.add_child(root, 4);
        let c = b.add_child(a, 8);
        b.add_child(c, 2);
        let r = b.add_child(root, 6);
        b.add_child(r, 4);
        let tree = b.build().unwrap();
        let memory = tree.min_feasible_memory();
        RecExpand::default().solve(&tree, memory).unwrap()
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let value = report.to_value();
        let text = value.render();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed.get("scheduler").unwrap().as_str(), Some("RecExpand"));
        assert_eq!(
            parsed.get("io_volume").unwrap().as_u64(),
            Some(report.io_volume)
        );
        assert_eq!(
            parsed.get("peak_memory").unwrap().as_u64(),
            Some(report.peak_memory)
        );
        let perf = parsed.get("performance").unwrap().as_f64().unwrap();
        assert!((perf - report.performance).abs() < 1e-12);
        let expansion = parsed.get("expansion").unwrap();
        assert_eq!(
            expansion.get("expansions").unwrap().as_u64(),
            Some(report.expansion.expansions as u64)
        );
        assert_eq!(
            expansion.get("hit_iteration_cap").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(
            parsed.get("schedule_len").unwrap().as_u64(),
            Some(report.schedule.len() as u64)
        );
        // The compact writer is deterministic.
        assert_eq!(
            parsed.render(),
            Value::parse(&parsed.render()).unwrap().render()
        );
    }

    #[test]
    fn schedule_payload_is_opt_in() {
        let report = sample_report();
        assert!(report.to_value().get("schedule").is_none());
        let with = report.to_value_with_schedule();
        let order = with.get("schedule").unwrap().as_array().unwrap();
        assert_eq!(order.len(), report.schedule.len());
        // The serialized order matches the schedule node for node.
        for (value, node) in order.iter().zip(report.schedule.order()) {
            assert_eq!(value.as_u64(), Some(node.index() as u64));
        }
    }

    #[test]
    fn pretty_rendering_parses_back_identically() {
        let report = sample_report();
        let value = report.to_value();
        let pretty = value.render_pretty();
        assert!(pretty.ends_with('\n'));
        assert_eq!(Value::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn json_strings_with_special_characters_round_trip() {
        for name in ["a,b", "q\"uo\"te", "line\nbreak", "tab\tand\rcr", "ünïcode"] {
            let value = Value::Str(name.to_string());
            let parsed = Value::parse(&value.render()).unwrap();
            assert_eq!(parsed.as_str(), Some(name));
        }
    }
}
