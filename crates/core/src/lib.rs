//! # oocts-core — I/O-minimizing out-of-core task-tree scheduling
//!
//! The primary contribution of *Minimizing I/Os in Out-of-Core Task Tree
//! Scheduling* (Marchal, McCauley, Simon, Vivien — INRIA RR-9025 / IPPS
//! 2017), implemented on top of the [`oocts_tree`] substrate and the
//! peak-memory algorithms of [`oocts_minmem`].
//!
//! The **MinIO** problem: given a task tree and a main-memory bound `M`,
//! find a traversal `(σ, τ)` — an execution order plus an amount of every
//! node's output to write to disk — that minimizes the total I/O volume
//! `Σ_i τ(i)`.
//!
//! Every algorithm in this crate produces only a schedule `σ`; the I/O charged
//! to it is the volume produced by the Furthest-in-the-Future policy
//! ([`oocts_tree::fif_io`]), which is optimal for a fixed `σ` (Theorem 1).
//!
//! Every strategy implements the open [`scheduler::Scheduler`] trait
//! (`name()` + `schedule()`, with a provided `solve()` that performs the FiF
//! accounting); strategies are addressed by name — including parameterized
//! specs such as `"RecExpand(max_rounds=5)"` — through
//! [`registry::SchedulerRegistry`], which also accepts user-defined
//! implementations. The pre-0.2 closed [`algorithms::Algorithm`] enum
//! remains as a deprecated shim over the trait adapters.
//!
//! Provided algorithms:
//!
//! * [`postorder::post_order_min_io`] — the best postorder traversal for
//!   I/O volume (Section 4.1, due to Agullo); optimal on homogeneous trees
//!   (Theorem 4) but not competitive in general (Section 4.3);
//! * [`scheduler::OptMinMem`] — Liu's peak-memory-optimal
//!   traversal used as a MinIO heuristic (Section 4.4): not competitive
//!   either;
//! * [`recexpand::full_rec_expand`] and [`recexpand::rec_expand`] — the
//!   paper's new heuristics (Section 5), which iteratively materialize the
//!   I/O chosen by the FiF policy into the tree through *node expansion*
//!   and re-run OptMinMem;
//! * [`theorem2::schedule_for_io_function`] — the constructive proof of
//!   Theorem 2 (from an I/O function to a schedule);
//! * [`homogeneous`] — the `l`/`c`/`w`/`W` labelling of Section 4.2 and the
//!   matching lower bound (Lemma 5);
//! * `bruteforce` (behind the `brute-force` feature) — exact MinIO by
//!   exhaustive search (test oracle).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod algorithms;
#[cfg(feature = "brute-force")]
pub mod bruteforce;
pub mod homogeneous;
pub mod postorder;
pub mod recexpand;
pub mod registry;
pub mod scheduler;
pub mod serialize;
pub mod theorem2;

#[allow(deprecated)]
pub use algorithms::{Algorithm, AlgorithmResult};
#[cfg(feature = "brute-force")]
pub use bruteforce::brute_force_min_io;
pub use postorder::{post_order_min_io, PostorderIoAnalysis};
pub use recexpand::{full_rec_expand, rec_expand, RecExpandOutcome};
pub use registry::{SchedulerError, SchedulerRegistry, SchedulerSpec};
pub use scheduler::{ExpansionStats, Scheduler, SolveReport};
pub use theorem2::schedule_for_io_function;
