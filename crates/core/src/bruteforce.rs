//! Exact MinIO by exhaustive search over all topological orders — the test
//! oracle used to validate heuristics on small trees.
//!
//! By Theorem 1, for a fixed schedule the Furthest-in-the-Future policy
//! yields a minimum-volume I/O function, so enumerating schedules and
//! simulating FiF on each one explores the entire solution space.

use oocts_tree::{fif_io, NodeId, Schedule, Tree, TreeError};

/// Default safety limit on the number of nodes accepted by the brute-force
/// searcher.
pub const BRUTE_FORCE_MAX_NODES: usize = 11;

/// Finds the minimum total I/O volume over *all* traversals of the tree under
/// memory bound `memory`, together with a schedule achieving it.
///
/// Returns an error if the tree cannot be executed at all (`M < max w̄_i`).
///
/// # Panics
/// Panics if the tree has more than [`BRUTE_FORCE_MAX_NODES`] nodes.
pub fn brute_force_min_io(tree: &Tree, memory: u64) -> Result<(Schedule, u64), TreeError> {
    assert!(
        tree.len() <= BRUTE_FORCE_MAX_NODES,
        "brute-force search limited to {BRUTE_FORCE_MAX_NODES} nodes"
    );
    for node in tree.node_ids() {
        let need = tree.execution_weight(node);
        if need > memory {
            return Err(TreeError::InsufficientMemory {
                node,
                required: need,
                available: memory,
            });
        }
    }
    let n = tree.len();
    let mut missing: Vec<usize> = (0..n)
        .map(|i| tree.children(NodeId::from_index(i)).len())
        .collect();
    let mut ready: Vec<NodeId> = tree.node_ids().filter(|&i| tree.is_leaf(i)).collect();
    let mut current = Vec::with_capacity(n);
    let mut best: (Vec<NodeId>, u64) = (Vec::new(), u64::MAX);
    explore(
        tree,
        memory,
        &mut ready,
        &mut missing,
        &mut current,
        &mut best,
    );
    debug_assert!(best.1 != u64::MAX);
    Ok((Schedule::new(best.0), best.1))
}

// lint: allow(L008, exhaustive oracle; factorial blow-up caps it to tiny trees long before stack depth matters)
fn explore(
    tree: &Tree,
    memory: u64,
    ready: &mut Vec<NodeId>,
    missing: &mut [usize],
    current: &mut Vec<NodeId>,
    best: &mut (Vec<NodeId>, u64),
) {
    if current.len() == tree.len() {
        let schedule = Schedule::new(current.clone());
        let io = fif_io(tree, &schedule, memory)
            // lint: allow(L001, min_io_brute_force verified feasibility before starting the search)
            .expect("feasibility was checked before the search")
            .total_io;
        if io < best.1 {
            *best = (current.clone(), io);
        }
        return;
    }
    let candidates: Vec<NodeId> = ready.clone();
    for node in candidates {
        ready.retain(|&x| x != node);
        current.push(node);
        let mut parent_became_ready = false;
        if let Some(p) = tree.parent(node) {
            missing[p.index()] -= 1;
            if missing[p.index()] == 0 {
                ready.push(p);
                parent_became_ready = true;
            }
        }

        explore(tree, memory, ready, missing, current, best);

        if let Some(p) = tree.parent(node) {
            if parent_became_ready {
                ready.retain(|&x| x != p);
            }
            missing[p.index()] += 1;
        }
        current.pop();
        ready.push(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postorder::post_order_min_io;
    use oocts_tree::TreeBuilder;

    #[test]
    fn optimum_is_zero_when_memory_is_the_optimal_peak() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(2);
        let a = b.add_child(r, 3);
        b.add_child(a, 7);
        b.add_child(r, 5);
        let t = b.build().unwrap();
        let peak = oocts_minmem::opt_min_mem_peak(&t);
        let (s, io) = brute_force_min_io(&t, peak).unwrap();
        assert_eq!(io, 0);
        s.validate(&t).unwrap();
    }

    #[test]
    fn optimum_on_figure7_is_three() {
        // Figure 7 (Appendix A), M = 7: the optimum is 3 I/Os, achieved by
        // the best postorder (which writes out node c entirely).
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        let c = b.add_child(root, 3);
        let a = b.add_child(c, 2);
        b.add_child(a, 7);
        b.add_child(c, 3);
        let bnode = b.add_child(root, 4);
        b.add_child(bnode, 7);
        let t = b.build().unwrap();
        let (_, io) = brute_force_min_io(&t, 7).unwrap();
        assert_eq!(io, 3);
        let (s_po, _) = post_order_min_io(&t, 7);
        assert_eq!(oocts_tree::fif_io(&t, &s_po, 7).unwrap().total_io, 3);
    }

    #[test]
    fn infeasible_instances_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(10);
        b.add_child(r, 10);
        let t = b.build().unwrap();
        assert!(brute_force_min_io(&t, 5).is_err());
    }
}
