//! PostOrderMinIO — the best postorder traversal for the MinIO problem
//! (paper Section 4.1, Algorithm 1, adapted from E. Agullo's PhD thesis).
//!
//! For a node `i` whose children are processed in the order chosen by the
//! algorithm, define recursively
//!
//! ```text
//! S_i = max( w_i , max_{j ∈ Chil(i)} ( S_j + Σ_{k before j} w_k ) )   storage requirement
//! A_i = min(M, S_i)                                                    memory actually used
//! V_i = max( 0 , max_j ( A_j + Σ_{k before j} w_k ) − M ) + Σ_j V_j    FiF I/O volume
//! ```
//!
//! By the rearrangement result (Theorem 3), `V_i` is minimized by processing
//! the children by non-increasing `A_j − w_j`; this is the order produced
//! here. On homogeneous trees (all `w_i = 1`) this postorder performs the
//! minimum possible number of I/Os over *all* traversals (Theorem 4), a fact
//! exercised by the property tests of this crate.

use oocts_tree::{NodeId, Schedule, Tree};

/// Per-node quantities computed by [`post_order_min_io`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostorderIoAnalysis {
    /// `S_i`: peak memory of the subtree rooted at `i` under the chosen
    /// postorder, ignoring the memory bound.
    pub storage: Vec<u64>,
    /// `A_i = min(M, S_i)`: main memory used by the out-of-core execution of
    /// the subtree rooted at `i`.
    pub in_core: Vec<u64>,
    /// `V_i`: I/O volume incurred by the chosen postorder on the subtree
    /// rooted at `i` when I/O follows the FiF policy.
    pub io_volume: Vec<u64>,
    /// The memory bound `M` used for the analysis.
    pub memory: u64,
}

impl PostorderIoAnalysis {
    /// The predicted I/O volume of the whole traversal (`V_root`).
    pub fn total_io(&self, tree: &Tree) -> u64 {
        self.io_volume[tree.root().index()]
    }
}

/// Computes the best postorder traversal for I/O minimization under memory
/// bound `memory`, together with its per-node analysis.
pub fn post_order_min_io(tree: &Tree, memory: u64) -> (Schedule, PostorderIoAnalysis) {
    post_order_min_io_subtree(tree, tree.root(), memory)
}

/// Subtree variant of [`post_order_min_io`]: the schedule covers exactly the
/// subtree rooted at `root`, treated as an independent tree.
pub fn post_order_min_io_subtree(
    tree: &Tree,
    root: NodeId,
    memory: u64,
) -> (Schedule, PostorderIoAnalysis) {
    let order = tree.subtree_postorder(root);
    let n = tree.len();
    let mut storage = vec![0u64; n];
    let mut in_core = vec![0u64; n];
    let mut io_volume = vec![0u64; n];
    // Chosen processing order of the children of each node: one flat copy of
    // the CSR child arena, each node's range re-sorted in place (no per-node
    // vector allocations).
    let mut sorted_children = tree.children_flat().to_vec();
    // (key, original slot, child) triples for the current node; an unstable
    // sort with the slot as tie-break reproduces a stable sort without its
    // temp-buffer allocation.
    let mut keyed: Vec<(i128, u32, NodeId)> = Vec::new();

    for &node in order {
        let children = tree.children(node);
        let w = tree.weight(node);
        if children.is_empty() {
            storage[node.index()] = w;
            in_core[node.index()] = memory.min(w);
            io_volume[node.index()] = 0;
            continue;
        }
        // Children by non-increasing A_j − w_j (Theorem 3).
        keyed.clear();
        for (slot, &c) in children.iter().enumerate() {
            let key = in_core[c.index()] as i128 - tree.weight(c) as i128;
            keyed.push((key, slot as u32, c));
        }
        keyed.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let range = tree.child_range(node);
        let mut prefix = 0u64;
        let mut s = w;
        let mut excess_peak = 0u64; // max_j (A_j + Σ_before w_k)
        let mut children_io = 0u64;
        for (i, &(_, _, c)) in keyed.iter().enumerate() {
            sorted_children[range.start + i] = c;
            s = s.max(storage[c.index()] + prefix);
            excess_peak = excess_peak.max(in_core[c.index()] + prefix);
            children_io += io_volume[c.index()];
            prefix += tree.weight(c);
        }
        storage[node.index()] = s;
        in_core[node.index()] = memory.min(s);
        io_volume[node.index()] = excess_peak.saturating_sub(memory) + children_io;
    }

    // Emit the postorder following the chosen child orders.
    let mut schedule = Vec::with_capacity(order.len());
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some((node, idx)) = stack.pop() {
        let kids = &sorted_children[tree.child_range(node)];
        if idx < kids.len() {
            stack.push((node, idx + 1));
            stack.push((kids[idx], 0));
        } else {
            schedule.push(node);
        }
    }

    (
        Schedule::new(schedule),
        PostorderIoAnalysis {
            storage,
            in_core,
            io_volume,
            memory,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::{fif_io, peak_memory, TreeBuilder};

    /// root(1) with two chains a(2) <- la(6) and b(2) <- lb(6).
    fn two_chains() -> Tree {
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 2);
        bld.add_child(a, 6);
        let b = bld.add_child(r, 2);
        bld.add_child(b, 6);
        bld.build().unwrap()
    }

    #[test]
    fn analysis_matches_simulation_when_memory_ample() {
        let t = two_chains();
        let (s, an) = post_order_min_io(&t, 100);
        s.validate(&t).unwrap();
        assert!(s.is_postorder(&t));
        assert_eq!(an.total_io(&t), 0);
        assert_eq!(fif_io(&t, &s, 100).unwrap().total_io, 0);
        // With no memory pressure A_i = S_i and S_root is the postorder peak.
        assert_eq!(an.storage[t.root().index()], peak_memory(&t, &s).unwrap());
    }

    #[test]
    fn analysis_matches_simulation_under_pressure() {
        let t = two_chains();
        for m in [7u64, 8, 9, 10] {
            let (s, an) = post_order_min_io(&t, m);
            let sim = fif_io(&t, &s, m).unwrap();
            assert_eq!(
                an.total_io(&t),
                sim.total_io,
                "analysis and FiF simulation disagree for M = {m}"
            );
        }
    }

    #[test]
    fn children_sorted_by_a_minus_w() {
        // Child A: chain with a big leaf (S = 9, w = 1); child B: single leaf
        // (S = w = 5). With M = 20, A − w is 8 vs 0 → A first. With M = 6,
        // A − w is 5 vs 1 → A still first, but the analysis now reports I/O.
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 1);
        bld.add_child(a, 9);
        bld.add_child(r, 5);
        let t = bld.build().unwrap();
        let (s, _) = post_order_min_io(&t, 20);
        assert_eq!(s.order()[0], NodeId(2), "big subtree processed first");
        let (s6, an6) = post_order_min_io(&t, 6);
        assert_eq!(s6.order()[0], NodeId(2));
        // Under M = 6: subtree A alone fits (peak 9 > 6 → needs 3 I/Os of its
        // own? its peak is 9: executing leaf(9) alone already exceeds... but
        // w̄ = 9 > 6 means infeasible; pick a feasible bound instead.
        let _ = an6;
        let (s7, an7) = post_order_min_io(&t, 9);
        let sim = fif_io(&t, &s7, 9).unwrap();
        assert_eq!(an7.total_io(&t), sim.total_io);
    }

    #[test]
    fn postorder_io_on_figure2a_core_is_large() {
        // The innermost gadget of Figure 2(a) (Section 4.3) with M = 8:
        // root(1) whose two children of weight M/2 each cap a chain
        // "weight-1 node over a leaf of weight M". Any postorder pays at
        // least M/2 − 1 = 3 I/Os (the second leaf does not fit next to the
        // first branch's M/2 residue), while the optimal traversal pays 1.
        let m = 8u64;
        let mut b = TreeBuilder::new();
        let root = b.add_root(1);
        for _ in 0..2 {
            let half = b.add_child(root, m / 2);
            let one = b.add_child(half, 1);
            b.add_child(one, m);
        }
        let t = b.build().unwrap();
        let (s, an) = post_order_min_io(&t, m);
        assert!(s.is_postorder(&t));
        let sim = fif_io(&t, &s, m).unwrap();
        assert_eq!(an.total_io(&t), sim.total_io);
        assert_eq!(sim.total_io, m / 2, "best postorder pays M/2 here");
        // A hand-built non-postorder traversal pays a single I/O: process
        // both leaves (and their weight-1 parents) before the M/2 nodes.
        let order = Schedule::new(vec![
            NodeId(3), // leaf of branch 1
            NodeId(2), // its weight-1 parent
            NodeId(6), // leaf of branch 2 (evicts the 1 unit resident)
            NodeId(5),
            NodeId(1), // M/2 node of branch 1
            NodeId(4), // M/2 node of branch 2 (reads the unit back)
            NodeId(0),
        ]);
        order.validate(&t).unwrap();
        assert_eq!(fif_io(&t, &order, m).unwrap().total_io, 1);
    }
}
