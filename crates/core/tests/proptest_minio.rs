//! Property tests for the MinIO algorithms: optimality relations, exactness
//! of the analytic formulas, and the homogeneous-tree theory, all validated
//! against brute force on random small trees.

use oocts_core::bruteforce::brute_force_min_io;
use oocts_core::homogeneous;
use oocts_core::postorder::post_order_min_io;
use oocts_core::recexpand::{full_rec_expand, rec_expand};
use oocts_core::scheduler::{
    builtin_schedulers, FullRecExpand, OptMinMem, PostOrderMinIo, RecExpand, Scheduler,
};
use oocts_core::theorem2::schedule_for_io_function;
use oocts_minmem::opt_min_mem;
use oocts_tree::{check_traversal, fif_io, Tree};
use proptest::prelude::*;

/// Random trees with `n ∈ [1, max_nodes]` nodes and weights in `[1, max_weight]`.
fn random_tree(max_nodes: usize, max_weight: u64) -> impl Strategy<Value = Tree> {
    (1..=max_nodes)
        .prop_flat_map(move |n| {
            let weights = proptest::collection::vec(1..=max_weight, n);
            let parents: Vec<BoxedStrategy<usize>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(0usize).boxed()
                    } else {
                        (0..i).boxed()
                    }
                })
                .collect();
            (weights, parents)
        })
        .prop_map(|(weights, parents)| {
            let opts: Vec<Option<usize>> = parents
                .iter()
                .enumerate()
                .map(|(i, &p)| if i == 0 { None } else { Some(p) })
                .collect();
            Tree::from_parents(&weights, &opts).expect("valid random tree")
        })
}

/// A feasible memory bound drawn between the structural lower bound and the
/// optimal in-core peak (the interesting range of the paper).
fn feasible_memory(tree: &Tree, fraction: f64) -> u64 {
    let lb = tree.min_feasible_memory();
    let peak = oocts_minmem::opt_min_mem_peak(tree);
    let span = peak.saturating_sub(lb);
    lb + (span as f64 * fraction).round() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every heuristic is at least as expensive as the brute-force optimum and
    /// the generic lower bound `OptPeak − M`.
    #[test]
    fn heuristics_dominate_the_optimum(tree in random_tree(8, 9), frac in 0.0f64..=1.0) {
        let m = feasible_memory(&tree, frac);
        let (_, best) = brute_force_min_io(&tree, m).unwrap();
        let opt_peak = oocts_minmem::opt_min_mem_peak(&tree);
        prop_assert!(best >= opt_peak.saturating_sub(m));
        for scheduler in builtin_schedulers() {
            let report = scheduler.solve(&tree, m).unwrap();
            prop_assert!(
                report.io_volume >= best,
                "{} reported {} I/Os, below the optimum {best}",
                scheduler.name(),
                report.io_volume
            );
        }
    }

    /// The analytic `V_root` of PostOrderMinIO equals the FiF simulation of
    /// the schedule it returns.
    #[test]
    fn postorder_analysis_matches_simulation(tree in random_tree(16, 12), frac in 0.0f64..=1.0) {
        let m = feasible_memory(&tree, frac);
        let (schedule, analysis) = post_order_min_io(&tree, m);
        let sim = fif_io(&tree, &schedule, m).unwrap();
        prop_assert_eq!(analysis.total_io(&tree), sim.total_io);
    }

    /// On homogeneous trees: W(T) is simultaneously the I/O of PostOrderMinIO,
    /// the brute-force optimum, and a lower bound on every other heuristic.
    #[test]
    fn homogeneous_postorder_is_optimal(tree in random_tree(8, 1), m in 1u64..=4) {
        let lb = tree.min_feasible_memory();
        let m = m.max(lb);
        let w_t = homogeneous::min_io(&tree, m).unwrap();
        let (_, best) = brute_force_min_io(&tree, m).unwrap();
        prop_assert_eq!(w_t, best, "W(T) must equal the optimum");
        let po = PostOrderMinIo.solve(&tree, m).unwrap();
        prop_assert_eq!(po.io_volume, best, "PostOrderMinIO must be optimal (Theorem 4)");
        for scheduler in builtin_schedulers() {
            let report = scheduler.solve(&tree, m).unwrap();
            prop_assert!(report.io_volume >= w_t);
        }
    }

    /// Theorem 2 round-trip: the FiF I/O function of any heuristic schedule is
    /// feasible, and the schedule reconstructed from it is a valid traversal
    /// with that same I/O function.
    #[test]
    fn theorem2_roundtrip(tree in random_tree(10, 9), frac in 0.0f64..=1.0) {
        let m = feasible_memory(&tree, frac);
        let (schedule, _) = opt_min_mem(&tree);
        let sim = fif_io(&tree, &schedule, m).unwrap();
        let rebuilt = schedule_for_io_function(&tree, &sim.tau, m).unwrap();
        let total = check_traversal(&tree, &rebuilt, &sim.tau, m).unwrap();
        prop_assert_eq!(total, sim.total_io);
    }

    /// RecExpand and FullRecExpand always produce valid full schedules, never
    /// hit the safety cap on these sizes, and FullRecExpand's forced I/O is an
    /// upper bound on the measured I/O of its schedule.
    #[test]
    fn recexpand_invariants(tree in random_tree(10, 9), frac in 0.0f64..=1.0) {
        let m = feasible_memory(&tree, frac);
        for limited in [true, false] {
            let out = if limited { rec_expand(&tree, m) } else { full_rec_expand(&tree, m) }.unwrap();
            out.schedule.validate(&tree).unwrap();
            prop_assert_eq!(out.schedule.len(), tree.len());
            prop_assert!(!out.hit_iteration_cap);
            let measured = fif_io(&tree, &out.schedule, m).unwrap().total_io;
            if !limited {
                // FullRecExpand expands until the tree fits, so the forced
                // I/O pays for everything the schedule needs.
                prop_assert!(measured <= out.forced_io,
                    "measured {measured} > forced {}", out.forced_io);
            }
        }
    }

    /// The FiF I/O of any algorithm is zero as soon as the memory bound
    /// reaches the optimal in-core peak.
    #[test]
    fn no_io_at_incore_peak(tree in random_tree(12, 9)) {
        let peak = oocts_minmem::opt_min_mem_peak(&tree);
        let schedulers: [&dyn Scheduler; 3] = [&OptMinMem, &RecExpand::PAPER, &FullRecExpand];
        for scheduler in schedulers {
            let report = scheduler.solve(&tree, peak).unwrap();
            prop_assert_eq!(report.io_volume, 0, "{} should need no I/O at M = peak", scheduler.name());
        }
    }
}
