//! Random task-tree generators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use oocts_tree::{NodeId, Tree};

/// Generates a uniformly random binary tree with `n` nodes (each node has 0,
/// 1 or 2 ordered children) using Rémy's algorithm, and assigns every node a
/// weight drawn uniformly from `weights`.
///
/// Rémy's algorithm grows a uniformly random *full* binary tree with `n`
/// internal nodes and `n + 1` external leaves; dropping the external leaves
/// yields a uniformly random binary tree on the `n` internal nodes — the same
/// distribution the paper samples through half-Catalan numbers.
pub fn random_binary_tree(n: usize, weights: std::ops::RangeInclusive<u64>, seed: u64) -> Tree {
    assert!(n >= 1, "a tree needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);

    // Rémy's algorithm on an array representation of a full binary tree.
    // Nodes: 0..2n+1 ; node 0 starts as the only (external) node.
    // `children[v]` is None for external nodes and Some([left, right]) for
    // internal ones; `parent[v]` tracks the parent to allow grafting.
    let total = 2 * n + 1;
    let mut children: Vec<Option<[usize; 2]>> = vec![None; total];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; total]; // (parent, side)
    let mut root = 0usize;
    let mut used = 1usize; // node 0 exists

    for _ in 0..n {
        // Pick a uniformly random existing node and a side.
        let x = rng.random_range(0..used);
        let side = rng.random_range(0..2usize);
        let internal = used;
        let leaf = used + 1;
        used += 2;
        // The new internal node takes x's place; x and the new leaf become
        // its children (x on `side`).
        let mut kids = [leaf, leaf];
        kids[side] = x;
        kids[1 - side] = leaf;
        children[internal] = Some(kids);
        match parent[x] {
            Some((p, s)) => {
                // lint: allow(L001, x has a recorded parent slot, so that parent is internal)
                children[p].as_mut().expect("parent is internal")[s] = internal;
                parent[internal] = Some((p, s));
            }
            None => {
                root = internal;
                parent[internal] = None;
            }
        }
        parent[x] = Some((internal, side));
        parent[leaf] = Some((internal, 1 - side));
    }

    // Contract external leaves: the task tree consists of the n internal
    // nodes; the parent of an internal node is its closest internal ancestor.
    let mut task_id = vec![usize::MAX; total];
    let mut next = 0usize;
    for v in 0..used {
        if children[v].is_some() {
            task_id[v] = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, n);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for v in 0..used {
        if children[v].is_some() {
            let mut p = parent[v].map(|(p, _)| p);
            // All ancestors are internal nodes by construction.
            if let Some(pp) = p.take() {
                parents[task_id[v]] = Some(task_id[pp]);
            }
        }
    }
    let _ = root;
    let w = random_weights(n, weights, &mut rng);
    from_parents_infallible(&w, &parents, "Rémy construction always yields a tree")
}

/// Finalizes a generator's parent array into a [`Tree`].
///
/// Every generator in this module builds `parents` with node 0 (or the
/// tracked root) as the single parentless node and links that only point at
/// already-created nodes, so the conversion cannot fail.
fn from_parents_infallible(weights: &[u64], parents: &[Option<usize>], what: &str) -> Tree {
    // lint: allow(L001, generators build a single-rooted acyclic parent array by construction)
    Tree::from_parents(weights, parents).expect(what)
}

/// Draws `n` weights uniformly from the inclusive range.
pub fn random_weights(
    n: usize,
    range: std::ops::RangeInclusive<u64>,
    rng: &mut StdRng,
) -> Vec<u64> {
    (0..n).map(|_| rng.random_range(range.clone())).collect()
}

/// A random tree where the parent of node `i` is chosen uniformly among the
/// nodes `0..i` ("uniform attachment"): bushier than uniform binary trees,
/// useful for stress tests and ablations.
pub fn uniform_attachment_tree(
    n: usize,
    weights: std::ops::RangeInclusive<u64>,
    seed: u64,
) -> Tree {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (i, parent) in parents.iter_mut().enumerate().skip(1) {
        *parent = Some(rng.random_range(0..i));
    }
    let w = random_weights(n, weights, &mut rng);
    from_parents_infallible(&w, &parents, "uniform attachment always yields a tree")
}

/// A chain (path) of `n` nodes with the given weights, leaf first in the
/// slice, root last. Useful for tests and micro-benchmarks.
pub fn chain(weights_leaf_to_root: &[u64]) -> Tree {
    let n = weights_leaf_to_root.len();
    assert!(n >= 1);
    let mut w = Vec::with_capacity(n);
    let mut parents = Vec::with_capacity(n);
    // Node 0 = root (last of the slice), node i's parent = i − 1.
    for (i, &weight) in weights_leaf_to_root.iter().rev().enumerate() {
        w.push(weight);
        parents.push(if i == 0 { None } else { Some(i - 1) });
    }
    from_parents_infallible(&w, &parents, "chain is a tree")
}

/// A complete `k`-ary tree of the given height with constant node weight.
pub fn complete_kary(arity: usize, height: usize, weight: u64) -> Tree {
    assert!(arity >= 1);
    let mut weights = vec![weight];
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut frontier = vec![0usize];
    for _ in 0..height {
        let mut next = Vec::new();
        for &p in &frontier {
            for _ in 0..arity {
                let id = weights.len();
                weights.push(weight);
                parents.push(Some(p));
                next.push(id);
            }
        }
        frontier = next;
    }
    from_parents_infallible(&weights, &parents, "complete k-ary tree")
}

/// A caterpillar: a spine of `spine` nodes, each carrying `legs` leaf
/// children of weight `leaf_weight`; spine nodes have weight `spine_weight`.
pub fn caterpillar(spine: usize, legs: usize, spine_weight: u64, leaf_weight: u64) -> Tree {
    assert!(spine >= 1);
    let mut weights = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut prev: Option<usize> = None;
    for _ in 0..spine {
        let id = weights.len();
        weights.push(spine_weight);
        parents.push(prev);
        for _ in 0..legs {
            weights.push(leaf_weight);
            parents.push(Some(id));
        }
        prev = Some(id);
    }
    // `prev` chain built root-first: node 0 is the root.
    from_parents_infallible(&weights, &parents, "caterpillar is a tree")
}

/// Returns the number of children of every node — handy for shape statistics
/// in tests and reports.
pub fn arity_histogram(tree: &Tree) -> Vec<usize> {
    let mut hist = vec![0usize; 3.max(tree.len())];
    for n in tree.node_ids() {
        let a = tree.children(n).len();
        if a >= hist.len() {
            hist.resize(a + 1, 0);
        }
        hist[a] += 1;
    }
    hist
}

/// Maximum number of children over all nodes.
pub fn max_arity(tree: &Tree) -> usize {
    tree.node_ids()
        .map(|n| tree.children(n).len())
        .max()
        .unwrap_or(0)
}

/// Convenience: node id of the deepest leaf (ties broken arbitrarily).
pub fn deepest_leaf(tree: &Tree) -> NodeId {
    tree.leaves()
        .into_iter()
        .max_by_key(|&l| tree.depth(l))
        // lint: allow(L001, a Tree is non-empty by construction and so has a leaf)
        .expect("every tree has a leaf")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_binary_tree_shape() {
        let t = random_binary_tree(501, 1..=100, 42);
        assert_eq!(t.len(), 501);
        t.validate().unwrap();
        // Binary: no node has more than 2 children.
        assert!(max_arity(&t) <= 2);
        // Weights within range.
        assert!(t.node_ids().all(|n| (1..=100).contains(&t.weight(n))));
        // Same seed reproduces the tree, different seed differs.
        let t2 = random_binary_tree(501, 1..=100, 42);
        assert_eq!(t, t2);
        let t3 = random_binary_tree(501, 1..=100, 43);
        assert_ne!(t, t3);
    }

    #[test]
    fn random_binary_tree_is_not_degenerate() {
        // A uniform binary tree of n nodes has expected height Θ(√n):
        // far from a chain, far from a balanced tree. Accept a wide margin.
        let t = random_binary_tree(1000, 1..=1, 7);
        let h = t.height();
        assert!(h > 10, "height {h} suspiciously small");
        assert!(h < 500, "height {h} suspiciously large");
        // Both leaves and binary nodes are plentiful.
        let hist = arity_histogram(&t);
        assert!(hist[0] > 100);
        assert!(hist[2] > 100);
    }

    #[test]
    fn uniform_attachment_tree_is_valid() {
        let t = uniform_attachment_tree(300, 5..=10, 3);
        assert_eq!(t.len(), 300);
        t.validate().unwrap();
        assert!(t.node_ids().all(|n| (5..=10).contains(&t.weight(n))));
    }

    #[test]
    fn chain_and_kary_and_caterpillar() {
        let c = chain(&[4, 3, 2, 1]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.weight(c.root()), 1);
        assert_eq!(c.height(), 3);
        assert_eq!(c.leaves().len(), 1);

        let k = complete_kary(3, 2, 5);
        assert_eq!(k.len(), 1 + 3 + 9);
        assert_eq!(k.leaves().len(), 9);

        let cat = caterpillar(4, 2, 1, 7);
        assert_eq!(cat.len(), 4 * 3);
        assert_eq!(cat.leaves().len(), 2 * 4);
        cat.validate().unwrap();
    }

    #[test]
    fn deepest_leaf_is_a_leaf() {
        let t = random_binary_tree(100, 1..=10, 1);
        let l = deepest_leaf(&t);
        assert!(t.is_leaf(l));
    }
}
