//! # oocts-gen — task-tree generators and the paper's datasets
//!
//! Three families of instances are provided:
//!
//! * [`random`] — uniformly random binary trees (Rémy's algorithm, equivalent
//!   to the half-Catalan sampling used in the paper) and other synthetic
//!   shapes (chains, caterpillars, complete k-ary trees) with random weights;
//! * [`paper`] — the hand-crafted instances of the paper: the counterexample
//!   trees of Figure 2(a)/(b)/(c) with their parametric families, and the
//!   worked examples of Appendix A (Figures 6 and 7);
//! * [`dataset`] — the two evaluation datasets of Section 6: SYNTH (random
//!   binary trees, 3000 nodes, weights uniform in `[1, 100]`) and TREES
//!   (multifrontal assembly trees produced by the [`oocts_sparse`] substrate,
//!   substituting for the University of Florida collection);
//! * [`corpus`] — a plain-text snapshot format for instances plus golden
//!   per-scheduler expectations, backing the persisted regression corpus
//!   under `tests/corpus/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod corpus;
pub mod dataset;
pub mod paper;
pub mod random;

pub use corpus::{
    format_golden, format_instance, load_dir, parse_golden, parse_instance, CorpusError,
    GoldenRecord,
};
pub use dataset::{synth_dataset, trees_dataset, DatasetConfig};
pub use random::{random_binary_tree, random_weights, uniform_attachment_tree};
