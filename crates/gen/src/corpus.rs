//! Persisted instance corpus: a plain-text snapshot format for task trees
//! plus golden per-scheduler expectations, and loaders for both.
//!
//! Datasets are *generated* deterministically ([`crate::dataset`]), but
//! regression tests must not depend on the generators staying bit-stable:
//! the golden suite replays instances **snapshotted to disk** instead. Two
//! file kinds make up a corpus directory (`tests/corpus/` at the workspace
//! root):
//!
//! * `<name>.tree` — one instance in the `oocts-corpus v1` format below;
//! * `golden.tsv` — tab-separated golden measurements, one line per
//!   (instance, scheduler) cell.
//!
//! # The `oocts-corpus v1` tree format
//!
//! ```text
//! oocts-corpus v1
//! name synth-c00
//! nodes 3
//! - 5
//! 0 3
//! 0 2
//! ```
//!
//! Line 1 is the magic header; `name` is the instance name; `nodes` the node
//! count `n`. Then exactly `n` lines follow, the `i`-th (0-based) holding
//! node `i`'s parent index (`-` for the root) and its output weight,
//! space-separated. The format is canonical: [`format_instance`] emits
//! exactly one representation per instance and [`parse_instance`] accepts
//! nothing else, so snapshots round-trip **byte-identically** — the golden
//! suite asserts `format(parse(file)) == file` for every committed file.
//!
//! # The golden TSV
//!
//! `golden.tsv` lines are `instance<TAB>scheduler<TAB>memory<TAB>io_volume
//! <TAB>peak_memory`; `#`-prefixed lines and blank lines are comments.
//! Scheduler names are registry specs (`oocts_core::registry` syntax, e.g.
//! `RandomPostOrder(seed=0)`), so the replay suite resolves them by name.

use std::fmt;
use std::path::Path;

use oocts_tree::{Tree, TreeError};

use crate::dataset::Instance;

/// The magic first line of every `.tree` snapshot.
pub const CORPUS_MAGIC: &str = "oocts-corpus v1";

/// Errors of corpus parsing, formatting and loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// A snapshot file does not follow the format.
    Parse {
        /// 1-based line of the failure.
        line: usize,
        /// What was expected.
        message: String,
    },
    /// The snapshotted structure is not a valid tree.
    Tree(TreeError),
    /// An instance name cannot be represented in the line-oriented format.
    BadName(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, message } => {
                write!(f, "corpus I/O error on {path}: {message}")
            }
            CorpusError::Parse { line, message } => {
                write!(f, "corpus parse error at line {line}: {message}")
            }
            CorpusError::Tree(e) => write!(f, "corpus holds an invalid tree: {e}"),
            CorpusError::BadName(name) => {
                write!(f, "instance name {name:?} cannot be snapshotted")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<TreeError> for CorpusError {
    fn from(e: TreeError) -> Self {
        CorpusError::Tree(e)
    }
}

/// Renders one instance in the canonical `oocts-corpus v1` format.
///
/// # Errors
/// [`CorpusError::BadName`] if the name is empty or contains control
/// characters (the format is line-oriented).
pub fn format_instance(name: &str, tree: &Tree) -> Result<String, CorpusError> {
    if name.is_empty() || name.chars().any(char::is_control) {
        return Err(CorpusError::BadName(name.to_string()));
    }
    let mut out = String::with_capacity(32 + name.len() + tree.len() * 8);
    out.push_str(CORPUS_MAGIC);
    out.push('\n');
    out.push_str("name ");
    out.push_str(name);
    out.push('\n');
    out.push_str(&format!("nodes {}\n", tree.len()));
    for node in tree.node_ids() {
        match tree.parent(node) {
            Some(p) => out.push_str(&format!("{} {}\n", p.index(), tree.weight(node))),
            None => out.push_str(&format!("- {}\n", tree.weight(node))),
        }
    }
    Ok(out)
}

/// Parses a canonical `oocts-corpus v1` snapshot back into an instance.
///
/// Strict by design: anything [`format_instance`] would not emit (extra
/// blank lines, trailing garbage, a node-count mismatch) is an error, which
/// is what makes round-trips byte-identical.
pub fn parse_instance(text: &str) -> Result<Instance, CorpusError> {
    let mut lines = text.lines().enumerate();
    let mut expect = |what: &str| {
        lines
            .next()
            .ok_or_else(|| CorpusError::Parse {
                line: text.lines().count() + 1,
                message: format!("missing {what}"),
            })
            .map(|(idx, l)| (idx + 1, l))
    };

    let (line, magic) = expect("magic header")?;
    if magic != CORPUS_MAGIC {
        return Err(CorpusError::Parse {
            line,
            message: format!("expected `{CORPUS_MAGIC}`, found {magic:?}"),
        });
    }
    let (line, name_line) = expect("`name <instance>`")?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or_else(|| CorpusError::Parse {
            line,
            message: "expected `name <instance>`".to_string(),
        })?
        .to_string();
    if name.is_empty() {
        return Err(CorpusError::Parse {
            line,
            message: "empty instance name".to_string(),
        });
    }
    let (line, nodes_line) = expect("`nodes <count>`")?;
    let n: usize = nodes_line
        .strip_prefix("nodes ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CorpusError::Parse {
            line,
            message: "expected `nodes <count>`".to_string(),
        })?;

    let mut weights = Vec::with_capacity(n);
    let mut parents = Vec::with_capacity(n);
    for _ in 0..n {
        let (line, node_line) = expect("a `<parent|-> <weight>` node line")?;
        let bad = |message: &str| CorpusError::Parse {
            line,
            message: message.to_string(),
        };
        let (parent, weight) = node_line
            .split_once(' ')
            .ok_or_else(|| bad("expected `<parent|-> <weight>`"))?;
        let parent = match parent {
            "-" => None,
            p => Some(
                p.parse::<usize>()
                    .map_err(|_| bad("parent is not an index"))?,
            ),
        };
        let weight: u64 = weight.parse().map_err(|_| bad("weight is not a number"))?;
        parents.push(parent);
        weights.push(weight);
    }
    if let Some((idx, extra)) = lines.next() {
        return Err(CorpusError::Parse {
            line: idx + 1,
            message: format!("trailing content {extra:?} after the last node"),
        });
    }
    let tree = Tree::from_parents(&weights, &parents)?;
    tree.validate()?;
    Ok(Instance { name, tree })
}

/// Loads every `*.tree` snapshot of a corpus directory, sorted by file name.
pub fn load_dir(dir: &Path) -> Result<Vec<Instance>, CorpusError> {
    let io_err = |e: &dyn fmt::Display| CorpusError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    };
    let mut paths = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| io_err(&e))? {
        let path = entry.map_err(|e| io_err(&e))?.path();
        if path.extension().is_some_and(|ext| ext == "tree") {
            paths.push(path);
        }
    }
    paths.sort();
    let mut instances = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).map_err(|e| CorpusError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        instances.push(parse_instance(&text)?);
    }
    Ok(instances)
}

/// One golden measurement: what a scheduler must report on an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRecord {
    /// Instance name (matching the `.tree` snapshot).
    pub instance: String,
    /// Scheduler registry spec (e.g. `RecExpand`,
    /// `RandomPostOrder(seed=0)`).
    pub scheduler: String,
    /// The memory bound the cell was solved under.
    pub memory: u64,
    /// Expected FiF I/O volume.
    pub io_volume: u64,
    /// Expected in-core peak of the produced schedule.
    pub peak_memory: u64,
}

/// Renders golden records as the canonical `golden.tsv` payload (header
/// comment included).
pub fn format_golden(records: &[GoldenRecord]) -> String {
    let mut out = String::from("# instance\tscheduler\tmemory\tio_volume\tpeak_memory\n");
    for r in records {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            r.instance, r.scheduler, r.memory, r.io_volume, r.peak_memory
        ));
    }
    out
}

/// Parses a `golden.tsv` payload. `#`-prefixed lines and blank lines are
/// skipped.
pub fn parse_golden(text: &str) -> Result<Vec<GoldenRecord>, CorpusError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |message: String| CorpusError::Parse {
            line: idx + 1,
            message,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        let [instance, scheduler, memory, io_volume, peak_memory] = fields[..] else {
            return Err(bad(format!(
                "expected 5 tab-separated fields, found {}",
                fields.len()
            )));
        };
        let number = |what: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| bad(format!("{what} is not a number: {v:?}")))
        };
        records.push(GoldenRecord {
            instance: instance.to_string(),
            scheduler: scheduler.to_string(),
            memory: number("memory", memory)?,
            io_volume: number("io_volume", io_volume)?,
            peak_memory: number("peak_memory", peak_memory)?,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::TreeBuilder;

    fn sample() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        b.add_child(r, 2);
        b.build().unwrap()
    }

    #[test]
    fn instances_round_trip_byte_identically() {
        let tree = sample();
        let text = format_instance("sample-tree", &tree).unwrap();
        let parsed = parse_instance(&text).unwrap();
        assert_eq!(parsed.name, "sample-tree");
        assert_eq!(parsed.tree, tree);
        assert_eq!(format_instance(&parsed.name, &parsed.tree).unwrap(), text);
    }

    #[test]
    fn generated_instances_round_trip() {
        let tree = crate::random_binary_tree(200, 1..=100, 7);
        let text = format_instance("synth", &tree).unwrap();
        let parsed = parse_instance(&text).unwrap();
        assert_eq!(parsed.tree, tree);
        assert_eq!(format_instance("synth", &parsed.tree).unwrap(), text);
    }

    #[test]
    fn parser_rejects_malformed_snapshots() {
        let good = format_instance("x", &sample()).unwrap();
        // Wrong magic.
        assert!(matches!(
            parse_instance(&good.replace("v1", "v9")),
            Err(CorpusError::Parse { line: 1, .. })
        ));
        // Truncated node list.
        let truncated: String = good.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            parse_instance(&truncated),
            Err(CorpusError::Parse { .. })
        ));
        // Trailing garbage.
        assert!(matches!(
            parse_instance(&format!("{good}stray\n")),
            Err(CorpusError::Parse { .. })
        ));
        // Structurally invalid tree (two roots).
        let two_roots = "oocts-corpus v1\nname y\nnodes 2\n- 1\n- 1\n";
        assert!(matches!(
            parse_instance(two_roots),
            Err(CorpusError::Tree(TreeError::MultipleRoots(_, _)))
        ));
        // Unrepresentable names.
        assert!(matches!(
            format_instance("two\nlines", &sample()),
            Err(CorpusError::BadName(_))
        ));
        assert!(matches!(
            format_instance("", &sample()),
            Err(CorpusError::BadName(_))
        ));
    }

    #[test]
    fn golden_records_round_trip() {
        let records = vec![
            GoldenRecord {
                instance: "synth-c00".to_string(),
                scheduler: "RecExpand".to_string(),
                memory: 120,
                io_volume: 17,
                peak_memory: 140,
            },
            GoldenRecord {
                instance: "grid-a".to_string(),
                scheduler: "RandomPostOrder(seed=0)".to_string(),
                memory: 64,
                io_volume: 0,
                peak_memory: 64,
            },
        ];
        let text = format_golden(&records);
        assert_eq!(parse_golden(&text).unwrap(), records);
        // Comments and blank lines are tolerated on load.
        let annotated = format!("\n# extra comment\n{text}\n");
        assert_eq!(parse_golden(&annotated).unwrap(), records);
    }

    #[test]
    fn golden_parser_rejects_bad_rows() {
        assert!(matches!(
            parse_golden("a\tb\tc\n"),
            Err(CorpusError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_golden("a\tb\tten\t0\t0\n"),
            Err(CorpusError::Parse { .. })
        ));
    }

    #[test]
    fn load_dir_reads_sorted_snapshots() {
        let dir = std::env::temp_dir().join(format!(
            "oocts-corpus-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let a = crate::random_binary_tree(40, 1..=9, 1);
        let b = crate::random_binary_tree(40, 1..=9, 2);
        std::fs::write(
            dir.join("b-second.tree"),
            format_instance("b-second", &b).unwrap(),
        )
        .unwrap();
        std::fs::write(
            dir.join("a-first.tree"),
            format_instance("a-first", &a).unwrap(),
        )
        .unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a snapshot").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].name, "a-first");
        assert_eq!(loaded[0].tree, a);
        assert_eq!(loaded[1].name, "b-second");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
