//! The two evaluation datasets of the paper (Section 6.1).
//!
//! * **SYNTH** — 330 synthetic binary trees of 3000 nodes, generated
//!   uniformly at random among all binary trees, with node weights drawn
//!   uniformly from `[1, 100]`.
//! * **TREES** — elimination/assembly trees of actual sparse matrices. The
//!   University of Florida collection used by the paper is not available
//!   offline, so the dataset is *substituted* by assembly trees produced by
//!   the [`oocts_sparse`] multifrontal pipeline on synthetic matrices (grid
//!   Laplacians under several orderings and random sparse symmetric
//!   matrices), which span the same range of shapes — deep and narrow,
//!   shallow and bushy, regular and irregular — and the same kind of weight
//!   growth towards the root. See DESIGN.md for the substitution rationale.

use oocts_sparse::ordering::{compute_ordering, Ordering};
use oocts_sparse::{
    assembly_tree, grid_laplacian_2d, grid_laplacian_3d, random_symmetric, AssemblyOptions,
};
use oocts_tree::Tree;

use crate::random::random_binary_tree;

/// A named instance of a dataset.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable name (used in reports).
    pub name: String,
    /// The task tree.
    pub tree: Tree,
}

/// Configuration of the dataset builders, so the paper-scale and quick runs
/// are both reproducible from the same code path.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Number of SYNTH instances (paper: 330).
    pub synth_instances: usize,
    /// Number of nodes of each SYNTH tree (paper: 3000).
    pub synth_nodes: usize,
    /// Scale factor of the TREES dataset in `[1, 4]`: larger values produce
    /// more and larger matrices (1 ≈ laptop-quick, 3 ≈ paper-sized shapes).
    pub trees_scale: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            synth_instances: 330,
            synth_nodes: 3000,
            trees_scale: 2,
            seed: 0x5eed,
        }
    }
}

impl DatasetConfig {
    /// A reduced configuration for tests and quick experiments.
    pub fn quick() -> Self {
        DatasetConfig {
            synth_instances: 20,
            synth_nodes: 300,
            trees_scale: 1,
            seed: 0x5eed,
        }
    }
}

/// Builds the SYNTH dataset: uniformly random binary trees with weights in
/// `[1, 100]`.
pub fn synth_dataset(config: &DatasetConfig) -> Vec<Instance> {
    (0..config.synth_instances)
        .map(|i| Instance {
            name: format!("synth-{i:03}"),
            tree: random_binary_tree(config.synth_nodes, 1..=100, config.seed ^ (i as u64)),
        })
        .collect()
}

/// Builds the TREES dataset: multifrontal assembly trees of synthetic sparse
/// matrices under several fill-reducing orderings.
pub fn trees_dataset(config: &DatasetConfig) -> Vec<Instance> {
    let s = config.trees_scale.clamp(1, 4);
    let mut out = Vec::new();
    let opts = AssemblyOptions::default();

    // 2-D grid Laplacians (5- and 9-point) under three orderings, including
    // elongated grids whose elimination trees are deep and unbalanced.
    let grid_sizes: Vec<(usize, usize)> = match s {
        1 => vec![(20, 20), (30, 20), (40, 25), (60, 10)],
        2 => vec![
            (20, 20),
            (30, 30),
            (40, 40),
            (60, 40),
            (70, 70),
            (100, 20),
            (150, 12),
            (45, 35),
        ],
        3 => vec![
            (30, 30),
            (50, 50),
            (70, 70),
            (90, 90),
            (110, 100),
            (200, 25),
            (160, 40),
        ],
        _ => vec![
            (40, 40),
            (70, 70),
            (100, 100),
            (130, 130),
            (160, 150),
            (300, 30),
        ],
    };
    for &(nx, ny) in &grid_sizes {
        for nine in [false, true] {
            let pattern = grid_laplacian_2d(nx, ny, nine);
            for ordering in [
                Ordering::NestedDissection,
                Ordering::ReverseCuthillMcKee,
                Ordering::MinimumDegree,
            ] {
                let grid = (ordering == Ordering::NestedDissection).then_some((nx, ny));
                let perm = compute_ordering(&pattern, ordering, grid);
                let permuted = pattern.permute(&perm);
                if let Ok(tree) = assembly_tree(&permuted, opts) {
                    out.push(Instance {
                        name: format!(
                            "grid2d-{nx}x{ny}{}-{ordering:?}",
                            if nine { "-9pt" } else { "" }
                        ),
                        tree,
                    });
                }
            }
        }
    }

    // 3-D grid Laplacians (natural + RCM orderings).
    let grid3d: Vec<(usize, usize, usize)> = match s {
        1 => vec![(6, 6, 6), (8, 8, 6)],
        2 => vec![(8, 8, 8), (10, 10, 8), (12, 12, 10)],
        3 => vec![(10, 10, 10), (14, 14, 12), (16, 16, 16)],
        _ => vec![(12, 12, 12), (16, 16, 16), (20, 20, 18)],
    };
    for &(nx, ny, nz) in &grid3d {
        let pattern = grid_laplacian_3d(nx, ny, nz);
        for ordering in [Ordering::Natural, Ordering::ReverseCuthillMcKee] {
            let perm = compute_ordering(&pattern, ordering, None);
            let permuted = pattern.permute(&perm);
            if let Ok(tree) = assembly_tree(&permuted, opts) {
                out.push(Instance {
                    name: format!("grid3d-{nx}x{ny}x{nz}-{ordering:?}"),
                    tree,
                });
            }
        }
    }

    // Random sparse symmetric matrices under minimum degree and RCM; several
    // seeds per size so the dataset covers many irregular shapes.
    let random_sizes: Vec<(usize, f64)> = match s {
        1 => vec![(300, 3.0), (500, 4.0), (400, 2.5)],
        2 => vec![
            (500, 3.0),
            (800, 4.0),
            (1200, 5.0),
            (2000, 3.5),
            (600, 2.5),
            (1500, 3.0),
        ],
        3 => vec![
            (1000, 3.0),
            (2000, 4.0),
            (4000, 4.0),
            (6000, 3.5),
            (3000, 2.5),
        ],
        _ => vec![(2000, 3.0), (4000, 4.0), (8000, 4.0), (12000, 3.5)],
    };
    let seeds_per_size = match s {
        1 => 2,
        2 => 3,
        _ => 2,
    };
    for (i, &(n, deg)) in random_sizes.iter().enumerate() {
        for rep in 0..seeds_per_size {
            let seed = config.seed.wrapping_add((i * 97 + rep * 7919) as u64);
            let pattern = random_symmetric(n, deg, seed);
            for ordering in [Ordering::MinimumDegree, Ordering::ReverseCuthillMcKee] {
                let perm = compute_ordering(&pattern, ordering, None);
                let permuted = pattern.permute(&perm);
                if let Ok(tree) = assembly_tree(&permuted, opts) {
                    out.push(Instance {
                        name: format!("rand-{n}-deg{deg}-s{rep}-{ordering:?}"),
                        tree,
                    });
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_dataset_matches_configuration() {
        let cfg = DatasetConfig {
            synth_instances: 5,
            synth_nodes: 120,
            trees_scale: 1,
            seed: 3,
        };
        let ds = synth_dataset(&cfg);
        assert_eq!(ds.len(), 5);
        for inst in &ds {
            assert_eq!(inst.tree.len(), 120);
            inst.tree.validate().unwrap();
        }
        // Deterministic.
        let ds2 = synth_dataset(&cfg);
        assert_eq!(ds[0].tree, ds2[0].tree);
        // Distinct instances.
        assert_ne!(ds[0].tree, ds[1].tree);
    }

    #[test]
    fn trees_dataset_quick_is_nonempty_and_valid() {
        let ds = trees_dataset(&DatasetConfig::quick());
        assert!(ds.len() >= 10, "expected a reasonable number of instances");
        for inst in &ds {
            inst.tree.validate().unwrap();
            assert!(inst.tree.len() > 20, "{} is too small", inst.name);
        }
        // A variety of shapes: at least one deep tree and one shallow tree.
        let heights: Vec<usize> = ds.iter().map(|i| i.tree.height()).collect();
        let min_h = *heights.iter().min().unwrap();
        let max_h = *heights.iter().max().unwrap();
        assert!(max_h > 3 * min_h, "heights {min_h}..{max_h} lack variety");
    }
}
