//! The hand-crafted instances of the paper.
//!
//! * Figure 2(a): postorder traversals are not competitive — the optimal
//!   traversal needs 1 I/O while any postorder needs `Ω(n·M)`.
//! * Figure 2(b)/(c): OptMinMem is not competitive — the peak-memory-optimal
//!   traversal pays `Θ(k²)` I/Os where `2k` suffice.
//! * Figures 6 and 7 (Appendix A): worked examples separating FullRecExpand,
//!   OptMinMem and PostOrderMinIO.
//!
//! Each constructor returns the tree; the counterexample families also return
//! the reference schedule described in the paper (the near-optimal traversal
//! the adversarial argument compares against).

use oocts_tree::{NodeId, Schedule, Tree, TreeBuilder};

/// Finalizes a statically-constructed example tree.
///
/// The figure builders above are straight-line `add_root`/`add_child`
/// sequences producing a fixed shape; `build()` cannot fail on them.
fn finish(b: TreeBuilder, what: &str) -> Tree {
    // lint: allow(L001, straight-line TreeBuilder construction always forms a tree)
    b.build().expect(what)
}

/// The memory bound used by the Figure 6 example.
pub const FIG6_MEMORY: u64 = 10;
/// The memory bound used by the Figure 7 example.
pub const FIG7_MEMORY: u64 = 7;

/// Figure 2(a) instance (15 nodes) for an even memory bound `m ≥ 4`:
/// the exact tree drawn in the paper, which is [`fig2a_family`] with two
/// extra levels. Returns the tree and the paper's 1-I/O reference schedule.
pub fn fig2a(m: u64) -> (Tree, Schedule) {
    fig2a_family(2, m)
}

/// The Figure 2(a) *family*: a bottom gadget with two leaves of size `m`
/// plus `extra_levels` additional levels, each contributing one leaf of size
/// `m − 1`. Any postorder traversal pays at least `(m/2 − 1)` I/Os per leaf
/// except one, while the returned reference schedule pays exactly 1.
///
/// `m` must be even and at least 4.
pub fn fig2a_family(extra_levels: usize, m: u64) -> (Tree, Schedule) {
    assert!(
        m >= 4 && m.is_multiple_of(2),
        "memory bound must be even and ≥ 4"
    );
    let half = m / 2;
    let mut b = TreeBuilder::new();
    let mut order: Vec<NodeId> = Vec::new();

    // The builder requires the root first; the root is the topmost spine
    // node. Build top-down: spine nodes from the root towards the bottom
    // gadget, then fill in the per-level chains.
    // level 0 = root; levels 1..=extra_levels are spine nodes of weight 1;
    // the bottom gadget hangs below the last spine node.
    let mut spine = Vec::with_capacity(extra_levels + 1);
    spine.push(b.add_root(1));
    for i in 0..extra_levels {
        // Each level: the current spine node has two children of weight m/2;
        // the "leaf side" child caps a leaf of weight m − 1, the "spine side"
        // child caps the next spine node.
        let parent = spine[i];
        let leaf_cap = b.add_child(parent, half);
        let leaf = b.add_child(leaf_cap, m - 1);
        let spine_cap = b.add_child(parent, half);
        let next_spine = b.add_child(spine_cap, 1);
        spine.push(next_spine);
        // Remember for the reference schedule (constructed below).
        let _ = (leaf, leaf_cap, spine_cap);
    }
    // Bottom gadget below the last spine node: two children of weight m/2,
    // each over a weight-1 node over a leaf of weight m.
    let bottom = spine[spine.len() - 1];
    let cap_a = b.add_child(bottom, half);
    let one_a = b.add_child(cap_a, 1);
    let leaf_a = b.add_child(one_a, m);
    let cap_b = b.add_child(bottom, half);
    let one_b = b.add_child(cap_b, 1);
    let leaf_b = b.add_child(one_b, m);
    let tree = finish(b, "figure 2(a) construction is a tree");

    // Reference schedule (the labels of the figure): process the two bottom
    // leaves first (1 I/O when the second one is produced), close the bottom
    // gadget, then for each level going up: leaf, leaf cap, spine cap, spine
    // node.
    order.push(leaf_a);
    order.push(one_a);
    order.push(leaf_b);
    order.push(one_b);
    order.push(cap_a);
    order.push(cap_b);
    order.push(bottom);
    for i in (0..extra_levels).rev() {
        let parent = spine[i];
        // Children of `parent` were created in the order
        // [leaf_cap, spine_cap]; recover them from the tree.
        let kids = tree.children(parent);
        let leaf_cap = kids[0];
        let spine_cap = kids[1];
        let leaf = tree.children(leaf_cap)[0];
        order.push(leaf);
        order.push(leaf_cap);
        order.push(spine_cap);
        order.push(parent);
    }
    let schedule = Schedule::new(order);
    debug_assert!(schedule.validate(&tree).is_ok());
    (tree, schedule)
}

/// Figure 2(b): the 9-node instance showing that a peak-memory-optimal
/// traversal can be forced to perform more I/O than a memory-hungrier one
/// (`M = 6`): the best postorder has peak 9 and 3 I/Os, OptMinMem has peak 8
/// but 4 I/Os.
pub fn fig2b() -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.add_root(1);
    for _ in 0..2 {
        let mut parent = root;
        for &w in &[3u64, 5, 2, 6] {
            parent = b.add_child(parent, w);
        }
    }
    finish(b, "figure 2(b) is a tree")
}

/// The memory bound of the Figure 2(b) example.
pub const FIG2B_MEMORY: u64 = 6;

/// Figure 2(c) family: two identical chains of length `2k + 2` under a
/// common root, with weights (from the root towards the leaf) interleaving
/// `{2k, 2k−1, …, k}` and `{3k, 3k+1, …, 4k}`; the memory bound is `4k`.
///
/// Returns the tree and the reference schedule that processes one chain
/// entirely before the other (peak `6k`, exactly `2k` I/Os), against which
/// OptMinMem pays `k(k+1)` I/Os.
pub fn fig2c_family(k: u64) -> (Tree, Schedule, u64) {
    assert!(k >= 1, "k must be at least 1");
    let memory = 4 * k;
    let mut weights = Vec::with_capacity((2 * k + 2) as usize);
    // Interleave {2k, 2k−1, …, k} and {3k, 3k+1, …, 4k}, starting from 2k.
    for i in 0..=k {
        weights.push(2 * k - i);
        weights.push(3 * k + i);
    }
    debug_assert_eq!(weights.len() as u64, 2 * k + 2);

    let mut b = TreeBuilder::new();
    let root = b.add_root(1);
    let mut chain_nodes: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..2 {
        let mut nodes = Vec::new();
        let mut parent = root;
        for &w in &weights {
            parent = b.add_child(parent, w);
            nodes.push(parent);
        }
        chain_nodes.push(nodes);
    }
    let tree = finish(b, "figure 2(c) is a tree");

    // Reference schedule: first chain bottom-up, then second chain, then root.
    let mut order = Vec::with_capacity(tree.len());
    for nodes in &chain_nodes {
        for &n in nodes.iter().rev() {
            order.push(n);
        }
    }
    order.push(root);
    let schedule = Schedule::new(order);
    debug_assert!(schedule.validate(&tree).is_ok());
    (tree, schedule, memory)
}

/// Figure 6 (Appendix A): FullRecExpand is optimal (3 I/Os at `M = 10`)
/// while OptMinMem pays 4 and the best postorder more.
pub fn fig6() -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.add_root(1);
    let l1 = b.add_child(root, 4);
    let l2 = b.add_child(l1, 8);
    let l3 = b.add_child(l2, 2);
    b.add_child(l3, 9);
    let r1 = b.add_child(root, 6);
    let r2 = b.add_child(r1, 4);
    b.add_child(r2, 10);
    finish(b, "figure 6 is a tree")
}

/// Figure 7 (Appendix A): PostOrderMinIO is optimal (3 I/Os at `M = 7`)
/// while OptMinMem and FullRecExpand pay 4.
pub fn fig7() -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.add_root(1);
    let c = b.add_child(root, 3);
    let a = b.add_child(c, 2);
    b.add_child(a, 7);
    b.add_child(c, 3);
    let bn = b.add_child(root, 4);
    b.add_child(bn, 7);
    finish(b, "figure 7 is a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::fif_io;

    #[test]
    fn fig2a_reference_schedule_pays_one_io() {
        for m in [8u64, 16, 64] {
            for levels in [0usize, 1, 2, 5] {
                let (tree, reference) = fig2a_family(levels, m);
                reference.validate(&tree).unwrap();
                assert_eq!(reference.len(), tree.len());
                let io = fif_io(&tree, &reference, m).unwrap().total_io;
                assert_eq!(io, 1, "reference schedule must pay exactly 1 I/O");
            }
        }
    }

    #[test]
    fn fig2a_exact_instance_has_15_nodes() {
        let (tree, _) = fig2a(8);
        assert_eq!(tree.len(), 15);
        assert_eq!(tree.leaves().len(), 4);
    }

    #[test]
    fn fig2b_claims() {
        let t = fig2b();
        assert_eq!(t.len(), 9);
        // Postorder (one chain after the other): peak 9, and 3 I/Os at M = 6.
        let po = Schedule::postorder(&t);
        assert_eq!(oocts_tree::peak_memory(&t, &po).unwrap(), 9);
        assert_eq!(fif_io(&t, &po, FIG2B_MEMORY).unwrap().total_io, 3);
    }

    #[test]
    fn fig2c_reference_schedule_pays_2k_ios() {
        for k in [1u64, 2, 3, 5, 10] {
            let (tree, reference, m) = fig2c_family(k);
            assert_eq!(m, 4 * k);
            assert_eq!(tree.len() as u64, 2 * (2 * k + 2) + 1);
            reference.validate(&tree).unwrap();
            let io = fif_io(&tree, &reference, m).unwrap().total_io;
            assert_eq!(io, 2 * k, "one-chain-after-the-other pays 2k I/Os");
            let peak = oocts_tree::peak_memory(&tree, &reference).unwrap();
            assert_eq!(peak, 6 * k, "its in-core peak is 6k");
        }
    }

    #[test]
    fn fig6_and_fig7_shapes() {
        let t6 = fig6();
        assert_eq!(t6.len(), 8);
        assert_eq!(t6.min_feasible_memory(), 10);
        let t7 = fig7();
        assert_eq!(t7.len(), 7);
        assert_eq!(t7.min_feasible_memory(), 7);
    }
}
