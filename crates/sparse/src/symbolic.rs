//! Symbolic factorization: column counts of the Cholesky factor.
//!
//! The number of nonzeros of every column of `L` determines the sizes of the
//! frontal matrices and contribution blocks of the multifrontal method — the
//! node weights of the assembly tree. Counts are computed with the classical
//! row-subtree traversal: the nonzero columns of row `k` of `L` are exactly
//! the vertices on the elimination-tree paths from the below-diagonal
//! nonzeros of row `k` of `A` up to `k`.

use crate::pattern::SymmetricPattern;

/// Computes `cc[j]` = number of nonzeros of column `j` of the Cholesky factor
/// `L` (including the diagonal), given the pattern and its elimination tree.
pub fn column_counts(pattern: &SymmetricPattern, parent: &[Option<usize>]) -> Vec<u64> {
    let n = pattern.order();
    assert_eq!(
        parent.len(),
        n,
        "elimination tree does not match the pattern"
    );
    let mut counts = vec![1u64; n]; // the diagonal entry
    let mut mark = vec![usize::MAX; n];
    for k in 0..n {
        mark[k] = k;
        for &i in pattern.neighbors(k) {
            if i >= k {
                continue;
            }
            // Walk up the elimination tree from i towards k, counting each
            // newly-visited column: row k of L has a nonzero there.
            let mut j = i;
            while mark[j] != k {
                counts[j] += 1;
                mark[j] = k;
                match parent[j] {
                    Some(p) => j = p,
                    None => break,
                }
            }
        }
    }
    counts
}

/// Total number of nonzeros of the factor (sum of the column counts) — a
/// handy measure of fill-in for ordering-quality tests.
pub fn factor_nnz(counts: &[u64]) -> u64 {
    counts.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::elimination_tree;
    use crate::generators::grid_laplacian_2d;
    use crate::ordering::{nested_dissection_2d, reverse_cuthill_mckee};

    #[test]
    fn tridiagonal_matrix_has_no_fill() {
        let p = SymmetricPattern::from_edges(6, (0..5).map(|i| (i, i + 1)));
        let parent = elimination_tree(&p);
        let cc = column_counts(&p, &parent);
        // Column j has the diagonal and one sub-diagonal entry, except the
        // last column.
        assert_eq!(cc, vec![2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn dense_matrix_counts() {
        let n = 5;
        let edges = (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j)));
        let p = SymmetricPattern::from_edges(n, edges);
        let parent = elimination_tree(&p);
        let cc = column_counts(&p, &parent);
        assert_eq!(cc, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn star_matrix_has_no_fill() {
        // Arrow/star with centre last: no fill at all.
        let n = 6;
        let p = SymmetricPattern::from_edges(n, (0..n - 1).map(|i| (i, n - 1)));
        let parent = elimination_tree(&p);
        let cc = column_counts(&p, &parent);
        assert_eq!(cc, vec![2, 2, 2, 2, 2, 1]);
        // Star with centre FIRST: eliminating the centre fills everything.
        let p2 = SymmetricPattern::from_edges(n, (1..n).map(|i| (0, i)));
        let parent2 = elimination_tree(&p2);
        let cc2 = column_counts(&p2, &parent2);
        assert_eq!(cc2[0], n as u64);
        assert_eq!(factor_nnz(&cc2), (n * (n + 1) / 2) as u64);
    }

    #[test]
    fn fill_reducing_orderings_reduce_fill_on_grids() {
        let (nx, ny) = (15, 15);
        let g = grid_laplacian_2d(nx, ny, false);
        let natural_fill = {
            let parent = elimination_tree(&g);
            factor_nnz(&column_counts(&g, &parent))
        };
        let nd_fill = {
            let q = g.permute(&nested_dissection_2d(nx, ny));
            let parent = elimination_tree(&q);
            factor_nnz(&column_counts(&q, &parent))
        };
        let rcm_fill = {
            let q = g.permute(&reverse_cuthill_mckee(&g));
            let parent = elimination_tree(&q);
            factor_nnz(&column_counts(&q, &parent))
        };
        assert!(
            nd_fill < natural_fill,
            "nested dissection ({nd_fill}) should beat the natural ordering ({natural_fill})"
        );
        // RCM keeps the band structure: never catastrophically worse than
        // natural on a grid.
        assert!(rcm_fill <= natural_fill * 2);
    }
}
