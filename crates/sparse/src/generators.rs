//! Generators of synthetic symmetric sparsity patterns.
//!
//! These are the standard model problems of sparse direct solvers: regular
//! grid Laplacians (whose elimination trees have the deep, progressively
//! heavier structure typical of multifrontal workloads) and random sparse
//! symmetric matrices (irregular, bushier trees).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::pattern::SymmetricPattern;

/// 5-point (or 9-point) finite-difference Laplacian on an `nx × ny` grid.
///
/// With `nine_point = false` each interior vertex is connected to its 4 grid
/// neighbours; with `nine_point = true`, to its 8 neighbours.
pub fn grid_laplacian_2d(nx: usize, ny: usize, nine_point: bool) -> SymmetricPattern {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let idx = |x: usize, y: usize| y * nx + x;
    let mut p = SymmetricPattern::new(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                p.add_edge(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < ny {
                p.add_edge(idx(x, y), idx(x, y + 1));
            }
            if nine_point {
                if x + 1 < nx && y + 1 < ny {
                    p.add_edge(idx(x, y), idx(x + 1, y + 1));
                }
                if x > 0 && y + 1 < ny {
                    p.add_edge(idx(x, y), idx(x - 1, y + 1));
                }
            }
        }
    }
    p.sort_dedup();
    p
}

/// 7-point finite-difference Laplacian on an `nx × ny × nz` grid.
pub fn grid_laplacian_3d(nx: usize, ny: usize, nz: usize) -> SymmetricPattern {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "grid dimensions must be positive"
    );
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut p = SymmetricPattern::new(nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    p.add_edge(idx(x, y, z), idx(x + 1, y, z));
                }
                if y + 1 < ny {
                    p.add_edge(idx(x, y, z), idx(x, y + 1, z));
                }
                if z + 1 < nz {
                    p.add_edge(idx(x, y, z), idx(x, y, z + 1));
                }
            }
        }
    }
    p.sort_dedup();
    p
}

/// Random sparse symmetric pattern of order `n` with approximately
/// `avg_degree` off-diagonal nonzeros per row, made connected by a random
/// spanning path.
///
/// This mimics the irregular problems (circuit, optimization, graph matrices)
/// of the University of Florida collection.
pub fn random_symmetric(n: usize, avg_degree: f64, seed: u64) -> SymmetricPattern {
    assert!(n > 0, "matrix order must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = SymmetricPattern::new(n);
    // Random spanning path for connectivity.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    for w in order.windows(2) {
        p.add_edge(w[0], w[1]);
    }
    // Extra random edges to reach the requested density.
    let target_extra = ((avg_degree * n as f64 / 2.0) as usize).saturating_sub(n - 1);
    for _ in 0..target_extra {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j {
            p.add_edge(i, j);
        }
    }
    p.sort_dedup();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_2d_has_expected_edges() {
        let p = grid_laplacian_2d(3, 2, false);
        assert_eq!(p.order(), 6);
        // 2D grid: horizontal edges (nx−1)·ny + vertical nx·(ny−1) = 4 + 3 = 7.
        assert_eq!(p.nnz_off_diagonal(), 2 * 7);
        assert!(p.is_connected());
        // Corner vertex 0 has neighbours 1 and 3.
        assert_eq!(p.neighbors(0), &[1, 3]);
    }

    #[test]
    fn grid_2d_nine_point_adds_diagonals() {
        let p5 = grid_laplacian_2d(4, 4, false);
        let p9 = grid_laplacian_2d(4, 4, true);
        assert!(p9.nnz_off_diagonal() > p5.nnz_off_diagonal());
        assert!(p9.is_connected());
    }

    #[test]
    fn grid_3d_has_expected_edges() {
        let p = grid_laplacian_3d(2, 2, 2);
        assert_eq!(p.order(), 8);
        // 2×2×2 grid: 4 edges per direction × 3 directions = 12.
        assert_eq!(p.nnz_off_diagonal(), 2 * 12);
        assert!(p.is_connected());
    }

    #[test]
    fn random_symmetric_is_connected_and_reproducible() {
        let a = random_symmetric(50, 4.0, 7);
        let b = random_symmetric(50, 4.0, 7);
        assert_eq!(a, b, "same seed must give the same pattern");
        assert!(a.is_connected());
        let c = random_symmetric(50, 4.0, 8);
        assert_ne!(a, c, "different seeds should differ");
        // Density is in the right ballpark.
        let avg = a.nnz_off_diagonal() as f64 / 50.0;
        assert!((2.0..=10.0).contains(&avg), "unexpected density {avg}");
    }
}
