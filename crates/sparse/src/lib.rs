//! # oocts-sparse — sparse-matrix multifrontal substrate
//!
//! The paper's TREES dataset consists of elimination trees of sparse matrices
//! from the University of Florida collection, weighted by the data sizes of
//! the multifrontal factorization. That collection cannot be redistributed
//! here, so this crate rebuilds the *pipeline* that produces such trees from
//! scratch, and feeds it with synthetic — but structurally realistic —
//! symmetric sparse matrices:
//!
//! 1. [`pattern`] — symmetric sparsity patterns (adjacency structure of the
//!    matrix graph);
//! 2. [`generators`] — 2-D/3-D grid Laplacians and random sparse symmetric
//!    patterns, the standard model problems of sparse direct solvers;
//! 3. [`ordering`] — fill-reducing orderings: reverse Cuthill–McKee, a
//!    minimum-degree heuristic, and nested dissection for grids;
//! 4. [`etree`] — the elimination tree of a (permuted) pattern, via Liu's
//!    algorithm;
//! 5. [`symbolic`] — symbolic factorization: the column counts of the
//!    Cholesky factor;
//! 6. [`assembly`] — the multifrontal assembly tree: one task per node (or
//!    per supernode after amalgamation) whose output datum is the
//!    contribution block passed to its parent, i.e. exactly the task trees
//!    scheduled by `oocts-core`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod assembly;
pub mod etree;
pub mod generators;
pub mod ordering;
pub mod pattern;
pub mod symbolic;

pub use assembly::{assembly_tree, AssemblyOptions};
pub use etree::elimination_tree;
pub use generators::{grid_laplacian_2d, grid_laplacian_3d, random_symmetric};
pub use ordering::{minimum_degree, nested_dissection_2d, reverse_cuthill_mckee, Ordering};
pub use pattern::SymmetricPattern;
pub use symbolic::column_counts;
