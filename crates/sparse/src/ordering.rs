//! Fill-reducing orderings.
//!
//! Sparse direct solvers permute the matrix before factorizing it to limit
//! fill-in; the choice of ordering also shapes the elimination tree (deep and
//! narrow for band-preserving orderings, shallow and bushy for nested
//! dissection). Three classical heuristics are provided, plus the natural
//! ordering, so the assembly-tree generator can produce the variety of tree
//! shapes found in the University of Florida collection.
//!
//! All functions return a *new-to-old* permutation `perm`: vertex `i` of the
//! permuted matrix is vertex `perm[i]` of the original one
//! (see [`crate::pattern::SymmetricPattern::permute`]).

use crate::pattern::SymmetricPattern;

/// The ordering strategies available to the assembly-tree pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Keep the natural (identity) ordering.
    Natural,
    /// Reverse Cuthill–McKee: bandwidth-reducing, gives deep and narrow
    /// elimination trees.
    ReverseCuthillMcKee,
    /// Minimum degree on the elimination graph: the classical fill-reducing
    /// heuristic, gives irregular trees.
    MinimumDegree,
    /// Nested dissection (grids only): gives shallow, balanced trees.
    NestedDissection,
}

/// Identity permutation.
pub fn natural(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Reverse Cuthill–McKee ordering, started from a pseudo-peripheral vertex of
/// each connected component.
pub fn reverse_cuthill_mckee(pattern: &SymmetricPattern) -> Vec<usize> {
    let n = pattern.order();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(pattern, start);
        // BFS from root, visiting neighbours by increasing degree.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        visited[root] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbs: Vec<usize> = pattern
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            nbs.sort_by_key(|&u| pattern.degree(u));
            for u in nbs {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Finds a pseudo-peripheral vertex by repeated BFS (George–Liu heuristic).
fn pseudo_peripheral(pattern: &SymmetricPattern, start: usize) -> usize {
    let mut current = start;
    let mut current_ecc = 0usize;
    for _ in 0..4 {
        let (farthest, ecc) = bfs_farthest(pattern, current);
        if ecc > current_ecc {
            current_ecc = ecc;
            current = farthest;
        } else {
            break;
        }
    }
    current
}

fn bfs_farthest(pattern: &SymmetricPattern, start: usize) -> (usize, usize) {
    let n = pattern.order();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut far = (start, 0usize);
    while let Some(v) = queue.pop_front() {
        for &u in pattern.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                if dist[u] > far.1
                    || (dist[u] == far.1 && pattern.degree(u) < pattern.degree(far.0))
                {
                    far = (u, dist[u]);
                }
                queue.push_back(u);
            }
        }
    }
    far
}

/// Minimum-degree ordering computed on the (explicitly updated) elimination
/// graph. Intended for moderate problem sizes (up to a few tens of thousands
/// of vertices for sparse inputs); complexity depends on the fill produced.
pub fn minimum_degree(pattern: &SymmetricPattern) -> Vec<usize> {
    let n = pattern.order();
    // Working adjacency as sorted vectors; eliminated vertices are emptied.
    let mut adj: Vec<Vec<usize>> = (0..n).map(|i| pattern.neighbors(i).to_vec()).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Simple binary-heap of (degree, vertex) with lazy invalidation.
    use std::cmp::Reverse;
    let mut heap: std::collections::BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|i| Reverse((adj[i].len(), i))).collect();

    while let Some(Reverse((deg, v))) = heap.pop() {
        if eliminated[v] || adj[v].len() != deg {
            continue; // stale entry
        }
        eliminated[v] = true;
        order.push(v);
        // Form the clique of v's remaining neighbours.
        let nbs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for (idx, &u) in nbs.iter().enumerate() {
            // Remove v from u's list and add the other clique members.
            let mut list = std::mem::take(&mut adj[u]);
            list.retain(|&x| x != v && !eliminated[x]);
            for &w in &nbs[idx + 1..] {
                list.push(w);
            }
            for &w in &nbs[..idx] {
                list.push(w);
            }
            list.sort_unstable();
            list.dedup();
            let new_deg = list.len();
            adj[u] = list;
            heap.push(Reverse((new_deg, u)));
        }
        adj[v].clear();
    }
    order
}

/// Nested dissection for a 2-D grid of `nx × ny` vertices numbered row-major
/// (as produced by [`crate::generators::grid_laplacian_2d`]).
///
/// The grid is recursively split along its longer dimension; separator
/// vertices are numbered last, which yields the classical shallow and
/// balanced elimination trees.
pub fn nested_dissection_2d(nx: usize, ny: usize) -> Vec<usize> {
    let mut perm = Vec::with_capacity(nx * ny);
    // Recursion on sub-rectangles [x0, x1) × [y0, y1).
    fn recurse(nx: usize, x0: usize, x1: usize, y0: usize, y1: usize, perm: &mut Vec<usize>) {
        let w = x1 - x0;
        let h = y1 - y0;
        if w == 0 || h == 0 {
            return;
        }
        if w <= 2 && h <= 2 {
            for y in y0..y1 {
                for x in x0..x1 {
                    perm.push(y * nx + x);
                }
            }
            return;
        }
        if w >= h {
            // Vertical separator at mid column.
            let mid = x0 + w / 2;
            recurse(nx, x0, mid, y0, y1, perm);
            recurse(nx, mid + 1, x1, y0, y1, perm);
            for y in y0..y1 {
                perm.push(y * nx + mid);
            }
        } else {
            let mid = y0 + h / 2;
            recurse(nx, x0, x1, y0, mid, perm);
            recurse(nx, x0, x1, mid + 1, y1, perm);
            for x in x0..x1 {
                perm.push(mid * nx + x);
            }
        }
    }
    recurse(nx, 0, nx, 0, ny, &mut perm);
    perm
}

/// Applies the requested ordering to a pattern, returning the permutation.
///
/// `grid` must be provided (as `(nx, ny)`) for [`Ordering::NestedDissection`].
pub fn compute_ordering(
    pattern: &SymmetricPattern,
    ordering: Ordering,
    grid: Option<(usize, usize)>,
) -> Vec<usize> {
    match ordering {
        Ordering::Natural => natural(pattern.order()),
        Ordering::ReverseCuthillMcKee => reverse_cuthill_mckee(pattern),
        Ordering::MinimumDegree => minimum_degree(pattern),
        Ordering::NestedDissection => {
            // lint: allow(L001, documented precondition: callers pass the grid for NestedDissection)
            let (nx, ny) = grid.expect("nested dissection needs the grid dimensions");
            assert_eq!(nx * ny, pattern.order(), "grid does not match the pattern");
            nested_dissection_2d(nx, ny)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_laplacian_2d, random_symmetric};

    fn is_permutation(perm: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        if perm.len() != n {
            return false;
        }
        for &p in perm {
            if p >= n || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    #[test]
    fn all_orderings_are_permutations() {
        let p = grid_laplacian_2d(7, 5, false);
        assert!(is_permutation(&natural(p.order()), p.order()));
        assert!(is_permutation(&reverse_cuthill_mckee(&p), p.order()));
        assert!(is_permutation(&minimum_degree(&p), p.order()));
        assert!(is_permutation(&nested_dissection_2d(7, 5), 35));
        let r = random_symmetric(60, 4.0, 3);
        assert!(is_permutation(&reverse_cuthill_mckee(&r), 60));
        assert!(is_permutation(&minimum_degree(&r), 60));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_grids() {
        // The natural ordering of an nx × ny grid has bandwidth nx; RCM should
        // not make it worse (up to a small constant).
        let (nx, ny) = (20, 4);
        let p = grid_laplacian_2d(nx, ny, false);
        let perm = reverse_cuthill_mckee(&p);
        let q = p.permute(&perm);
        let bandwidth = |pat: &SymmetricPattern| {
            (0..pat.order())
                .flat_map(|i| pat.neighbors(i).iter().map(move |&j| i.abs_diff(j)))
                .max()
                .unwrap_or(0)
        };
        assert!(bandwidth(&q) <= ny + 1, "RCM bandwidth {}", bandwidth(&q));
    }

    #[test]
    fn nested_dissection_numbers_separator_last() {
        let perm = nested_dissection_2d(5, 5);
        // The top-level separator is the middle column (x = 2); its vertices
        // must be the last 5 of the permutation.
        let last: Vec<usize> = perm[20..].to_vec();
        for &v in &last {
            assert_eq!(v % 5, 2, "vertex {v} is not on the middle column");
        }
    }

    #[test]
    fn minimum_degree_starts_with_a_minimum_degree_vertex() {
        let p = grid_laplacian_2d(6, 6, false);
        let perm = minimum_degree(&p);
        // Corners have degree 2, the global minimum on a grid.
        assert_eq!(p.degree(perm[0]), 2);
    }
}
