//! Elimination trees (Liu's algorithm).
//!
//! The elimination tree of a symmetric pattern records, for every column `j`
//! of the Cholesky factor, the row index of its first sub-diagonal nonzero.
//! It is the dependency structure of the numerical factorization: column `j`
//! must be eliminated before its parent. Computed with Liu's nearly-linear
//! algorithm (path compression over a virtual forest).

use crate::pattern::SymmetricPattern;

/// Computes the elimination tree of `pattern` (in its current ordering).
///
/// Returns `parent`, where `parent[j]` is the parent column of `j`, or `None`
/// if `j` is a root (the last column of each connected component).
pub fn elimination_tree(pattern: &SymmetricPattern) -> Vec<Option<usize>> {
    let n = pattern.order();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut ancestor: Vec<Option<usize>> = vec![None; n];
    for k in 0..n {
        for &i in pattern.neighbors(k) {
            if i >= k {
                continue;
            }
            // Walk from i up the (compressed) ancestor pointers to the root
            // of its current virtual tree, then attach that root to k.
            let mut j = i;
            loop {
                match ancestor[j] {
                    Some(a) if a == k => break,
                    Some(a) => {
                        ancestor[j] = Some(k);
                        j = a;
                    }
                    None => {
                        ancestor[j] = Some(k);
                        parent[j] = Some(k);
                        break;
                    }
                }
            }
        }
    }
    parent
}

/// Number of roots of the elimination forest (1 for a connected pattern).
pub fn forest_roots(parent: &[Option<usize>]) -> usize {
    parent.iter().filter(|p| p.is_none()).count()
}

/// Depth of the elimination tree/forest (longest root-to-leaf path, in edges).
pub fn etree_height(parent: &[Option<usize>]) -> usize {
    let n = parent.len();
    let mut depth = vec![usize::MAX; n];
    let mut best = 0;
    for mut v in 0..n {
        // Walk up, collecting the path until a node of known depth.
        let mut path = Vec::new();
        while depth[v] == usize::MAX {
            path.push(v);
            match parent[v] {
                Some(p) => v = p,
                None => {
                    depth[v] = 0;
                    break;
                }
            }
        }
        let mut d = depth[v];
        for &u in path.iter().rev() {
            if u != v {
                d += 1;
            }
            depth[u] = d;
            best = best.max(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_laplacian_2d, random_symmetric};
    use crate::ordering::{nested_dissection_2d, reverse_cuthill_mckee};

    #[test]
    fn etree_of_a_tridiagonal_matrix_is_a_chain() {
        // Path graph 0-1-2-3-4: parent[i] = i + 1.
        let p = SymmetricPattern::from_edges(5, (0..4).map(|i| (i, i + 1)));
        let parent = elimination_tree(&p);
        assert_eq!(parent, vec![Some(1), Some(2), Some(3), Some(4), None]);
        assert_eq!(forest_roots(&parent), 1);
        assert_eq!(etree_height(&parent), 4);
    }

    #[test]
    fn etree_of_an_arrow_matrix_is_a_star() {
        // Star centred at the last vertex: every column's first nonzero below
        // the diagonal is the last row.
        let n = 6;
        let p = SymmetricPattern::from_edges(n, (0..n - 1).map(|i| (i, n - 1)));
        let parent = elimination_tree(&p);
        for par in &parent[..n - 1] {
            assert_eq!(*par, Some(n - 1));
        }
        assert_eq!(parent[n - 1], None);
        assert_eq!(etree_height(&parent), 1);
    }

    #[test]
    fn disconnected_pattern_gives_a_forest() {
        let p = SymmetricPattern::from_edges(4, [(0, 1), (2, 3)]);
        let parent = elimination_tree(&p);
        assert_eq!(forest_roots(&parent), 2);
    }

    #[test]
    fn connected_patterns_give_single_root_under_any_ordering() {
        let g = grid_laplacian_2d(6, 5, false);
        for perm in [reverse_cuthill_mckee(&g), nested_dissection_2d(6, 5)] {
            let q = g.permute(&perm);
            let parent = elimination_tree(&q);
            assert_eq!(forest_roots(&parent), 1);
            // The root is always the last column for a connected matrix.
            assert_eq!(parent[q.order() - 1], None);
        }
        let r = random_symmetric(40, 3.0, 11);
        let parent = elimination_tree(&r);
        assert_eq!(forest_roots(&parent), 1);
    }

    #[test]
    fn parents_always_point_to_larger_indices() {
        let g = random_symmetric(80, 4.0, 5);
        let parent = elimination_tree(&g);
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(*p > i, "parent of {i} is {p}");
            }
        }
    }
}
