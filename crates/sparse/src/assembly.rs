//! Multifrontal assembly trees.
//!
//! In the multifrontal method every column (or supernode) of the factor is
//! processed in a dense *frontal matrix*; eliminating its pivots leaves a
//! *contribution block* that is passed to — and assembled into — the parent's
//! front. The dependency structure is the elimination tree, and the datum a
//! node sends to its parent is its contribution block: exactly the task-tree
//! model of the paper, with `w_i` = (size of the contribution block of `i`).
//!
//! This module turns a (permuted) sparsity pattern into such a task tree.

use oocts_tree::{Tree, TreeError};

use crate::etree::elimination_tree;
use crate::pattern::SymmetricPattern;
use crate::symbolic::column_counts;

/// Options of the assembly-tree construction.
#[derive(Debug, Clone, Copy)]
pub struct AssemblyOptions {
    /// Fuse a node into its parent when it is an only child whose elimination
    /// does not change the front structure (`cc_child = cc_parent + 1`), the
    /// classical fundamental-supernode amalgamation. Reduces the number of
    /// tasks the way real multifrontal solvers do.
    pub amalgamate: bool,
    /// Weights are contribution-block *areas* (`(cc−1)²`, the default, in
    /// "matrix entries" units) when `true`; contribution-block *orders*
    /// (`cc − 1`) when `false`. Areas are what the multifrontal method
    /// actually stores.
    pub square_weights: bool,
}

impl Default for AssemblyOptions {
    fn default() -> Self {
        AssemblyOptions {
            amalgamate: true,
            square_weights: true,
        }
    }
}

/// Builds the multifrontal assembly tree of `pattern` (already permuted by
/// the chosen fill-reducing ordering).
///
/// Node weights are contribution-block sizes; the (virtual, weight-1) root is
/// added only if the pattern is disconnected, so that the result is always a
/// single tree.
pub fn assembly_tree(
    pattern: &SymmetricPattern,
    options: AssemblyOptions,
) -> Result<Tree, TreeError> {
    let n = pattern.order();
    let parent = elimination_tree(pattern);
    let counts = column_counts(pattern, &parent);

    // Contribution block of column j: the cc[j] − 1 off-diagonal rows of its
    // front remain after eliminating the pivot.
    let weight_of = |j: usize| -> u64 {
        let cb = counts[j].saturating_sub(1);
        let w = if options.square_weights { cb * cb } else { cb };
        w.max(1)
    };

    // Amalgamation: map every column to its representative task.
    let mut representative: Vec<usize> = (0..n).collect();
    if options.amalgamate {
        // A column j is fused into its parent p when it is p's only child and
        // cc[j] = cc[p] + 1 (fundamental supernode criterion).
        let mut n_children = vec![0usize; n];
        for p in parent.iter().flatten() {
            n_children[*p] += 1;
        }
        // Process in reverse topological order (children have smaller index
        // than parents in an elimination tree) so chains collapse fully.
        for j in (0..n).rev() {
            if let Some(p) = parent[j] {
                if n_children[p] == 1 && counts[j] == counts[p] + 1 {
                    representative[j] = p;
                }
            }
        }
        // Path-compress the representative mapping.
        for j in (0..n).rev() {
            let r = representative[j];
            if r != j {
                representative[j] = representative[r];
            }
        }
    }

    // Build the task list: one task per representative column.
    let mut task_of = vec![usize::MAX; n];
    let mut weights = Vec::new();
    let mut reps = Vec::new();
    for j in 0..n {
        if representative[j] == j {
            task_of[j] = weights.len();
            weights.push(weight_of(j));
            reps.push(j);
        }
    }
    // Parent of a task: the task of the representative of the parent column
    // of its representative column.
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(weights.len());
    for &j in &reps {
        let p = parent[j].map(|p| task_of[representative[p]]);
        parents.push(p);
    }

    // If the elimination structure is a forest, bind the roots under one
    // virtual root task of weight 1.
    let roots: Vec<usize> = parents
        .iter()
        .enumerate()
        .filter_map(|(t, p)| if p.is_none() { Some(t) } else { None })
        .collect();
    if roots.len() > 1 {
        let virtual_root = weights.len();
        weights.push(1);
        parents.push(None);
        for r in roots {
            parents[r] = Some(virtual_root);
        }
    }

    Tree::from_parents(&weights, &parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_laplacian_2d, random_symmetric};
    use crate::ordering::{nested_dissection_2d, reverse_cuthill_mckee};

    #[test]
    fn tridiagonal_assembly_tree_is_a_chain_after_amalgamation_is_disabled() {
        let p = SymmetricPattern::from_edges(6, (0..5).map(|i| (i, i + 1)));
        let t = assembly_tree(
            &p,
            AssemblyOptions {
                amalgamate: false,
                square_weights: true,
            },
        )
        .unwrap();
        assert_eq!(t.len(), 6);
        // Every non-root node has exactly one child except the deepest leaf.
        assert_eq!(t.leaves().len(), 1);
        // Contribution blocks of a tridiagonal matrix are 1×1 ⇒ weight 1.
        assert!(t.node_ids().all(|n| t.weight(n) == 1));
    }

    #[test]
    fn amalgamation_reduces_node_count() {
        let g = grid_laplacian_2d(10, 10, false);
        let q = g.permute(&nested_dissection_2d(10, 10));
        let full = assembly_tree(
            &q,
            AssemblyOptions {
                amalgamate: false,
                square_weights: true,
            },
        )
        .unwrap();
        let amal = assembly_tree(&q, AssemblyOptions::default()).unwrap();
        assert_eq!(full.len(), 100);
        assert!(amal.len() < full.len());
        assert!(
            amal.len() > 10,
            "amalgamation should not collapse everything"
        );
    }

    #[test]
    fn assembly_tree_weights_grow_towards_the_root_on_grids() {
        // With nested dissection the separators eliminated late have the
        // largest fronts, hence the heaviest contribution blocks; the leaves
        // (subdomain interiors) stay light. Note the tree root itself is the
        // *last* pivot: its contribution block is empty by construction.
        let (nx, ny) = (12, 12);
        let g = grid_laplacian_2d(nx, ny, false);
        let q = g.permute(&nested_dissection_2d(nx, ny));
        let t = assembly_tree(&q, AssemblyOptions::default()).unwrap();
        assert_eq!(t.weight(t.root()), 1, "the last pivot has an empty block");
        let max_w = t.node_ids().map(|n| t.weight(n)).max().unwrap();
        let max_leaf_w = t.leaves().iter().map(|&l| t.weight(l)).max().unwrap();
        // The heaviest datum belongs to a top-separator column and dwarfs the
        // leaves.
        assert!(
            max_w >= 100,
            "expected a heavy separator block, got {max_w}"
        );
        assert!(max_w > max_leaf_w);
        let heaviest = t.node_ids().max_by_key(|&n| t.weight(n)).unwrap();
        assert!(!t.is_leaf(heaviest));
        assert!(t.min_feasible_memory() >= max_w);
    }

    #[test]
    fn disconnected_pattern_gets_a_virtual_root() {
        let p = SymmetricPattern::from_edges(4, [(0, 1), (2, 3)]);
        let t = assembly_tree(
            &p,
            AssemblyOptions {
                amalgamate: false,
                square_weights: true,
            },
        )
        .unwrap();
        assert_eq!(t.len(), 5);
        t.validate().unwrap();
    }

    #[test]
    fn random_matrices_give_valid_trees_under_all_orderings() {
        let r = random_symmetric(120, 4.0, 21);
        for perm in [
            crate::ordering::natural(120),
            reverse_cuthill_mckee(&r),
            crate::ordering::minimum_degree(&r),
        ] {
            let q = r.permute(&perm);
            let t = assembly_tree(&q, AssemblyOptions::default()).unwrap();
            t.validate().unwrap();
            assert!(t.len() <= 120);
            assert!(t.len() > 1);
        }
    }
}
