//! Symmetric sparsity patterns.
//!
//! A pattern is the adjacency structure of the undirected graph of a
//! structurally symmetric matrix: for the purposes of symbolic factorization
//! only the positions of the nonzeros matter, not their values.

/// The sparsity pattern of a symmetric matrix of order `n`.
///
/// Only the strictly-lower/upper adjacency is stored, as sorted neighbour
/// lists; the diagonal is implicitly assumed nonzero (as is standard for
/// factorization of SPD-like matrices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetricPattern {
    n: usize,
    adjacency: Vec<Vec<usize>>,
}

impl SymmetricPattern {
    /// Creates an empty pattern (diagonal only) of order `n`.
    pub fn new(n: usize) -> Self {
        SymmetricPattern {
            n,
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Builds a pattern from a list of off-diagonal entries `(i, j)`.
    /// Symmetric counterparts and duplicates are handled automatically;
    /// diagonal entries are ignored.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut p = SymmetricPattern::new(n);
        for (i, j) in edges {
            p.add_edge(i, j);
        }
        p.sort_dedup();
        p
    }

    /// Adds the off-diagonal entry `(i, j)` (and its symmetric counterpart).
    /// Diagonal entries are ignored. Call [`Self::sort_dedup`] once after a
    /// batch of insertions.
    pub fn add_edge(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return;
        }
        self.adjacency[i].push(j);
        self.adjacency[j].push(i);
    }

    /// Sorts the neighbour lists and removes duplicate entries.
    pub fn sort_dedup(&mut self) {
        for list in &mut self.adjacency {
            list.sort_unstable();
            list.dedup();
        }
    }

    /// The order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of off-diagonal nonzeros (counting both triangles).
    pub fn nnz_off_diagonal(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Neighbours of `i` (row/column pattern without the diagonal), sorted.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Degree of vertex `i` (number of off-diagonal nonzeros in its row).
    pub fn degree(&self, i: usize) -> usize {
        self.adjacency[i].len()
    }

    /// Applies a permutation: vertex `i` of the new pattern is vertex
    /// `perm[i]` of the old one (`perm` is the new-to-old ordering, as
    /// returned by the ordering heuristics).
    pub fn permute(&self, perm: &[usize]) -> SymmetricPattern {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut inverse = vec![usize::MAX; self.n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                inverse[old] == usize::MAX,
                "permutation contains a duplicate"
            );
            inverse[old] = new;
        }
        let mut out = SymmetricPattern::new(self.n);
        for (new, &old) in perm.iter().enumerate() {
            for &nb in self.neighbors(old) {
                let nb_new = inverse[nb];
                if nb_new > new {
                    out.adjacency[new].push(nb_new);
                    out.adjacency[nb_new].push(new);
                }
            }
        }
        out.sort_dedup();
        out
    }

    /// `true` if the underlying graph is connected (useful for sanity checks:
    /// disconnected matrices give forests rather than trees).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &nb in self.neighbors(v) {
                if !seen[nb] {
                    seen[nb] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrizes_and_dedups() {
        let p = SymmetricPattern::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 2), (3, 1)]);
        assert_eq!(p.order(), 4);
        assert_eq!(p.neighbors(1), &[0, 2, 3]);
        assert_eq!(p.neighbors(2), &[1]);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.nnz_off_diagonal(), 6);
    }

    #[test]
    fn permutation_relabels_edges() {
        let p = SymmetricPattern::from_edges(3, [(0, 1), (1, 2)]);
        // New order: [2, 1, 0] — new vertex 0 is old 2.
        let q = p.permute(&[2, 1, 0]);
        assert_eq!(q.neighbors(0), &[1]);
        assert_eq!(q.neighbors(1), &[0, 2]);
        assert_eq!(q.neighbors(2), &[1]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn invalid_permutation_is_rejected() {
        let p = SymmetricPattern::from_edges(3, [(0, 1)]);
        p.permute(&[0, 0, 1]);
    }

    #[test]
    fn connectivity() {
        let connected = SymmetricPattern::from_edges(3, [(0, 1), (1, 2)]);
        assert!(connected.is_connected());
        let disconnected = SymmetricPattern::from_edges(3, [(0, 1)]);
        assert!(!disconnected.is_connected());
    }
}
