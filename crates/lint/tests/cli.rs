//! End-to-end tests: drive the `oocts-lint` binary against a fixture
//! workspace seeded with one violation per rule, and run the library
//! entry point against the real workspace, which must be clean.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oocts-lint"))
}

fn fixture_root() -> String {
    format!(
        "{}/tests/fixtures/bad_workspace",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn bad_workspace_fails_with_one_diagnostic_per_rule() {
    let out = bin()
        .args(["--root", &fixture_root()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    for needle in [
        "L001 crates/core/src/lib.rs:6:",
        "L002 crates/bench/Cargo.toml:12:",
        "L002 crates/bench/Cargo.toml:15:",
        "L002 crates/core/Cargo.toml:7:",
        "L003 crates/core/src/lib.rs:11:",
        "L004 crates/core/src/lib.rs:18:",
        "L005 crates/core/src/lib.rs:1:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    // L001/L003/L004 once each, L002 three times (core's registry version,
    // bench's registry version and git dev-dependency), L005 twice (both
    // preamble attributes missing).
    assert!(stdout.contains("oocts-lint: 8 violations"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let out = bin()
        .args(["--root", &fixture_root(), "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(stdout.starts_with("{\"count\":8,"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"L004\""), "{stdout}");
    assert!(
        stdout.contains("\"file\":\"crates/core/src/lib.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\":18"), "{stdout}");
}

#[test]
fn rules_filter_limits_the_scan() {
    let out = bin()
        .args(["--root", &fixture_root(), "--rules", "l002"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(stdout.contains("L002"), "{stdout}");
    assert!(!stdout.contains("L001"), "{stdout}");
    // The fixture's three offline-dependency edges, and nothing else.
    assert!(stdout.contains("oocts-lint: 3 violations\n"), "{stdout}");
    assert!(stdout.contains("crates/bench/Cargo.toml"), "{stdout}");
}

#[test]
fn list_prints_the_rule_set_and_exits_zero() {
    let out = bin().arg("--list").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    for rule in oocts_lint::ALL_RULES {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn unknown_arguments_are_a_usage_error() {
    let out = bin().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8 output");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let diagnostics = oocts_lint::run_lint(root, &[]).expect("workspace scans");
    assert!(
        diagnostics.is_empty(),
        "the workspace must stay lint-clean:\n{}",
        oocts_lint::diagnostics::render_human(&diagnostics)
    );
}
