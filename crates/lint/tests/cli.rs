//! End-to-end tests: drive the `oocts-lint` binary against a fixture
//! workspace seeded with one violation per rule, and run the library
//! entry point against the real workspace, which must be clean.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oocts-lint"))
}

fn fixture_root() -> String {
    format!(
        "{}/tests/fixtures/bad_workspace",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn bad_workspace_fails_with_one_diagnostic_per_rule() {
    let out = bin()
        .args(["--root", &fixture_root()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    for needle in [
        "L001 crates/core/src/callees.rs:15:",
        "L001 crates/core/src/lib.rs:6:",
        "L002 crates/bench/Cargo.toml:12:",
        "L002 crates/bench/Cargo.toml:15:",
        "L002 crates/bench/Cargo.toml:18:",
        "L002 crates/core/Cargo.toml:7:",
        "L003 crates/core/src/lib.rs:11:",
        "L004 crates/core/src/lib.rs:18:",
        "L005 crates/core/src/lib.rs:1:",
        "L006 crates/core/src/lib.rs:35:",
        "L007 crates/core/src/lib.rs:39:",
        "L008 crates/core/src/lib.rs:44:",
        "L009 crates/core/src/lib.rs:57:",
        "L009 crates/core/src/lib.rs:58:",
        "W000 crates/core/src/lib.rs:35:",
        "W000 crates/core/src/lib.rs:63:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    // L001 twice (the unwrap and the fixture callee's panic!), L002 four
    // times (core's registry version; bench's registry version, git
    // dev-dependency and crates.io crossbeam-deque), L005 twice (both
    // preamble attributes missing), L009 twice (cast + counter), W000 twice
    // (superseded L003 waiver + the allow(no_alloc) misspelling);
    // L003/L004/L006/L007/L008 once each.
    assert!(stdout.contains("oocts-lint: 17 violations"), "{stdout}");
}

#[test]
fn transitive_rules_report_exact_sites_and_paths() {
    let out = bin()
        .args(["--root", &fixture_root()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    // L006 anchors at the offending call site and names the allocation sink.
    let l006 = stdout
        .lines()
        .find(|l| l.starts_with("L006"))
        .expect("one L006 finding");
    assert!(l006.contains("crates/core/src/lib.rs:35"), "{l006}");
    assert!(l006.contains("Vec::new"), "{l006}");
    assert!(l006.contains("crates/core/src/callees.rs:7"), "{l006}");
    assert!(
        l006.contains("oocts-core::hot_indirect -> oocts-core::expand_scratch"),
        "full call path: {l006}"
    );
    // L007 anchors at the definition and reports the full panic path.
    let l007 = stdout
        .lines()
        .find(|l| l.starts_with("L007"))
        .expect("one L007 finding");
    assert!(l007.contains("crates/core/src/lib.rs:39"), "{l007}");
    assert!(
        l007.contains("oocts-core::entry -> oocts-core::deep_min"),
        "full call path: {l007}"
    );
    assert!(l007.contains("crates/core/src/callees.rs:15"), "{l007}");
    // L008 names the cycle.
    let l008 = stdout
        .lines()
        .find(|l| l.starts_with("L008"))
        .expect("one L008 finding");
    assert!(
        l008.contains("oocts-core::spin -> oocts-core::spin"),
        "{l008}"
    );
    // L009 suggests the guarded variants.
    assert!(stdout.contains("checked_add"), "{stdout}");
    assert!(stdout.contains("u32::try_from"), "{stdout}");
    // The W000 supersession note points from the stale L003 waiver to L006.
    assert!(stdout.contains("superseded"), "{stdout}");
    assert!(
        stdout.contains("names the annotation, not a rule"),
        "{stdout}"
    );
}

#[test]
fn json_output_is_machine_readable_and_versioned() {
    let out = bin()
        .args(["--root", &fixture_root(), "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(
        stdout.starts_with("{\"schema\":\"oocts-lint/v1\",\"count\":17,"),
        "{stdout}"
    );
    assert!(stdout.contains("\"rule\":\"L004\""), "{stdout}");
    assert!(stdout.contains("\"rule\":\"L008\""), "{stdout}");
    assert!(
        stdout.contains("\"file\":\"crates/core/src/lib.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\":18"), "{stdout}");
}

#[test]
fn rules_filter_limits_the_scan() {
    let out = bin()
        .args(["--root", &fixture_root(), "--rules", "l002"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(stdout.contains("L002"), "{stdout}");
    assert!(!stdout.contains("L001"), "{stdout}");
    // A subset run skips the waiver audit too: W000 notes only appear when
    // everything runs (or W000 is named explicitly).
    assert!(!stdout.contains("W000"), "{stdout}");
    // The fixture's four offline-dependency edges, and nothing else.
    assert!(stdout.contains("oocts-lint: 4 violations\n"), "{stdout}");
    assert!(stdout.contains("crates/bench/Cargo.toml"), "{stdout}");
}

#[test]
fn emit_callgraph_prints_dot_and_exits_zero() {
    let out = bin()
        .args(["--root", &fixture_root(), "--emit-callgraph"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "DOT output is not a violation");
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    assert!(stdout.starts_with("digraph callgraph {"), "{stdout}");
    assert!(stdout.trim_end().ends_with('}'), "{stdout}");
    // Nodes carry crate-qualified labels and definition sites; the fixture's
    // strong edges are present.
    assert!(stdout.contains("oocts-core::hot_indirect"), "{stdout}");
    assert!(stdout.contains("crates/core/src/callees.rs:"), "{stdout}");
    assert!(stdout.contains(" -> "), "{stdout}");
}

#[test]
fn verbose_reports_the_callgraph_summary_on_stderr() {
    let out = bin()
        .args(["--root", &fixture_root(), "--verbose"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8(out.stderr).expect("utf8 output");
    assert!(stderr.contains("callgraph:"), "{stderr}");
    assert!(stderr.contains("fns,"), "{stderr}");
    assert!(stderr.contains("edges,"), "{stderr}");
    assert!(stderr.contains("unresolved"), "{stderr}");
}

#[test]
fn list_prints_the_rule_set_and_exits_zero() {
    let out = bin().arg("--list").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    for rule in oocts_lint::ALL_RULES {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn unknown_arguments_are_a_usage_error() {
    let out = bin().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8 output");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    // All rules L001–L009 plus the waiver audit: every surviving hot-path
    // recursion or panic site in the real workspace must carry a reasoned
    // waiver.
    let diagnostics = oocts_lint::run_lint(root, &[]).expect("workspace scans");
    assert!(
        diagnostics.is_empty(),
        "the workspace must stay lint-clean:\n{}",
        oocts_lint::diagnostics::render_human(&diagnostics)
    );
}
