// This fixture workspace deliberately violates every oocts-lint rule; the
// integration tests assert one diagnostic per rule at these exact lines.
// (L005 fires because the forbid/deny preamble is absent from this file.)

pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

// lint: no_alloc
pub fn hot(x: u64) -> Vec<u64> {
    vec![x]
}

pub trait Scheduler {}

pub struct Rogue;

impl Scheduler for Rogue {}

pub struct SchedulerRegistry;

impl SchedulerRegistry {
    pub fn with_builtins() -> Self {
        SchedulerRegistry
    }
}
