// This fixture workspace deliberately violates every oocts-lint rule; the
// integration tests assert one diagnostic per rule at these exact lines.
// (L005 fires because the forbid/deny preamble is absent from this file.)

pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

// lint: no_alloc
pub fn hot(x: u64) -> Vec<u64> {
    vec![x]
}

pub trait Scheduler {}

pub struct Rogue;

impl Scheduler for Rogue {}

pub struct SchedulerRegistry;

impl SchedulerRegistry {
    pub fn with_builtins() -> Self {
        SchedulerRegistry
    }
}

mod callees;

// The L006 case: locally clean, but the callee allocates one frame down.
// The stale allow(L003) on the call line triggers the W000 supersession
// note on top of the L006 finding.
// lint: no_alloc
pub fn hot_indirect(x: u64) -> u64 {
    callees::expand_scratch(x) // lint: allow(L003, no local allocation here)
}

// The L007 case: reaches deep_min's unwaived panic one call away.
pub fn entry(xs: &[u64]) -> u64 {
    callees::deep_min(xs)
}

// The L008 case: self-recursion in a hot-path crate.
pub fn spin(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        spin(n - 1)
    }
}

// The L009 cases: an unguarded counter accumulation and a narrowing cast
// inside a `no_alloc` hot path.
// lint: no_alloc
pub fn hot_arith(amount: u64, total: u64) -> u32 {
    let mut total_io = total;
    total_io += amount;
    total_io as u32
}

// The broken-waiver case: `allow(no_alloc, …)` names the annotation, not a
// rule, and must surface as a W000 note instead of silently doing nothing.
// lint: allow(no_alloc, misguided waiver spelling)
pub fn miswaived() -> u64 {
    7
}
