// Callees for the transitive rules: an allocating helper (clean under L003
// because it is not annotated) and a panicking minimum (its panic! line is
// an L001 finding; callers of it are L007 findings).

/// Allocates a scratch buffer; L006 flags `no_alloc` callers, not this fn.
pub fn expand_scratch(x: u64) -> u64 {
    let mut scratch = Vec::new();
    scratch.push(x);
    scratch[0] + 1
}

/// Panics on empty input: the unwaived site every L007 path ends at.
pub fn deep_min(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        panic!("empty input");
    }
    let mut best = u64::MAX;
    for &x in xs {
        if x < best {
            best = x;
        }
    }
    best
}
