//! Workspace call-graph construction for the transitive rules (L006–L008).
//!
//! The graph is built from the same comment- and string-aware lexer output
//! the line rules use — no full parser. Per library file the builder tracks
//! brace depth to discover `impl`/`trait` blocks and `fn` items (with their
//! body ranges), then extracts call expressions from the body text and
//! resolves them against a nominal index of every workspace function:
//!
//! * **bare calls** `helper(...)` resolve to free functions named `helper`,
//!   same file first, then the calling crate, then its workspace
//!   dependencies;
//! * **qualified calls** `Type::assoc(...)` resolve through the owner-type
//!   index (`Self::` uses the enclosing `impl`); a qualifier that owns no
//!   workspace `impl` (e.g. `Vec`, `String`) is external and produces no
//!   edge;
//! * **method sugar** `self.method(...)` resolves within the enclosing
//!   owner's method set (*strong* edge); `expr.method(...)` resolves
//!   nominally to every workspace method of that name (*dynamic* edges —
//!   the over-approximation of dynamic dispatch), except for a blocklist of
//!   ubiquitous std names (`len`, `push`, `iter`, …) that would connect
//!   everything to everything.
//!
//! Edges never cross the crate-dependency graph backwards: a function can
//! only call into its own crate or a (transitive) workspace dependency.
//! Calls that *look* workspace-bound but match nothing are recorded as
//! unresolved and reported under `--verbose`.
//!
//! On top of the edges, [`CallGraph::build`] runs a reverse-worklist
//! fixpoint for two predicates — "reaches an allocating API" and "reaches a
//! panic site" — which power L006 and L007, and the strong-edge subgraph
//! feeds the L008 cycle detector. `to_dot` renders the whole graph for
//! auditing (`--emit-callgraph`).

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::no_alloc::ALLOCATING;
use crate::rules::no_panics::BANNED;
use crate::workspace::{FileKind, SourceFile, Workspace};

/// Method names so common in std that nominal resolution over them is
/// meaningless noise; method-sugar calls to these never produce edges.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_micros",
    "as_mut",
    "as_nanos",
    "as_ref",
    "as_secs_f64",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "eq_ignore_ascii_case",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "hash",
    "index",
    "insert",
    "into_iter",
    "is_char_boundary",
    "is_dir",
    "is_empty",
    "is_file",
    "is_finite",
    "is_nan",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "next_back",
    "ok",
    "ok_or",
    "ok_or_else",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powi",
    "push",
    "push_str",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "reverse",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splice",
    "split",
    "split_once",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_end_matches",
    "trim_start",
    "trim_start_matches",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "wrapping_add",
    "write",
    "write_all",
    "zip",
];

/// Keywords and binding forms that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// One workspace function discovered by the builder.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function name (last identifier after `fn`).
    pub name: String,
    /// The enclosing `impl`/`trait` owner type, if any (`None` for free
    /// functions, including functions nested in other functions).
    pub owner: Option<String>,
    /// Package name of the defining crate.
    pub crate_name: String,
    /// Path of the defining file, relative to the workspace root.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body range (1-based, inclusive), from the signature line to the
    /// closing brace.
    pub body: (usize, usize),
    /// Line/needle of the first allocating call in the body (L003-waived
    /// lines excluded), if any.
    pub alloc_site: Option<(usize, String)>,
    /// Line/name of the first panicking construct in the body (L001-waived
    /// lines excluded), if any.
    pub panic_site: Option<(usize, String)>,
}

impl FnInfo {
    /// `crate::Owner::name`-style display label.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.crate_name, o, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// How confident the resolver is about an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Bare call, qualified path, `Self::`, or `self.method(…)` — the
    /// target is nominally pinned down. Cycle detection (L008) uses only
    /// these.
    Strong,
    /// Method sugar on an arbitrary receiver — the nominal
    /// over-approximation of dynamic dispatch. Reachability (L006/L007)
    /// follows these too.
    Dynamic,
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Index of the calling function in [`CallGraph::fns`].
    pub caller: usize,
    /// Index of the called function.
    pub callee: usize,
    /// 1-based call-site line (in the caller's file).
    pub line: usize,
    /// Resolution confidence.
    pub kind: EdgeKind,
}

/// A call that looked workspace-bound but matched no known function.
#[derive(Debug, Clone)]
pub struct UnresolvedCall {
    /// File of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: usize,
    /// The call text as written (`Qualifier::name` or `name`).
    pub text: String,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Every discovered library function, in (file, line) order.
    pub fns: Vec<FnInfo>,
    /// Every resolved edge.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per function.
    pub out: Vec<Vec<usize>>,
    /// `true` if the function locally allocates or any callee
    /// (transitively) does.
    pub reaches_alloc: Vec<bool>,
    /// `true` if the function locally panics or any callee (transitively)
    /// does.
    pub reaches_panic: Vec<bool>,
    /// Calls the resolver could not pin to a workspace function.
    pub unresolved: Vec<UnresolvedCall>,
}

/// A block opened by `impl`/`trait`, with the owner type it contributes.
struct OwnerBlock {
    owner: String,
    body: (usize, usize),
}

impl CallGraph {
    /// Builds the call graph over the library code of `ws`.
    pub fn build(ws: &Workspace) -> CallGraph {
        let deps = transitive_deps(ws);
        let mut graph = CallGraph::default();
        let mut fn_files: Vec<usize> = Vec::new();

        // Pass 1: discover functions (and their owners) in every library
        // file outside `#[cfg(test)]` regions.
        for (file_idx, file) in ws.files.iter().enumerate() {
            if file.kind != FileKind::Lib {
                continue;
            }
            let owners = owner_blocks(file);
            for (name, line) in fn_defs(file) {
                if file.in_test_region(line) {
                    continue;
                }
                let Some(body) = fn_body(file, line) else {
                    continue; // declaration without a body (trait method)
                };
                let owner = owners
                    .iter()
                    .filter(|b| b.body.0 <= line && line <= b.body.1)
                    .min_by_key(|b| b.body.1 - b.body.0)
                    .map(|b| b.owner.clone());
                graph.fns.push(FnInfo {
                    name,
                    owner,
                    crate_name: file.crate_name.clone(),
                    file: file.rel_path.clone(),
                    line,
                    body,
                    alloc_site: local_site(file, body, &allocating_pairs(), "L003"),
                    panic_site: local_site(file, body, &BANNED, "L001"),
                });
                fn_files.push(file_idx);
            }
        }
        graph.out = vec![Vec::new(); graph.fns.len()];

        // Nominal indexes.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in graph.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
            if let Some(owner) = &f.owner {
                methods_by_name.entry(&f.name).or_default().push(i);
                by_owner
                    .entry((owner.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i);
            }
        }

        // Pass 2: extract and resolve calls.
        let mut edges: Vec<Edge> = Vec::new();
        for (caller, &file_idx) in fn_files.iter().enumerate() {
            let file = &ws.files[file_idx];
            let caller_crate = graph.fns[caller].crate_name.clone();
            let visible = |i: usize, g: &CallGraph| -> bool {
                let c = &g.fns[i].crate_name;
                c == &caller_crate
                    || deps
                        .get(caller_crate.as_str())
                        .is_some_and(|d| d.contains(c.as_str()))
            };
            let mut seen: BTreeSet<(usize, usize, bool)> = BTreeSet::new();
            for call in calls_in_body(file, &graph.fns[caller]) {
                let (candidates, kind) = match &call.shape {
                    CallShape::Bare(name) => {
                        // Free functions only; same file narrows first.
                        let all: Vec<usize> = by_name
                            .get(name.as_str())
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&i| graph.fns[i].owner.is_none() && visible(i, &graph))
                                    .collect()
                            })
                            .unwrap_or_default();
                        let same_file: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&i| graph.fns[i].file == file.rel_path)
                            .collect();
                        let chosen = if same_file.is_empty() { all } else { same_file };
                        if chosen.is_empty() {
                            graph.unresolved.push(UnresolvedCall {
                                file: file.rel_path.clone(),
                                line: call.line,
                                text: name.clone(),
                            });
                        }
                        (chosen, EdgeKind::Strong)
                    }
                    CallShape::Qualified(qual, name) => {
                        let owner_name = if qual == "Self" {
                            graph.fns[caller].owner.clone()
                        } else {
                            Some(qual.clone())
                        };
                        match owner_name {
                            Some(o) if o.chars().next().is_some_and(|c| c.is_uppercase()) => {
                                let hits: Vec<usize> = by_owner
                                    .get(&(o.as_str(), name.as_str()))
                                    .map(|v| {
                                        v.iter().copied().filter(|&i| visible(i, &graph)).collect()
                                    })
                                    .unwrap_or_default();
                                if hits.is_empty() {
                                    // A type that owns workspace impls but
                                    // not this method is worth flagging; a
                                    // type with no workspace impls at all
                                    // (Vec, String, …) is external.
                                    let known_owner =
                                        by_owner.keys().any(|(ow, _)| *ow == o.as_str());
                                    if known_owner {
                                        graph.unresolved.push(UnresolvedCall {
                                            file: file.rel_path.clone(),
                                            line: call.line,
                                            text: format!("{o}::{name}"),
                                        });
                                    }
                                }
                                (hits, EdgeKind::Strong)
                            }
                            _ => {
                                // Module-qualified free function
                                // (`callees::helper(…)`, `crate::x::f(…)`).
                                let hits: Vec<usize> = by_name
                                    .get(name.as_str())
                                    .map(|v| {
                                        v.iter()
                                            .copied()
                                            .filter(|&i| {
                                                graph.fns[i].owner.is_none() && visible(i, &graph)
                                            })
                                            .collect()
                                    })
                                    .unwrap_or_default();
                                if hits.is_empty() {
                                    graph.unresolved.push(UnresolvedCall {
                                        file: file.rel_path.clone(),
                                        line: call.line,
                                        text: format!("{qual}::{name}"),
                                    });
                                }
                                (hits, EdgeKind::Strong)
                            }
                        }
                    }
                    CallShape::SelfMethod(name) => {
                        let owner = graph.fns[caller].owner.clone();
                        let strong: Vec<usize> = owner
                            .as_deref()
                            .and_then(|o| by_owner.get(&(o, name.as_str())))
                            .map(|v| v.iter().copied().filter(|&i| visible(i, &graph)).collect())
                            .unwrap_or_default();
                        if !strong.is_empty() {
                            (strong, EdgeKind::Strong)
                        } else {
                            // A trait default calling a required method:
                            // fall back to every impl (dynamic dispatch).
                            let dynamic: Vec<usize> = methods_by_name
                                .get(name.as_str())
                                .map(|v| {
                                    v.iter().copied().filter(|&i| visible(i, &graph)).collect()
                                })
                                .unwrap_or_default();
                            if dynamic.is_empty() {
                                graph.unresolved.push(UnresolvedCall {
                                    file: file.rel_path.clone(),
                                    line: call.line,
                                    text: format!("self.{name}"),
                                });
                            }
                            (dynamic, EdgeKind::Dynamic)
                        }
                    }
                    CallShape::Method(name) => {
                        let hits: Vec<usize> = methods_by_name
                            .get(name.as_str())
                            .map(|v| v.iter().copied().filter(|&i| visible(i, &graph)).collect())
                            .unwrap_or_default();
                        // No `unresolved` record here: an unmatched method
                        // name is almost always a std/vendor method.
                        (hits, EdgeKind::Dynamic)
                    }
                };
                for callee in candidates {
                    if seen.insert((callee, call.line, kind == EdgeKind::Strong)) {
                        edges.push(Edge {
                            caller,
                            callee,
                            line: call.line,
                            kind,
                        });
                    }
                }
            }
        }
        for (idx, e) in edges.iter().enumerate() {
            graph.out[e.caller].push(idx);
        }
        graph.edges = edges;

        graph.reaches_alloc = graph.propagate(|f| f.alloc_site.is_some());
        graph.reaches_panic = graph.propagate(|f| f.panic_site.is_some());
        graph
    }

    /// Reverse-worklist fixpoint: `true` for every function whose body
    /// satisfies `local`, plus everything that can reach one along edges.
    fn propagate(&self, local: impl Fn(&FnInfo) -> bool) -> Vec<bool> {
        let mut reaches: Vec<bool> = self.fns.iter().map(local).collect();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for e in &self.edges {
            rev[e.callee].push(e.caller);
        }
        let mut work: Vec<usize> = (0..self.fns.len()).filter(|&i| reaches[i]).collect();
        while let Some(f) = work.pop() {
            for &caller in &rev[f] {
                if !reaches[caller] {
                    reaches[caller] = true;
                    work.push(caller);
                }
            }
        }
        reaches
    }

    /// Shortest call path from `from` to the nearest function for which
    /// `target` holds, following all edges (BFS). Returns the function
    /// indices including both endpoints; `None` if unreachable.
    pub fn path_to(&self, from: usize, target: impl Fn(usize) -> bool) -> Option<Vec<usize>> {
        if target(from) {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        let mut visited = vec![false; self.fns.len()];
        visited[from] = true;
        while let Some(f) = queue.pop_front() {
            for &eidx in &self.out[f] {
                let c = self.edges[eidx].callee;
                if visited[c] {
                    continue;
                }
                visited[c] = true;
                prev[c] = Some(f);
                if target(c) {
                    let mut path = vec![c];
                    let mut cur = c;
                    while let Some(p) = prev[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(c);
            }
        }
        None
    }

    /// Strongly connected components of the **strong**-edge subgraph
    /// restricted to functions for which `scope` holds. Returns only
    /// genuine cycles: components of size ≥ 2, or single functions with a
    /// strong self-loop. Components are ordered by their first (file, line)
    /// member, members likewise.
    pub fn cycles(&self, scope: impl Fn(&FnInfo) -> bool) -> Vec<Vec<usize>> {
        let n = self.fns.len();
        let in_scope: Vec<bool> = self.fns.iter().map(scope).collect();
        let succ = |f: usize| -> Vec<usize> {
            self.out[f]
                .iter()
                .filter_map(|&e| {
                    let edge = &self.edges[e];
                    (edge.kind == EdgeKind::Strong && in_scope[edge.callee]).then_some(edge.callee)
                })
                .collect()
        };
        // Iterative Kosaraju: order by finish time, then collect on the
        // transposed graph.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] || !in_scope[start] {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((f, expanded)) = stack.pop() {
                if expanded {
                    order.push(f);
                    continue;
                }
                if seen[f] {
                    continue;
                }
                seen[f] = true;
                stack.push((f, true));
                for c in succ(f) {
                    if !seen[c] {
                        stack.push((c, false));
                    }
                }
            }
        }
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.kind == EdgeKind::Strong && in_scope[e.caller] && in_scope[e.callee] {
                rev[e.callee].push(e.caller);
            }
        }
        let mut component = vec![usize::MAX; n];
        let mut components: Vec<Vec<usize>> = Vec::new();
        for &start in order.iter().rev() {
            if component[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = Vec::new();
            let mut stack = vec![start];
            component[start] = id;
            while let Some(f) = stack.pop() {
                members.push(f);
                for &p in &rev[f] {
                    if component[p] == usize::MAX {
                        component[p] = id;
                        stack.push(p);
                    }
                }
            }
            components.push(members);
        }
        let mut cycles: Vec<Vec<usize>> = components
            .into_iter()
            .filter(|members| {
                members.len() > 1
                    || members.iter().any(|&f| {
                        self.out[f].iter().any(|&e| {
                            self.edges[e].kind == EdgeKind::Strong && self.edges[e].callee == f
                        })
                    })
            })
            .collect();
        for members in &mut cycles {
            members.sort_by(|&a, &b| {
                (self.fns[a].file.as_str(), self.fns[a].line)
                    .cmp(&(self.fns[b].file.as_str(), self.fns[b].line))
            });
        }
        cycles.sort_by(|a, b| {
            (self.fns[a[0]].file.as_str(), self.fns[a[0]].line)
                .cmp(&(self.fns[b[0]].file.as_str(), self.fns[b[0]].line))
        });
        cycles
    }

    /// The function defined at `file:line`, if any (used to attach
    /// `no_alloc` annotations to graph nodes).
    pub fn fn_at(&self, file: &str, line_range: (usize, usize)) -> Option<usize> {
        (0..self.fns.len()).find(|&i| {
            self.fns[i].file == file
                && self.fns[i].line >= line_range.0
                && self.fns[i].line <= line_range.1
        })
    }

    /// Renders the graph in Graphviz DOT format: solid edges are strong,
    /// dashed edges dynamic; nodes carry `crate::Owner::fn` labels with
    /// their definition site.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph callgraph {\n  rankdir = LR;\n  node [shape = box];\n");
        for (i, f) in self.fns.iter().enumerate() {
            let _ = writeln!(
                out,
                "  f{i} [label=\"{}\\n{}:{}\"];",
                f.label(),
                f.file,
                f.line
            );
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::Strong => "",
                EdgeKind::Dynamic => " [style=dashed]",
            };
            let _ = writeln!(out, "  f{} -> f{}{style};", e.caller, e.callee);
        }
        out.push_str("}\n");
        out
    }
}

/// The allocating needles with display names (needle, shown-name).
fn allocating_pairs() -> Vec<(&'static str, &'static str)> {
    ALLOCATING
        .iter()
        .map(|n| (*n, n.trim_matches(['.', '(', ':'])))
        .collect()
}

/// The first occurrence of any needle in the body, skipping lines waived
/// for `waive_rule` (a site the local rule accepts as infallible or
/// non-allocating must not propagate).
fn local_site(
    file: &SourceFile,
    body: (usize, usize),
    needles: &[(&str, &str)],
    waive_rule: &str,
) -> Option<(usize, String)> {
    for line in body.0..=body.1 {
        if file.waived(waive_rule, line) || file.in_test_region(line) {
            continue;
        }
        let code = &file.lexed.lines[line - 1].code;
        for (needle, name) in needles {
            if code.contains(needle) {
                return Some((line, (*name).to_string()));
            }
        }
    }
    None
}

/// All `impl`/`trait` blocks of a file, with the owner type each
/// contributes (`impl Tree`, `impl Display for Tree` and `trait Scheduler`
/// own `Tree`, `Tree` and `Scheduler` respectively).
fn owner_blocks(file: &SourceFile) -> Vec<OwnerBlock> {
    let mut blocks = Vec::new();
    for (idx, l) in file.lexed.lines.iter().enumerate() {
        let line = idx + 1;
        let code = l.code.trim_start();
        let header = if let Some(rest) = strip_item_keyword(code, "impl") {
            let header = collect_header(file, line);
            Some(owner_of_impl(&header).or_else(|| first_type_ident(rest)))
        } else if strip_item_keyword(code, "trait").is_some()
            || code.starts_with("pub trait ")
            || code.contains(" trait ")
        {
            let header = collect_header(file, line);
            Some(trait_name(&header))
        } else {
            None
        };
        if let Some(Some(owner)) = header {
            if let Some(body) = brace_body(file, line) {
                blocks.push(OwnerBlock { owner, body });
            }
        }
    }
    blocks
}

/// Strips a leading item keyword (with optional `pub`/`pub(crate)`
/// visibility) and returns the remainder, or `None`.
fn strip_item_keyword<'a>(code: &'a str, kw: &str) -> Option<&'a str> {
    let mut rest = code;
    if let Some(r) = rest.strip_prefix("pub") {
        rest = r.trim_start();
        if let Some(r) = rest.strip_prefix('(') {
            rest = r.split_once(')')?.1.trim_start();
        }
    }
    let r = rest.strip_prefix(kw)?;
    if r.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
        return None; // `impl` was a prefix of a longer identifier
    }
    Some(r.trim_start_matches(|c: char| c.is_whitespace()))
}

/// Joins the code of the header lines from `line` to the opening `{`.
fn collect_header(file: &SourceFile, line: usize) -> String {
    let mut header = String::new();
    for l in &file.lexed.lines[line - 1..] {
        header.push_str(&l.code);
        header.push(' ');
        if l.code.contains('{') {
            break;
        }
    }
    header
}

/// The self type of an `impl … for Type` header, generics stripped.
fn owner_of_impl(header: &str) -> Option<String> {
    let pos = header.find(" for ")?;
    first_type_ident(&header[pos + 5..])
}

/// The first type identifier of a (possibly `&`-, path- or generics-
/// decorated) type expression.
fn first_type_ident(s: &str) -> Option<String> {
    let mut rest = s.trim_start();
    // Skip generic parameter lists (`impl<T: Clone> …`).
    while let Some(r) = rest.strip_prefix('<') {
        let mut depth = 1usize;
        let mut consumed = 0usize;
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        consumed = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        if consumed == 0 {
            return None;
        }
        rest = r[consumed..].trim_start();
    }
    let rest = rest.trim_start_matches(['&', ' ']);
    let mut last = None;
    let mut seg = String::new();
    for c in rest.chars() {
        if c.is_alphanumeric() || c == '_' {
            seg.push(c);
        } else if c == ':' && !seg.is_empty() {
            last = Some(std::mem::take(&mut seg));
        } else {
            break;
        }
    }
    if seg.is_empty() {
        return last;
    }
    let _ = last;
    Some(seg)
}

/// The name of a `trait Name …` header.
fn trait_name(header: &str) -> Option<String> {
    let pos = crate::rules::find_word(header, "trait")?;
    let rest = header[pos + 5..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// `(name, line)` of every `fn` item of a file (including nested fns).
fn fn_defs(file: &SourceFile) -> Vec<(String, usize)> {
    let mut defs = Vec::new();
    for (idx, l) in file.lexed.lines.iter().enumerate() {
        let code = &l.code;
        let mut from = 0usize;
        while let Some(pos) = code[from..].find("fn ") {
            let abs = from + pos;
            let bounded = abs == 0
                || !code[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let name: String = code[abs + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if bounded && !name.is_empty() {
                defs.push((name, idx + 1));
            }
            from = abs + 3;
        }
    }
    defs
}

/// The body range of the `fn` starting at `line`, or `None` when the item
/// is a bodyless declaration (a `;` closes the signature before any `{`).
fn fn_body(file: &SourceFile, line: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut sig_depth = 0i64; // parens/brackets/angles of the signature
    let mut opened = false;
    for (off, l) in file.lexed.lines[line - 1..].iter().enumerate() {
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((line, line + off));
                    }
                }
                '(' | '[' if !opened => sig_depth += 1,
                ')' | ']' if !opened => sig_depth -= 1,
                ';' if !opened && sig_depth == 0 => return None,
                _ => {}
            }
        }
    }
    opened.then_some((line, file.lexed.lines.len()))
}

/// Brace-matched body of a non-fn item (impl/trait) starting at `line`.
fn brace_body(file: &SourceFile, line: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut opened = false;
    for (off, l) in file.lexed.lines[line - 1..].iter().enumerate() {
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((line, line + off));
                    }
                }
                _ => {}
            }
        }
    }
    opened.then_some((line, file.lexed.lines.len()))
}

/// The shape of one extracted call expression.
enum CallShape {
    /// `helper(…)`.
    Bare(String),
    /// `Qualifier::name(…)` (last qualifier segment kept).
    Qualified(String, String),
    /// `self.name(…)`.
    SelfMethod(String),
    /// `expr.name(…)`.
    Method(String),
}

struct CallSite {
    shape: CallShape,
    line: usize,
}

/// Extracts the call expressions of a function body, skipping the
/// signature (nothing before the opening `{` is a call) and the bodies of
/// *nested* `fn` items (their calls belong to the nested function).
fn calls_in_body(file: &SourceFile, f: &FnInfo) -> Vec<CallSite> {
    let (start, end) = f.body;
    let mut calls = Vec::new();
    // Column where the body opens on the first line (skip the signature).
    let mut sig_done = false;
    // Line ranges of nested fn items inside this body.
    let nested: Vec<(usize, usize)> = fn_defs(file)
        .into_iter()
        .filter(|&(_, l)| l > start && l <= end)
        .filter_map(|(_, l)| fn_body(file, l))
        .collect();
    for line in start..=end {
        if nested.iter().any(|&(a, b)| a <= line && line <= b) {
            continue;
        }
        let code = &file.lexed.lines[line - 1].code;
        let scan_from = if !sig_done {
            match code.find('{') {
                Some(col) => {
                    sig_done = true;
                    col + 1
                }
                None => continue,
            }
        } else {
            0
        };
        let chars: Vec<char> = code.chars().collect();
        for open in scan_from..chars.len() {
            if chars[open] != '(' {
                continue;
            }
            // Identifier immediately before the paren.
            let mut i = open;
            while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
                i -= 1;
            }
            if i == open {
                continue; // plain grouping paren
            }
            let name: String = chars[i..open].iter().collect();
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            let before = if i >= 1 { chars.get(i - 1) } else { None };
            match before {
                Some('!') => continue, // macro invocation
                Some(':') if i >= 2 && chars[i - 2] == ':' => {
                    // Qualified: collect the segment before `::`.
                    let mut q = i - 2;
                    while q > 0 && (chars[q - 1].is_alphanumeric() || chars[q - 1] == '_') {
                        q -= 1;
                    }
                    let qual: String = chars[q..i - 2].iter().collect();
                    if qual.is_empty() {
                        continue; // turbofish or `<T>::f` — give up
                    }
                    calls.push(CallSite {
                        shape: CallShape::Qualified(qual, name),
                        line,
                    });
                }
                Some('.') => {
                    if STD_METHODS.contains(&name.as_str()) {
                        continue;
                    }
                    // Receiver token before the dot.
                    let mut r = i - 1;
                    while r > 0 && (chars[r - 1].is_alphanumeric() || chars[r - 1] == '_') {
                        r -= 1;
                    }
                    let recv: String = chars[r..i - 1].iter().collect();
                    let shape = if recv == "self" && (r == 0 || chars[r - 1] != '.') {
                        CallShape::SelfMethod(name)
                    } else {
                        CallShape::Method(name)
                    };
                    calls.push(CallSite { shape, line });
                }
                _ => {
                    // Bare call; tuple-struct constructors and enum
                    // variants are uppercase — skip them.
                    if name.chars().next().is_some_and(|c| c.is_lowercase()) {
                        calls.push(CallSite {
                            shape: CallShape::Bare(name),
                            line,
                        });
                    }
                }
            }
        }
    }
    calls
}

/// Member-name → transitive workspace dependency names, from the scanned
/// manifests (a dependency that is not a member — the vendored stubs — is
/// ignored).
fn transitive_deps(ws: &Workspace) -> BTreeMap<&str, BTreeSet<&str>> {
    let member_names: BTreeSet<&str> = ws.members.iter().map(|m| m.name.as_str()).collect();
    let mut direct: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for m in &ws.manifests {
        let entry = direct.entry(m.crate_name.as_str()).or_default();
        for d in &m.deps {
            if member_names.contains(d.name.as_str()) {
                entry.insert(d.name.as_str());
            }
        }
    }
    // Closure by iteration (the member count is tiny).
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            let mut add: BTreeSet<&str> = BTreeSet::new();
            for d in deps.iter() {
                if let Some(dd) = snapshot.get(d) {
                    add.extend(dd.iter().copied());
                }
            }
            let before = deps.len();
            deps.extend(add);
            changed |= deps.len() != before;
        }
    }
    direct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::waiver;
    use crate::workspace::{Dependency, Manifest, Member};
    use std::path::PathBuf;

    fn make_ws(files: Vec<(&str, &str, &str)>, deps: Vec<(&str, Vec<&str>)>) -> Workspace {
        let members: Vec<Member> = files
            .iter()
            .map(|(c, _, _)| Member {
                name: c.to_string(),
                rel_dir: format!("crates/{c}"),
                has_lib: true,
            })
            .collect();
        let manifests = deps
            .into_iter()
            .map(|(c, ds)| Manifest {
                rel_path: format!("crates/{c}/Cargo.toml"),
                crate_name: c.to_string(),
                deps: ds
                    .into_iter()
                    .map(|d| Dependency {
                        name: d.to_string(),
                        line: 1,
                        offline: true,
                        problem: String::new(),
                    })
                    .collect(),
            })
            .collect();
        let files = files
            .into_iter()
            .map(|(crate_name, path, src)| {
                let lexed = lexer::lex(src);
                let waivers = waiver::parse_waivers(&lexed);
                let test_regions = lexed.test_regions();
                SourceFile {
                    rel_path: path.to_string(),
                    crate_name: crate_name.to_string(),
                    kind: FileKind::Lib,
                    lexed,
                    waivers,
                    test_regions,
                }
            })
            .collect();
        Workspace {
            root: PathBuf::new(),
            members,
            manifests,
            files,
        }
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn bare_calls_resolve_same_file_first() {
        let src = "fn a() { b(); }\nfn b() { let v = Vec::new(); v.len(); }";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        assert_eq!(g.fns.len(), 2);
        let (a, b) = (idx(&g, "a"), idx(&g, "b"));
        assert_eq!(g.edges.len(), 1);
        assert_eq!((g.edges[0].caller, g.edges[0].callee), (a, b));
        assert!(g.reaches_alloc[a], "a reaches b's Vec::new");
        assert!(g.fns[b].alloc_site.is_some());
        assert!(!g.reaches_panic[a]);
    }

    #[test]
    fn qualified_and_self_calls_resolve_by_owner() {
        let src = "struct T;\nimpl T {\n  fn outer(&self) { self.inner(); }\n  fn inner(&self) { T::assoc(); }\n  fn assoc() {}\n}";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        let outer = idx(&g, "outer");
        let inner = idx(&g, "inner");
        let assoc = idx(&g, "assoc");
        assert_eq!(g.fns[outer].owner.as_deref(), Some("T"));
        let targets: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.caller, e.callee)).collect();
        assert!(targets.contains(&(outer, inner)));
        assert!(targets.contains(&(inner, assoc)));
        assert!(g.edges.iter().all(|e| e.kind == EdgeKind::Strong));
    }

    #[test]
    fn external_types_produce_no_edges_or_noise() {
        let src = "fn f() -> Vec<u32> { let mut v = Vec::with_capacity(4); v.push(1); v }";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        assert!(g.edges.is_empty());
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn method_sugar_is_dynamic_and_crosses_crates_along_deps() {
        let tree = "pub struct Tree;\nimpl Tree {\n  pub fn expand_all(&self) { let v = vec![1]; drop(v); }\n}";
        let core = "pub fn drive(t: &Tree) { t.expand_all(); }";
        let g = CallGraph::build(&make_ws(
            vec![
                ("oocts-tree", "crates/tree/src/lib.rs", tree),
                ("oocts-core", "crates/core/src/lib.rs", core),
            ],
            vec![("oocts-core", vec!["oocts-tree"])],
        ));
        let drive = idx(&g, "drive");
        assert_eq!(g.out[drive].len(), 1);
        assert_eq!(g.edges[g.out[drive][0]].kind, EdgeKind::Dynamic);
        assert!(g.reaches_alloc[drive]);
    }

    #[test]
    fn dependency_direction_gates_resolution() {
        // tree does not depend on core, so a same-named method in core is
        // not a candidate for a call made in tree.
        let tree = "pub fn caller() { helper(); }";
        let core = "pub fn helper() { panic!(\"boom\"); }";
        let g = CallGraph::build(&make_ws(
            vec![
                ("oocts-tree", "crates/tree/src/lib.rs", tree),
                ("oocts-core", "crates/core/src/lib.rs", core),
            ],
            vec![("oocts-core", vec!["oocts-tree"])],
        ));
        let caller = idx(&g, "caller");
        assert!(g.out[caller].is_empty());
        assert!(!g.reaches_panic[caller]);
        assert_eq!(g.unresolved.len(), 1);
        assert_eq!(g.unresolved[0].text, "helper");
    }

    #[test]
    fn recursion_shows_up_as_a_strong_cycle() {
        let src = "pub fn spin(n: u64) -> u64 { if n == 0 { 0 } else { spin(n - 1) } }\npub fn ping() { pong(); }\npub fn pong() { ping(); }\npub fn line() { spin(3); }";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        let cycles = g.cycles(|_| true);
        assert_eq!(cycles.len(), 2, "{cycles:?}");
        assert_eq!(cycles[0], vec![idx(&g, "spin")]);
        assert_eq!(cycles[1].len(), 2);
    }

    #[test]
    fn waived_local_sites_do_not_propagate() {
        let src = "fn a() { b(); }\nfn b() {\n    x.expect(\"fine\"); // lint: allow(L001, checked by caller)\n}";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        assert!(!g.reaches_panic[idx(&g, "a")]);
        assert!(g.fns[idx(&g, "b")].panic_site.is_none());
    }

    #[test]
    fn trait_defaults_fall_back_to_dynamic_impl_edges() {
        let src = "trait S {\n  fn go(&self);\n  fn run(&self) { self.go(); }\n}\nstruct A;\nimpl S for A {\n  fn go(&self) { panic!(\"a\"); }\n}";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        let run = idx(&g, "run");
        assert_eq!(g.out[run].len(), 1);
        assert_eq!(g.edges[g.out[run][0]].kind, EdgeKind::Dynamic);
        assert!(g.reaches_panic[run]);
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_fn() {
        let src = "pub fn outer(n: usize) {\n    fn recurse(k: usize) { if k > 0 { recurse(k - 1); } }\n    recurse(n);\n}";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        let outer = idx(&g, "outer");
        let recurse = idx(&g, "recurse");
        let pairs: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.caller, e.callee)).collect();
        assert!(pairs.contains(&(outer, recurse)));
        assert!(pairs.contains(&(recurse, recurse)));
        assert!(!pairs.contains(&(outer, outer)));
    }

    #[test]
    fn path_reconstruction_reaches_the_alloc_site() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { let s = String::new(); drop(s); }";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        let path = g
            .path_to(idx(&g, "a"), |f| g.fns[f].alloc_site.is_some())
            .expect("path exists");
        let names: Vec<&str> = path.iter().map(|&f| g.fns[f].name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn dot_output_lists_nodes_and_edge_styles() {
        let src = "fn a() { b(); }\nfn b() {}";
        let g = CallGraph::build(&make_ws(vec![("x", "crates/x/src/lib.rs", src)], vec![]));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph callgraph"));
        assert!(dot.contains("x::a"));
        assert!(dot.contains("->"));
    }
}
