//! The `oocts-lint` binary: scan the workspace, print diagnostics, exit
//! nonzero on violations.
//!
//! ```text
//! oocts-lint [--root PATH] [--json] [--rules L001,L004] [--list]
//!            [--verbose] [--emit-callgraph]
//! ```
//!
//! Exit codes: 0 — clean, 1 — violations found, 2 — usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use oocts_lint::callgraph::CallGraph;
use oocts_lint::diagnostics::{render_human, render_json};
use oocts_lint::workspace::Workspace;
use oocts_lint::{analyze, rules};

const USAGE: &str = "usage: oocts-lint [--root PATH] [--json] [--rules L001,L002,...] [--list]
                  [--verbose] [--emit-callgraph]

  --root PATH       workspace root (default: nearest ancestor with a workspace manifest)
  --json            machine-readable output (schema oocts-lint/v1)
  --rules LIST      comma-separated subset of rules to run
  --list            print the rule set and exit
  --verbose         print a call-graph summary and unresolved calls on stderr
  --emit-callgraph  print the workspace call graph as Graphviz DOT and exit
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut verbose = false;
    let mut emit_callgraph = false;
    let mut only: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => json = true,
            "--verbose" => verbose = true,
            "--emit-callgraph" => emit_callgraph = true,
            "--rules" => match args.next() {
                Some(list) => {
                    only.extend(list.split(',').map(|r| r.trim().to_uppercase()));
                }
                None => return usage_error("--rules needs a comma-separated list"),
            },
            "--list" => {
                for rule in rules::all_rules() {
                    println!("{}  {}", rule.id(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("oocts-lint: no workspace manifest found above the current directory");
            return ExitCode::from(2);
        }
    };

    if emit_callgraph {
        return match Workspace::load(&root) {
            Ok(ws) => {
                let graph = CallGraph::build(&ws);
                if verbose {
                    graph_summary(&graph);
                }
                print!("{}", graph.to_dot());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("oocts-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match analyze(&root, &only) {
        Ok(report) => {
            if verbose {
                graph_summary(&report.graph);
            }
            if json {
                println!("{}", render_json(&report.diagnostics));
            } else {
                print!("{}", render_human(&report.diagnostics));
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("oocts-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The `--verbose` stderr report: graph size plus every call the nominal
/// resolver could not pin to a workspace function.
fn graph_summary(graph: &CallGraph) {
    eprintln!(
        "callgraph: {} fns, {} edges, {} unresolved",
        graph.fns.len(),
        graph.edges.len(),
        graph.unresolved.len()
    );
    for u in &graph.unresolved {
        eprintln!("  unresolved {}:{}: {}", u.file, u.line, u.text);
    }
}

/// The nearest ancestor of the current directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(toml) = std::fs::read_to_string(&manifest) {
                if toml.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("oocts-lint: {message}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
