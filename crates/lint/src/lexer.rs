//! A small comment- and string-aware scanner for Rust sources.
//!
//! The linter does not need a full parser: every rule works on *code text*
//! with comments and literal contents blanked out, plus the extracted comment
//! text (where waivers and `no_alloc` annotations live). The scanner handles
//! line comments (`//`, `///`, `//!`), nested block comments (`/* … */`),
//! string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any number of
//! `#`), byte strings, and char literals (distinguished from lifetimes).

/// One scanned source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// The line with comments and the *contents* of string/char literals
    /// replaced by spaces (the delimiting quotes are kept, so code structure
    /// like `f("x")` stays recognisable as a call).
    pub code: String,
    /// The concatenated comment text of the line (without the `//`, `/*`,
    /// `*/` markers), if any.
    pub comment: Option<String>,
}

/// A scanned file: per-line code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The scanned lines, in file order (line `n` is `lines[n - 1]`).
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside `/* … */`; the payload is the nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string with `n` hashes (`r##"…"##`).
    RawStr(u32),
}

impl Lexed {
    /// The ranges of lines (1-based, inclusive) covered by `#[cfg(test)]`
    /// items — test modules and test functions — which most rules exempt.
    pub fn test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let n = self.lines.len();
        let mut i = 0usize;
        while i < n {
            if self.lines[i].code.contains("#[cfg(test)]") {
                // The guarded item starts at the first following line with
                // code (possibly this same line); it ends at the matching
                // close of the first `{` — or at the first `;` if the item
                // has no body (e.g. a guarded `use`).
                let start = i;
                let mut depth = 0i64;
                let mut opened = false;
                let mut j = i;
                'scan: while j < n {
                    for c in self.lines[j].code.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => {
                                depth -= 1;
                                if opened && depth == 0 {
                                    break 'scan;
                                }
                            }
                            ';' if !opened => break 'scan,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                regions.push((start + 1, j.min(n - 1) + 1));
                i = j + 1;
            } else {
                i += 1;
            }
        }
        regions
    }
}

/// `true` if the 1-based `line` falls inside any of the `regions`.
pub fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Scans `source` into per-line code/comment channels.
pub fn lex(source: &str) -> Lexed {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw_line in source.split('\n') {
        let chars: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        // Line comment (incl. doc comments): the rest of the
                        // line is comment text.
                        let text: String = chars[i..].iter().collect();
                        let text = text
                            .trim_start_matches('/')
                            .trim_start_matches('!')
                            .trim_start();
                        comment.push_str(text);
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                    }
                    'r' | 'b' => {
                        // Possible raw (byte) string: r"…", r#"…"#, br"…".
                        if let Some((hashes, len)) = raw_string_open(&chars[i..]) {
                            state = State::RawStr(hashes);
                            code.push('"');
                            for _ in 0..len.saturating_sub(1) {
                                code.push(' ');
                            }
                            i += len;
                            continue;
                        }
                        code.push(c);
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes within a
                        // few chars (`'a'`, `'\n'`, `'\u{1F600}'`).
                        if let Some(len) = char_literal_len(&chars[i..]) {
                            code.push('\'');
                            for _ in 0..len.saturating_sub(2) {
                                code.push(' ');
                            }
                            code.push('\'');
                            i += len;
                            continue;
                        }
                        code.push('\'');
                    }
                    c => code.push(c),
                },
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    code.push(' ');
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars[i..], hashes) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                    code.push(' ');
                }
            }
            i += 1;
        }
        // An unterminated normal string cannot span lines in valid Rust
        // unless the line ends with a continuation backslash; be forgiving
        // and keep the state (multi-line strings are common).
        lines.push(Line {
            code,
            comment: if comment.trim().is_empty() {
                None
            } else {
                Some(comment.trim().to_string())
            },
        });
    }
    Lexed { lines }
}

/// If `chars` starts a raw (byte) string opener, returns
/// `(hash_count, opener_length)`.
fn raw_string_open(chars: &[char]) -> Option<(u32, usize)> {
    let mut i = 0usize;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0u32;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some((hashes, i + 1))
    } else {
        None
    }
}

/// `true` if `chars` (starting at a `"`) closes a raw string with `hashes`
/// trailing `#`s.
fn closes_raw(chars: &[char], hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(k) == Some(&'#'))
}

/// If `chars` (starting at a `'`) is a char literal, returns its length in
/// chars; `None` for lifetimes.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    match chars.get(1) {
        Some('\\') => {
            // Escaped char: the closing quote sits after the backslash AND
            // the escaped character, so the search starts at index 3 —
            // starting at 2 would mistake the escaped quote of `'\''` for
            // the closer and leave a stray `'` in the code channel. The
            // window covers `'\u{10FFFF}'`, the longest escape.
            (3..13.min(chars.len()))
                .find(|&k| chars[k] == '\'')
                .map(|k| k + 1)
        }
        Some(_) if chars.get(2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let lexed = lex("let x = 1; // trailing panic!()\n/// doc unwrap()\nlet y = 2;");
        assert_eq!(lexed.lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lexed.lines[0].comment.as_deref(), Some("trailing panic!()"));
        assert!(!lexed.lines[1].code.contains("unwrap"));
        assert_eq!(lexed.lines[1].comment.as_deref(), Some("doc unwrap()"));
        assert_eq!(lexed.lines[2].code, "let y = 2;");
    }

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let lexed = lex(r#"let s = "panic!()"; s.len();"#);
        assert!(!lexed.lines[0].code.contains("panic"));
        assert!(lexed.lines[0].code.contains("\"        \""));
        assert!(lexed.lines[0].code.contains("s.len();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#"let s = "a\"unwrap()\"b"; t.unwrap();"#);
        let code = &lexed.lines[0].code;
        assert_eq!(code.matches(".unwrap()").count(), 1, "{code:?}");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lexed = lex("let s = r#\"has \"quotes\" and panic!()\"#; x.todo();");
        let code = &lexed.lines[0].code;
        assert!(!code.contains("panic"));
        assert!(code.contains("x.todo();"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lexed = lex("a; /* one /* two */ still */ b;\n/* open\n unwrap() \n*/ c;");
        assert!(lexed.lines[0].code.contains("a;"));
        assert!(lexed.lines[0].code.contains("b;"));
        assert!(!lexed.lines[2].code.contains("unwrap"));
        assert!(lexed.lines[3].code.contains("c;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a char) { let c = '\\''; let d = 'x'; }");
        let code = &lexed.lines[0].code;
        assert!(code.contains("<'a>"));
        assert!(code.contains("&'a char"));
        // Literal contents blanked, quotes kept.
        assert!(!code.contains("'x'"));
    }

    #[test]
    fn deeply_nested_block_comments_track_depth_across_lines() {
        let lexed =
            lex("a; /* 1 /* 2 /* 3 */ 2 */ 1 */ b;\n/* x /* y\n unwrap() */\n still */ done();");
        assert!(lexed.lines[0].code.contains("a;"));
        assert!(lexed.lines[0].code.contains("b;"), "{:?}", lexed.lines[0]);
        assert!(!lexed.lines[0].code.contains('1'), "comment text leaked");
        // Depth 2 at the end of line 2: the `*/` on line 3 only closes one
        // level, so `unwrap()` and `still` are still comment text.
        assert!(!lexed.lines[2].code.contains("unwrap"));
        assert!(!lexed.lines[3].code.contains("still"));
        assert!(lexed.lines[3].code.contains("done();"));
    }

    #[test]
    fn raw_strings_with_interior_hashes_and_quotes() {
        // The `"#` inside the r##-string must not close it: the closer
        // needs two hashes.
        let src = r###"let s = r##"has "# and "quotes" and panic!()"##; x.unwrap();"###;
        let lexed = lex(src);
        let code = &lexed.lines[0].code;
        assert!(!code.contains("panic"), "{code:?}");
        assert!(!code.contains("quotes"), "{code:?}");
        assert_eq!(code.matches(".unwrap()").count(), 1, "{code:?}");
        // Multi-line raw string: the state must persist across lines.
        let lexed = lex("let s = r#\"open\ntodo!()\n\"#; tail();");
        assert!(!lexed.lines[1].code.contains("todo"));
        assert!(lexed.lines[2].code.contains("tail();"));
    }

    #[test]
    fn byte_char_literals_are_literals_not_lifetimes() {
        let src = r"let nl = b'\n'; let q = b'\''; let x = b'x'; let s = b0 < b1;";
        let lexed = lex(src);
        let code = &lexed.lines[0].code;
        // Every literal's content is blanked; the quotes stay balanced.
        assert!(!code.contains("'x'"), "{code:?}");
        assert_eq!(code.matches('\'').count(), 6, "{code:?}");
        // Identifiers that merely end in `b` are untouched.
        assert!(code.contains("b0 < b1"), "{code:?}");
    }

    #[test]
    fn escaped_quote_char_literal_does_not_leak_a_stray_quote() {
        // `'\''` once fooled the scanner into closing at the escaped quote,
        // leaving the real closer behind as a lone `'` in the code channel.
        let lexed = lex(r"let c = '\''; f(c);");
        let code = &lexed.lines[0].code;
        assert_eq!(code.matches('\'').count(), 2, "{code:?}");
        assert!(code.contains("f(c);"), "{code:?}");
    }

    #[test]
    fn lifetime_lists_in_generic_position_are_not_char_literals() {
        let src =
            "fn f<'a, 'b: 'a, const N: usize>(x: &'a [u8; N], y: &'b str) -> &'static str { y }";
        let lexed = lex(src);
        let code = &lexed.lines[0].code;
        assert_eq!(code, src, "lifetimes must pass through untouched");
        // And `'_` in anonymous-lifetime position.
        let lexed = lex("impl fmt::Display for S<'_> { }");
        assert!(lexed.lines[0].code.contains("<'_>"));
    }

    #[test]
    fn test_regions_cover_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn b() {}";
        let lexed = lex(src);
        let regions = lexed.test_regions();
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn test_region_without_body_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}";
        let lexed = lex(src);
        assert_eq!(lexed.test_regions(), vec![(1, 2)]);
    }
}
