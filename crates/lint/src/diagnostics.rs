//! Diagnostics: what a rule reports, and the human/JSON renderings.

use std::fmt;

/// One finding of one rule at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule identifier (`"L001"` … `"L005"`, or `"W000"` for a broken
    /// waiver).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Renders diagnostics for a terminal: one `RULE file:line: message` per
/// line, followed by a summary line.
pub fn render_human(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diagnostics.is_empty() {
        out.push_str("oocts-lint: no violations\n");
    } else {
        out.push_str(&format!(
            "oocts-lint: {} violation{}\n",
            diagnostics.len(),
            if diagnostics.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// The schema identifier stamped into every JSON report, mirroring the
/// bench harness's `oocts-bench/v1`: consumers dispatch on it and reject
/// layouts they do not understand.
pub const JSON_SCHEMA: &str = "oocts-lint/v1";

/// Renders diagnostics as a JSON object `{"schema": "oocts-lint/v1",
/// "count": N, "diagnostics": [{"rule", "file", "line", "message"}, …]}`.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"schema\":{},\"count\":{},\"diagnostics\":[",
        json_string(JSON_SCHEMA),
        diagnostics.len()
    ));
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_string(d.rule),
            json_string(&d.file),
            d.line,
            json_string(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Escapes a string per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_and_json_render() {
        let ds = vec![Diagnostic::new(
            "L001",
            "crates/core/src/x.rs",
            7,
            "bad \"call\"",
        )];
        let human = render_human(&ds);
        assert!(human.contains("L001 crates/core/src/x.rs:7: bad \"call\""));
        assert!(human.contains("1 violation\n"));
        let json = render_json(&ds);
        assert!(json.starts_with("{\"schema\":\"oocts-lint/v1\",\"count\":1,"));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("bad \\\"call\\\""));
    }

    #[test]
    fn empty_report() {
        assert!(render_human(&[]).contains("no violations"));
        assert_eq!(
            render_json(&[]),
            "{\"schema\":\"oocts-lint/v1\",\"count\":0,\"diagnostics\":[]}"
        );
    }

    #[test]
    fn schema_version_is_stamped_and_stable() {
        // The schema string is part of the wire contract (CI uploads the
        // report as an artifact); bump the suffix on layout changes.
        assert_eq!(JSON_SCHEMA, "oocts-lint/v1");
        assert!(render_json(&[]).contains("\"schema\":\"oocts-lint/v1\""));
    }
}
