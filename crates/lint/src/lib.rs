//! # oocts-lint — workspace-specific static analysis
//!
//! The OOCTS workspace has rules that `rustc` and `clippy` cannot express.
//! The line rules scan lexed source directly:
//!
//! * **L001** — no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in
//!   *library* code of the algorithmic crates (`core`, `tree`, `minmem`,
//!   `profile`, `sparse`, `gen`). Tests, binaries, examples and benches are
//!   exempt; provably-infallible sites carry an explicit waiver.
//! * **L002** — offline deps: every dependency of every member manifest must
//!   resolve to a `path` (the `vendor/` stubs or a workspace crate), never to
//!   crates.io or git.
//! * **L003** — functions annotated `// lint: no_alloc` must not call
//!   allocating APIs; this seeds the guardrail for the zero-alloc hot paths.
//! * **L004** — registry completeness: every `impl Scheduler for` type in
//!   library code must be constructed in `SchedulerRegistry::with_builtins`
//!   (or carry a waiver), so no strategy silently falls out of the name-based
//!   lookup used by the figure binaries.
//! * **L005** — crate headers: each member crate's `lib.rs` carries the
//!   agreed preamble (`#![forbid(unsafe_code)]`, `#![deny(missing_docs)]`).
//!
//! The transitive rules walk the [`callgraph::CallGraph`] built once per
//! run from the same lexer output:
//!
//! * **L006** — `no_alloc` functions must not *reach* an allocating API
//!   through any workspace call chain (the transitive closure of L003).
//! * **L007** — library code of the algorithmic crates must not reach an
//!   unwaived panic site; the diagnostic carries the full call path.
//! * **L008** — no recursion cycles in the hot-path crates (`tree`,
//!   `minmem`, `core`); every cycle is waived with a reason or rewritten
//!   iteratively.
//! * **L009** — no narrowing `as` casts or unguarded `+=`/`*=` counter
//!   accumulation inside `no_alloc` hot paths.
//!
//! Violations are waived in place with
//! `// lint: allow(RULE, free-text reason)` — a waiver without a reason, a
//! waiver naming an unknown rule, and an `allow(no_alloc, …)` (which names
//! the annotation instead of a rule) are themselves `W000` diagnostics, as
//! is an `allow(L003)` sitting on a line where the allocation is actually
//! transitive (L006 supersedes the local waiver there). The scanner is
//! comment- and string-aware (a `panic!` inside a doc comment or a string
//! literal never fires) and skips `#[cfg(test)]` regions.
//!
//! The `oocts-lint` binary scans the workspace rooted at `--root` (default:
//! the ancestor of the current directory that holds the workspace manifest),
//! prints human-readable or `--json` diagnostics (schema `oocts-lint/v1`),
//! and exits nonzero when any diagnostic is produced. `--emit-callgraph`
//! dumps the call graph as Graphviz DOT instead of linting; `--verbose`
//! adds a graph summary and the unresolved call list on stderr.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod workspace;

use std::path::Path;

use callgraph::CallGraph;
use diagnostics::Diagnostic;
use workspace::Workspace;

/// The rule identifiers known to the linter, in report order.
pub const ALL_RULES: [&str; 9] = [
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009",
];

/// Everything one lint run produces: the diagnostics plus the call graph
/// they were computed against (for `--verbose` summaries and DOT output).
pub struct LintReport {
    /// All findings, sorted by file, line and rule.
    pub diagnostics: Vec<Diagnostic>,
    /// The workspace call graph.
    pub graph: CallGraph,
}

/// Scans the workspace rooted at `root` with every rule (or the subset named
/// in `only`) and returns the diagnostics together with the call graph.
///
/// `root` must contain the workspace `Cargo.toml`. The waiver audit (W000)
/// runs whenever no subset is given, or when the subset names it.
pub fn analyze(root: &Path, only: &[String]) -> Result<LintReport, String> {
    let ws = Workspace::load(root)?;
    let graph = CallGraph::build(&ws);
    let cx = rules::Context {
        ws: &ws,
        graph: &graph,
    };
    let mut diagnostics = Vec::new();
    for rule in rules::all_rules() {
        if !only.is_empty() && !only.iter().any(|r| r.eq_ignore_ascii_case(rule.id())) {
            continue;
        }
        rule.check(&cx, &mut diagnostics);
    }
    if only.is_empty() || only.iter().any(|r| r.eq_ignore_ascii_case("W000")) {
        let rule_findings = diagnostics.clone();
        audit_waivers(&ws, &rule_findings, &mut diagnostics);
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(LintReport { diagnostics, graph })
}

/// Scans the workspace rooted at `root` and returns just the diagnostics.
pub fn run_lint(root: &Path, only: &[String]) -> Result<Vec<Diagnostic>, String> {
    analyze(root, only).map(|r| r.diagnostics)
}

/// The waiver audit: a broken waiver must not silently disable nothing.
///
/// * a waiver naming an unknown rule is a typo;
/// * a waiver without a reason is unreviewable;
/// * `allow(no_alloc, …)` names the annotation, not a rule;
/// * an `allow(L003, …)` on a line that carries an L006 finding waives the
///   local check while the superseding transitive rule still fires — the
///   waiver needs updating, and saying so beats a bare L006.
fn audit_waivers(ws: &Workspace, found: &[Diagnostic], out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        for w in &file.waivers {
            if !w.is_allow {
                continue; // bare annotations carry no rule name or reason
            }
            if w.rule == "no_alloc" {
                out.push(Diagnostic::new(
                    "W000",
                    file.rel_path.clone(),
                    w.line,
                    "`allow(no_alloc, …)` names the annotation, not a rule; waive \
                     L003 (local allocation) or L006 (transitive) instead"
                        .to_string(),
                ));
                continue;
            }
            if !ALL_RULES.contains(&w.rule.as_str()) {
                out.push(Diagnostic::new(
                    "W000",
                    file.rel_path.clone(),
                    w.line,
                    format!("waiver names unknown rule {:?}", w.rule),
                ));
            }
            if w.reason.trim().is_empty() {
                out.push(Diagnostic::new(
                    "W000",
                    file.rel_path.clone(),
                    w.line,
                    format!("waiver for {} carries no reason", w.rule),
                ));
            }
            if w.rule == "L003"
                && found
                    .iter()
                    .any(|d| d.rule == "L006" && d.file == file.rel_path && d.line == w.target_line)
            {
                out.push(Diagnostic::new(
                    "W000",
                    file.rel_path.clone(),
                    w.line,
                    "this `allow(L003)` is superseded: the allocation on the waived \
                     line is transitive, so L006 still fires; waive \
                     `// lint: allow(L006, reason)` instead"
                        .to_string(),
                ));
            }
        }
    }
}
