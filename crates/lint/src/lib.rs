//! # oocts-lint — workspace-specific static analysis
//!
//! The OOCTS workspace has rules that `rustc` and `clippy` cannot express:
//!
//! * **L001** — no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in
//!   *library* code of the algorithmic crates (`core`, `tree`, `minmem`,
//!   `profile`, `sparse`, `gen`). Tests, binaries, examples and benches are
//!   exempt; provably-infallible sites carry an explicit waiver.
//! * **L002** — offline deps: every dependency of every member manifest must
//!   resolve to a `path` (the `vendor/` stubs or a workspace crate), never to
//!   crates.io or git.
//! * **L003** — functions annotated `// lint: no_alloc` must not call
//!   allocating APIs; this seeds the guardrail for the zero-alloc hot paths.
//! * **L004** — registry completeness: every `impl Scheduler for` type in
//!   library code must be constructed in `SchedulerRegistry::with_builtins`
//!   (or carry a waiver), so no strategy silently falls out of the name-based
//!   lookup used by the figure binaries.
//! * **L005** — crate headers: each member crate's `lib.rs` carries the
//!   agreed preamble (`#![forbid(unsafe_code)]`, `#![deny(missing_docs)]`).
//!
//! Violations are waived in place with
//! `// lint: allow(RULE, free-text reason)` — a waiver without a reason is
//! itself a diagnostic. The scanner is comment- and string-aware (a
//! `panic!` inside a doc comment or a string literal never fires) and skips
//! `#[cfg(test)]` regions.
//!
//! The `oocts-lint` binary scans the workspace rooted at `--root` (default:
//! the ancestor of the current directory that holds the workspace manifest),
//! prints human-readable or `--json` diagnostics, and exits nonzero when any
//! diagnostic is produced.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod workspace;

use std::path::Path;

use diagnostics::Diagnostic;
use workspace::Workspace;

/// The rule identifiers known to the linter, in report order.
pub const ALL_RULES: [&str; 5] = ["L001", "L002", "L003", "L004", "L005"];

/// Scans the workspace rooted at `root` with every rule (or the subset named
/// in `only`) and returns the diagnostics, sorted by file and line.
///
/// `root` must contain the workspace `Cargo.toml`.
pub fn run_lint(root: &Path, only: &[String]) -> Result<Vec<Diagnostic>, String> {
    let ws = Workspace::load(root)?;
    let mut diagnostics = Vec::new();
    for rule in rules::all_rules() {
        if !only.is_empty() && !only.iter().any(|r| r.eq_ignore_ascii_case(rule.id())) {
            continue;
        }
        rule.check(&ws, &mut diagnostics);
    }
    // Waivers that name an unknown rule are reported as diagnostics too:
    // a typo in a waiver must not silently disable nothing.
    for file in &ws.files {
        for w in &file.waivers {
            if w.rule != "no_alloc" && !ALL_RULES.contains(&w.rule.as_str()) {
                diagnostics.push(Diagnostic::new(
                    "W000",
                    file.rel_path.clone(),
                    w.line,
                    format!("waiver names unknown rule {:?}", w.rule),
                ));
            }
            if w.rule != "no_alloc" && w.reason.trim().is_empty() {
                diagnostics.push(Diagnostic::new(
                    "W000",
                    file.rel_path.clone(),
                    w.line,
                    format!("waiver for {} carries no reason", w.rule),
                ));
            }
        }
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diagnostics)
}
