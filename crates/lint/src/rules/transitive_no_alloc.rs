//! L006: `// lint: no_alloc` functions must not *reach* an allocating API.
//!
//! L003 catches allocations written directly inside an annotated function;
//! this rule closes the loophole one call away: an annotated hot path may
//! not call — directly or through any chain of workspace calls — a function
//! that allocates. The check walks the workspace call graph (strong and
//! dynamic edges: a dynamic-dispatch over-approximation is the safe side
//! for a hot-path guarantee) and reports the first offending call site
//! inside the annotated body, with the shortest path to the allocation.
//!
//! Local allocations stay L003's findings; L006 reports only transitive
//! ones, so the two rules never double-report a line. Waive a call site
//! that provably never allocates on the flagged line with
//! `// lint: allow(L006, reason)`.

use std::collections::BTreeSet;

use crate::diagnostics::Diagnostic;

use super::{Context, Rule};

/// How many lines past the annotation target the function signature may
/// span (mirrors L003).
const SIGNATURE_LOOKAHEAD: usize = 8;

/// The L006 rule object.
pub struct TransitiveNoAlloc;

impl Rule for TransitiveNoAlloc {
    fn id(&self) -> &'static str {
        "L006"
    }

    fn describe(&self) -> &'static str {
        "`// lint: no_alloc` functions must not reach allocating APIs through any call chain"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let graph = cx.graph;
        for file in &cx.ws.files {
            for annotation in file
                .waivers
                .iter()
                .filter(|w| w.rule == "no_alloc" && !w.is_allow)
            {
                let Some(f) = graph.fn_at(
                    &file.rel_path,
                    (
                        annotation.target_line,
                        annotation.target_line + SIGNATURE_LOOKAHEAD,
                    ),
                ) else {
                    // Dangling annotations are already L003 findings.
                    continue;
                };
                let mut reported: BTreeSet<usize> = BTreeSet::new();
                let mut offending: Vec<usize> = graph.out[f]
                    .iter()
                    .copied()
                    .filter(|&e| graph.reaches_alloc[graph.edges[e].callee])
                    .collect();
                offending.sort_by_key(|&e| graph.edges[e].line);
                for eidx in offending {
                    let edge = &graph.edges[eidx];
                    if !reported.insert(edge.line) || file.waived("L006", edge.line) {
                        continue;
                    }
                    let Some(path) =
                        graph.path_to(edge.callee, |i| graph.fns[i].alloc_site.is_some())
                    else {
                        continue;
                    };
                    let sink = *path.last().expect("path is non-empty");
                    let (site_line, needle) = graph.fns[sink]
                        .alloc_site
                        .clone()
                        .expect("path ends at an alloc site");
                    let mut chain = vec![graph.fns[f].label()];
                    chain.extend(path.iter().map(|&i| graph.fns[i].label()));
                    out.push(Diagnostic::new(
                        "L006",
                        file.rel_path.clone(),
                        edge.line,
                        format!(
                            "`no_alloc` function reaches allocating call `{needle}` \
                             ({}:{site_line}) via {}; make the chain allocation-free or \
                             waive with `// lint: allow(L006, reason)`",
                            graph.fns[sink].file,
                            chain.join(" -> "),
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_with};
    use crate::workspace::FileKind;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(
            &TransitiveNoAlloc,
            &ws_with(FileKind::Lib, "oocts-core", src),
        )
    }

    #[test]
    fn allocation_one_call_deep_fires_at_the_call_site() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u64 {\n    helper(x)\n}\nfn helper(x: u64) -> u64 {\n    let v = vec![x];\n    v[0]\n}";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3, "anchored at the call site");
        assert!(out[0].message.contains("vec!"), "{}", out[0].message);
        assert!(
            out[0].message.contains("hot -> ") && out[0].message.contains("helper"),
            "path in message: {}",
            out[0].message
        );
    }

    #[test]
    fn local_allocations_are_left_to_l003() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> Vec<u64> {\n    vec![x]\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn two_calls_deep_still_fires() {
        let src = "// lint: no_alloc\nfn hot() {\n    a();\n}\nfn a() { b(); }\nfn b() { let s = String::new(); drop(s); }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("String::new"));
    }

    #[test]
    fn clean_chains_pass() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u64 {\n    double(x)\n}\nfn double(x: u64) -> u64 { x * 2 }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn waiver_on_the_call_site_suppresses() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u64 {\n    helper(x) // lint: allow(L006, one-time setup, not per-node)\n}\nfn helper(x: u64) -> u64 { vec![x][0] }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn waived_alloc_site_in_the_callee_does_not_propagate() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u64 {\n    helper(x)\n}\nfn helper(x: u64) -> u64 {\n    let y = x.clone(); // lint: allow(L003, Copy type)\n    y\n}";
        assert!(run(src).is_empty());
    }
}
