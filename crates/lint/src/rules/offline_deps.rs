//! L002: every manifest dependency resolves offline.
//!
//! The build must work with the network unplugged: dependencies may point at
//! the `vendor/` stubs or at workspace crates (via `path` or
//! `workspace = true`), never at crates.io versions or git URLs.

use crate::diagnostics::Diagnostic;

use super::{Context, Rule};

/// The L002 rule object.
pub struct OfflineDeps;

impl Rule for OfflineDeps {
    fn id(&self) -> &'static str {
        "L002"
    }

    fn describe(&self) -> &'static str {
        "every Cargo.toml dependency resolves to a vendor/ or workspace path"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for manifest in &cx.ws.manifests {
            for dep in &manifest.deps {
                if !dep.offline {
                    out.push(Diagnostic::new(
                        "L002",
                        manifest.rel_path.clone(),
                        dep.line,
                        format!(
                            "dependency `{}` does not resolve offline ({}); use a \
                             vendor/ or workspace path",
                            dep.name, dep.problem
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;
    use crate::workspace::{scan_dependencies, Manifest, Workspace};
    use std::path::PathBuf;

    fn ws_with(toml: &str) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            members: Vec::new(),
            manifests: vec![Manifest {
                rel_path: "crates/x/Cargo.toml".to_string(),
                crate_name: "x".to_string(),
                deps: scan_dependencies(toml),
            }],
            files: Vec::new(),
        }
    }

    #[test]
    fn registry_and_git_deps_fire() {
        let toml =
            "[dependencies]\nserde = \"1.0\"\nrand = { git = \"https://example.com/rand\" }\n";
        let out = run_rule(&OfflineDeps, &ws_with(toml));
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("serde"));
        assert_eq!(out[0].line, 2);
        assert!(out[1].message.contains("git"));
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml =
            "[dependencies]\noocts-tree.workspace = true\nserde = { path = \"vendor/serde\" }\n";
        assert!(run_rule(&OfflineDeps, &ws_with(toml)).is_empty());
    }
}
