//! L003: functions annotated `// lint: no_alloc` must not allocate.
//!
//! This seeds the guardrail for the flat-arena refactor (ROADMAP item 2):
//! hot-path functions declared allocation-free stay that way. The check is
//! lexical — it bans calls whose names are allocating APIs — so it
//! over-approximates (a `.clone()` of a `Copy` type fires); waive such
//! sites with `// lint: allow(L003, reason)`.

use crate::diagnostics::Diagnostic;

use super::{body_range, Context, Rule};

/// Allocating constructs, matched against comment- and string-blanked code.
/// Shared with the call-graph builder, which uses the same needles to mark
/// per-function local allocation sites for the transitive L006 rule.
pub(crate) const ALLOCATING: [&str; 14] = [
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "Box::new",
    "String::new",
    "String::from",
    "format!",
    ".push(",
    ".collect(",
    ".collect::",
    ".to_vec(",
    ".to_string(",
    ".to_owned(",
    ".clone(",
];

/// How many lines past the annotation target the function signature may
/// span before its `{` opens.
const SIGNATURE_LOOKAHEAD: usize = 8;

/// The L003 rule object.
pub struct NoAlloc;

impl Rule for NoAlloc {
    fn id(&self) -> &'static str {
        "L003"
    }

    fn describe(&self) -> &'static str {
        "functions annotated `// lint: no_alloc` must not call allocating APIs"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for file in &cx.ws.files {
            for annotation in file
                .waivers
                .iter()
                .filter(|w| w.rule == "no_alloc" && !w.is_allow)
            {
                let Some((start, end)) =
                    body_range(&file.lexed, annotation.target_line, SIGNATURE_LOOKAHEAD)
                else {
                    out.push(Diagnostic::new(
                        "L003",
                        file.rel_path.clone(),
                        annotation.line,
                        "`// lint: no_alloc` does not precede a function body".to_string(),
                    ));
                    continue;
                };
                for line in start..=end {
                    if file.waived("L003", line) {
                        continue;
                    }
                    let code = &file.lexed.lines[line - 1].code;
                    for needle in ALLOCATING {
                        if code.contains(needle) {
                            out.push(Diagnostic::new(
                                "L003",
                                file.rel_path.clone(),
                                line,
                                format!(
                                    "allocating call `{}` inside a `no_alloc` function \
                                     (annotated on line {})",
                                    needle.trim_matches(['.', '(', ':']),
                                    annotation.line
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_with};
    use crate::workspace::FileKind;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&NoAlloc, &ws_with(FileKind::Lib, "oocts-core", src))
    }

    #[test]
    fn allocations_inside_annotated_fn_fire() {
        let src = "// lint: no_alloc\nfn hot(xs: &[u32]) -> Vec<u32> {\n    let mut v = Vec::new();\n    v.push(1);\n    v\n}";
        let out = run(src);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 3);
        assert_eq!(out[1].line, 4);
        assert!(out[0].message.contains("Vec::new"));
    }

    #[test]
    fn unannotated_functions_are_free_to_allocate() {
        let src = "fn cold() -> Vec<u32> { vec![1, 2, 3] }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allocation_after_the_body_does_not_fire() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u64 {\n    x + 1\n}\nfn cold() { let v = vec![0]; drop(v); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn waived_line_inside_no_alloc_body_passes() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u64 {\n    let y = x.clone(); // lint: allow(L003, Copy type)\n    y\n}";
        assert!(run(src).is_empty());
        assert_eq!(
            run(&src.replace(" // lint: allow(L003, Copy type)", "")).len(),
            1
        );
    }

    #[test]
    fn dangling_annotation_is_itself_a_finding() {
        let src = "// lint: no_alloc\nconst X: u64 = 4;";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("does not precede a function body"));
    }
}
