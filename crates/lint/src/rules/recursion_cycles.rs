//! L008: no recursion cycles in the hot-path crates.
//!
//! The schedulers must handle elimination trees that are deep as well as
//! wide; a recursive traversal in `tree`, `minmem` or `core` turns tree
//! depth into stack depth and blows up exactly on the instances the paper
//! cares about. This rule runs strongly-connected-component detection over
//! the *strong* edges of the call graph (dynamic-dispatch
//! over-approximations are excluded — a trait object calling its own trait
//! is not evidence of recursion) restricted to library functions of the
//! hot crates, and reports every non-trivial SCC and every self-loop.
//!
//! A genuinely-bounded recursion (e.g. a brute-force oracle that only runs
//! on tiny instances) is waived at any member function's definition line
//! with `// lint: allow(L008, reason)` — one waiver covers the whole
//! cycle. Everything else should be rewritten iteratively with an explicit
//! stack (ROADMAP item 2).

use crate::diagnostics::Diagnostic;

use super::{Context, Rule};

/// The crates whose library code must stay recursion-free.
pub const HOT_CRATES: [&str; 3] = ["oocts-tree", "oocts-minmem", "oocts-core"];

/// How many lines of attributes may sit between a standalone waiver and
/// the `fn` it governs.
const ATTRIBUTE_WINDOW: usize = 8;

/// The L008 rule object.
pub struct RecursionCycles;

impl Rule for RecursionCycles {
    fn id(&self) -> &'static str {
        "L008"
    }

    fn describe(&self) -> &'static str {
        "no recursion cycles in hot-path crates (tree, minmem, core); waive or rewrite iteratively"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let graph = cx.graph;
        for cycle in graph.cycles(|f| HOT_CRATES.contains(&f.crate_name.as_str())) {
            let waived = cycle.iter().any(|&f| {
                let info = &graph.fns[f];
                cx.ws
                    .files
                    .iter()
                    .find(|sf| sf.rel_path == info.file)
                    .is_some_and(|sf| sf.waived_within("L008", info.line, ATTRIBUTE_WINDOW))
            });
            if waived {
                continue;
            }
            let anchor = &graph.fns[cycle[0]];
            let mut chain: Vec<String> = cycle.iter().map(|&f| graph.fns[f].label()).collect();
            chain.push(anchor.label()); // close the loop in the display
            out.push(Diagnostic::new(
                "L008",
                anchor.file.clone(),
                anchor.line,
                format!(
                    "recursion cycle in hot-path code: {}; rewrite iteratively with an \
                     explicit stack or waive with `// lint: allow(L008, reason)`",
                    chain.join(" -> "),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_with};
    use crate::workspace::FileKind;

    fn run_in(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        run_rule(&RecursionCycles, &ws_with(FileKind::Lib, crate_name, src))
    }

    #[test]
    fn self_recursion_fires_once_at_the_definition() {
        let src = "pub fn walk(n: u64) -> u64 {\n    if n == 0 { 0 } else { walk(n - 1) }\n}";
        let out = run_in("oocts-tree", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
        assert!(
            out[0].message.contains("walk -> oocts-tree::walk"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn mutual_recursion_is_one_cycle() {
        let src = "fn ping(n: u64) { if n > 0 { pong(n - 1); } }\nfn pong(n: u64) { ping(n); }";
        let out = run_in("oocts-minmem", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("ping") && out[0].message.contains("pong"));
    }

    #[test]
    fn iterative_code_and_cold_crates_pass() {
        let src = "pub fn walk(n: u64) -> u64 {\n    let mut acc = 0;\n    for i in 0..n { acc += i; }\n    acc\n}";
        assert!(run_in("oocts-core", src).is_empty());
        let recursive = "pub fn walk(n: u64) -> u64 { if n == 0 { 0 } else { walk(n - 1) } }";
        assert!(run_in("oocts-sparse", recursive).is_empty());
    }

    #[test]
    fn one_waiver_covers_the_whole_cycle() {
        let src = "// lint: allow(L008, depth bounded by brute-force instance cap)\nfn ping(n: u64) { if n > 0 { pong(n - 1); } }\nfn pong(n: u64) { ping(n); }";
        assert!(run_in("oocts-core", src).is_empty());
    }
}
