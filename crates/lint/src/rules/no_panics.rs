//! L001: no panicking APIs in library code of the algorithmic crates.
//!
//! Library code must surface failures as `Result` through the
//! `tree::error` types; panics are for tests, binaries and examples.
//! Provably-infallible sites carry `// lint: allow(L001, reason)`.

use crate::diagnostics::Diagnostic;
use crate::workspace::FileKind;

use super::{Context, Rule};

/// The crates whose library code the rule covers. `oocts-bench` is a CLI
/// harness and the umbrella crate only re-exports; neither is algorithmic.
pub const COVERED_CRATES: [&str; 6] = [
    "oocts-core",
    "oocts-tree",
    "oocts-minmem",
    "oocts-profile",
    "oocts-sparse",
    "oocts-gen",
];

/// The banned constructs, as (needle, display-name) pairs, matched against
/// comment- and string-blanked code text. `.unwrap()` requires the closing
/// paren so `unwrap_or*` adapters do not fire; `.expect(` requires the open
/// paren so `expect_err` does not fire.
/// Shared with the call-graph builder, which uses the same needles to mark
/// per-function local panic sites for the transitive L007 rule.
pub(crate) const BANNED: [(&str, &str); 5] = [
    (".unwrap()", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
    ("todo!(", "todo!"),
    ("unimplemented!(", "unimplemented!"),
];

/// The L001 rule object.
pub struct NoPanics;

impl Rule for NoPanics {
    fn id(&self) -> &'static str {
        "L001"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo! in library code of the algorithmic crates"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for file in &cx.ws.files {
            if file.kind != FileKind::Lib || !COVERED_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            for (idx, l) in file.lexed.lines.iter().enumerate() {
                let line = idx + 1;
                if file.in_test_region(line) || file.waived("L001", line) {
                    continue;
                }
                for (needle, name) in BANNED {
                    if l.code.contains(needle) {
                        out.push(Diagnostic::new(
                            "L001",
                            file.rel_path.clone(),
                            line,
                            format!(
                                "{name} in library code; return a Result or waive with \
                                 `// lint: allow(L001, reason)`"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_with};
    use crate::workspace::Workspace;

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        run_rule(&NoPanics, ws)
    }

    #[test]
    fn flags_each_banned_construct() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"m\"); }\nfn h() { panic!(\"n\"); }\nfn i() { todo!() }\nfn j() { unimplemented!() }";
        let out = run(&ws_with(FileKind::Lib, "oocts-core", src));
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].line, 1);
        assert!(out[1].message.contains("expect"));
    }

    #[test]
    fn adapters_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\nfn g(r: Result<u8, u8>) { let _ = r.expect_err; }";
        assert!(run(&ws_with(FileKind::Lib, "oocts-tree", src)).is_empty());
    }

    #[test]
    fn strings_comments_and_tests_are_exempt() {
        let src = "/// Calling `unwrap()` here would panic!(boom).\nfn f() { let s = \"x.unwrap()\"; }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}";
        assert!(run(&ws_with(FileKind::Lib, "oocts-minmem", src)).is_empty());
    }

    #[test]
    fn waived_lines_are_exempt_but_others_fire() {
        let src = "fn f() { x.expect(\"invariant\"); // lint: allow(L001, checked above)\n    y.unwrap();\n}";
        let out = run(&ws_with(FileKind::Lib, "oocts-profile", src));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn uncovered_crates_and_nonlib_targets_are_exempt() {
        let src = "fn f() { x.unwrap(); }";
        assert!(run(&ws_with(FileKind::Lib, "oocts-bench", src)).is_empty());
        assert!(run(&ws_with(FileKind::Bin, "oocts-core", src)).is_empty());
        assert!(run(&ws_with(FileKind::Test, "oocts-core", src)).is_empty());
        assert!(run(&ws_with(FileKind::Example, "oocts-core", src)).is_empty());
    }
}
