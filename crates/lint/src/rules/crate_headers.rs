//! L005: every member crate's `lib.rs` carries the agreed preamble.
//!
//! The workspace-wide guarantees — no `unsafe`, every public item
//! documented — are enforced per-crate by `#![forbid(unsafe_code)]` and
//! `#![deny(missing_docs)]`; a crate that drops either attribute silently
//! weakens them. A file-level `// lint: allow(L005, reason)` waives the
//! requirement for a crate.

use crate::diagnostics::Diagnostic;

use super::{Context, Rule};

/// The attributes every `lib.rs` must carry.
const REQUIRED: [&str; 2] = ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"];

/// The L005 rule object.
pub struct CrateHeaders;

impl Rule for CrateHeaders {
    fn id(&self) -> &'static str {
        "L005"
    }

    fn describe(&self) -> &'static str {
        "each member lib.rs carries #![forbid(unsafe_code)] and #![deny(missing_docs)]"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let ws = cx.ws;
        for member in &ws.members {
            if !member.has_lib {
                continue;
            }
            let lib_rel = if member.rel_dir == "." {
                "src/lib.rs".to_string()
            } else {
                format!("{}/src/lib.rs", member.rel_dir)
            };
            let Some(file) = ws.files.iter().find(|f| f.rel_path == lib_rel) else {
                continue;
            };
            if file.waivers.iter().any(|w| w.rule == "L005") {
                continue;
            }
            for attr in REQUIRED {
                let present = file
                    .lexed
                    .lines
                    .iter()
                    .any(|l| l.code.replace(' ', "").contains(&attr.replace(' ', "")));
                if !present {
                    out.push(Diagnostic::new(
                        "L005",
                        lib_rel.clone(),
                        1,
                        format!("crate `{}` is missing `{attr}`", member.name),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::rules::testutil::run_rule;
    use crate::waiver;
    use crate::workspace::{FileKind, Member, SourceFile, Workspace};
    use std::path::PathBuf;

    fn ws_with(lib_src: &str) -> Workspace {
        let lexed = lexer::lex(lib_src);
        let waivers = waiver::parse_waivers(&lexed);
        let test_regions = lexed.test_regions();
        Workspace {
            root: PathBuf::new(),
            members: vec![Member {
                name: "oocts-x".to_string(),
                rel_dir: "crates/x".to_string(),
                has_lib: true,
            }],
            manifests: Vec::new(),
            files: vec![SourceFile {
                rel_path: "crates/x/src/lib.rs".to_string(),
                crate_name: "oocts-x".to_string(),
                kind: FileKind::Lib,
                lexed,
                waivers,
                test_regions,
            }],
        }
    }

    fn run(lib_src: &str) -> Vec<Diagnostic> {
        run_rule(&CrateHeaders, &ws_with(lib_src))
    }

    #[test]
    fn full_preamble_passes() {
        assert!(run("//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n").is_empty());
    }

    #[test]
    fn each_missing_attribute_fires() {
        let out = run("//! Docs.\n#![forbid(unsafe_code)]\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing_docs"));
        assert_eq!(run("//! Docs.\n").len(), 2);
    }

    #[test]
    fn warn_is_not_deny() {
        let out = run("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn attribute_in_a_comment_does_not_count() {
        let out = run("// #![forbid(unsafe_code)]\n// #![deny(missing_docs)]\n");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn file_level_waiver_passes() {
        assert!(run("// lint: allow(L005, prototype crate)\nfn f() {}\n").is_empty());
    }
}
