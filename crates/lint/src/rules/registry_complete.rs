//! L004: every `impl Scheduler for` type is reachable by name.
//!
//! The figure binaries select strategies through the name-based
//! [`SchedulerRegistry`](https://docs.rs/) lookup; a scheduler implemented
//! but not constructed in `SchedulerRegistry::with_builtins` silently falls
//! out of every experiment. Strategies that are deliberately unregistered
//! (oracles, fixtures) carry `// lint: allow(L004, reason)` on the `impl`
//! line.

use crate::diagnostics::Diagnostic;
use crate::workspace::{FileKind, Workspace};

use super::{body_range, Rule};

/// How many lines an `fn with_builtins` signature may span before `{`.
const SIGNATURE_LOOKAHEAD: usize = 4;

/// The L004 rule object.
pub struct RegistryComplete;

/// An `impl Scheduler for X` site found in library code.
struct ImplSite {
    type_name: String,
    file: String,
    line: usize,
}

impl Rule for RegistryComplete {
    fn id(&self) -> &'static str {
        "L004"
    }

    fn describe(&self) -> &'static str {
        "every `impl Scheduler for` type is registered in SchedulerRegistry::with_builtins"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let mut impls: Vec<ImplSite> = Vec::new();
        let mut builtins_body = String::new();
        for file in &ws.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            for (idx, l) in file.lexed.lines.iter().enumerate() {
                let line = idx + 1;
                if file.in_test_region(line) {
                    continue;
                }
                if let Some(name) = impl_scheduler_type(&l.code) {
                    if !file.waived("L004", line) {
                        impls.push(ImplSite {
                            type_name: name,
                            file: file.rel_path.clone(),
                            line,
                        });
                    }
                }
                if l.code.contains("fn with_builtins") {
                    if let Some((start, end)) = body_range(&file.lexed, line, SIGNATURE_LOOKAHEAD) {
                        for b in &file.lexed.lines[start - 1..end] {
                            builtins_body.push_str(&b.code);
                            builtins_body.push('\n');
                        }
                    }
                }
            }
        }
        if impls.is_empty() {
            return;
        }
        if builtins_body.is_empty() {
            for site in &impls {
                out.push(Diagnostic::new(
                    "L004",
                    site.file.clone(),
                    site.line,
                    format!(
                        "scheduler `{}` found but no `SchedulerRegistry::with_builtins` \
                         exists to register it",
                        site.type_name
                    ),
                ));
            }
            return;
        }
        for site in &impls {
            if !mentions_type(&builtins_body, &site.type_name) {
                out.push(Diagnostic::new(
                    "L004",
                    site.file.clone(),
                    site.line,
                    format!(
                        "scheduler `{}` is not registered in \
                         SchedulerRegistry::with_builtins; register it or waive with \
                         `// lint: allow(L004, reason)`",
                        site.type_name
                    ),
                ));
            }
        }
    }
}

/// If `code` contains `impl … Scheduler for Type`, returns the bare type
/// name (generics stripped).
fn impl_scheduler_type(code: &str) -> Option<String> {
    let impl_pos = find_word(code, "impl")?;
    let rest = &code[impl_pos..];
    let for_pos = find_word(rest, " for ")?;
    let head = &rest[..for_pos];
    // The trait path must end in `Scheduler` (allow `core::Scheduler` etc.,
    // reject `SomeOtherTrait`).
    let trait_part = head.trim_end();
    if !(trait_part.ends_with("Scheduler")
        || trait_part.ends_with("Scheduler>")
        || trait_part.contains("Scheduler "))
    {
        return None;
    }
    let after = rest[for_pos + 5..].trim_start();
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Word-boundary-ish search: `needle` not preceded/followed by an
/// identifier char (a needle that starts or ends with a non-identifier
/// char carries its own boundary on that side).
fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let self_bounded_start = needle
        .chars()
        .next()
        .is_some_and(|c| !c.is_alphanumeric() && c != '_');
    let self_bounded_end = needle
        .chars()
        .next_back()
        .is_some_and(|c| !c.is_alphanumeric() && c != '_');
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let abs = from + pos;
        let before_ok = self_bounded_start
            || abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = abs + needle.len();
        let after_ok = self_bounded_end
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        from = end;
    }
    None
}

/// `true` if `body` mentions `name` as a whole identifier.
fn mentions_type(body: &str, name: &str) -> bool {
    find_word(body, name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::waiver;
    use crate::workspace::SourceFile;
    use std::path::PathBuf;

    fn file(path: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let waivers = waiver::parse_waivers(&lexed);
        let test_regions = lexed.test_regions();
        SourceFile {
            rel_path: path.to_string(),
            crate_name: "oocts-core".to_string(),
            kind: FileKind::Lib,
            lexed,
            waivers,
            test_regions,
        }
    }

    fn run(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: PathBuf::new(),
            members: Vec::new(),
            manifests: Vec::new(),
            files,
        };
        let mut out = Vec::new();
        RegistryComplete.check(&ws, &mut out);
        out
    }

    const REGISTRY: &str = "impl SchedulerRegistry {\n    pub fn with_builtins() -> Self {\n        let mut r = Self::new();\n        r.register(PostOrderMinIo);\n        r\n    }\n}";

    #[test]
    fn registered_scheduler_passes_unregistered_fires() {
        let impls = "pub struct PostOrderMinIo;\nimpl Scheduler for PostOrderMinIo {}\npub struct Forgotten;\nimpl Scheduler for Forgotten {}";
        let out = run(vec![file("a.rs", impls), file("r.rs", REGISTRY)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Forgotten"));
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn waived_impl_passes() {
        let impls =
            "// lint: allow(L004, test oracle, not a strategy)\nimpl Scheduler for Oracle {}";
        assert!(run(vec![file("a.rs", impls), file("r.rs", REGISTRY)]).is_empty());
    }

    #[test]
    fn generic_impls_and_paths_are_recognised() {
        let impls = "impl<T: Clone> Scheduler for Wrapper {}\nimpl crate::Scheduler for Pathy {}";
        let out = run(vec![file("a.rs", impls), file("r.rs", REGISTRY)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d.message.contains("Wrapper")));
        assert!(out.iter().any(|d| d.message.contains("Pathy")));
    }

    #[test]
    fn other_traits_do_not_fire() {
        let impls = "impl Display for PostOrderMinIo {}\nimpl SchedulerSpec {}";
        assert!(run(vec![file("a.rs", impls), file("r.rs", REGISTRY)]).is_empty());
    }

    #[test]
    fn missing_registry_reports_each_impl() {
        let impls = "impl Scheduler for Lone {}";
        let out = run(vec![file("a.rs", impls)]);
        assert_eq!(out.len(), 1);
        assert!(out[0]
            .message
            .contains("no `SchedulerRegistry::with_builtins`"));
    }
}
