//! L004: every `impl Scheduler for` type is reachable by name.
//!
//! The figure binaries select strategies through the name-based
//! [`SchedulerRegistry`](https://docs.rs/) lookup; a scheduler implemented
//! but not constructed in `SchedulerRegistry::with_builtins` silently falls
//! out of every experiment. Strategies that are deliberately unregistered
//! (oracles, fixtures) carry `// lint: allow(L004, reason)` on the `impl`
//! line.

use crate::diagnostics::Diagnostic;
use crate::workspace::FileKind;

use super::{body_range, find_word, Context, Rule};

/// How many lines an `fn with_builtins` signature may span before `{`.
const SIGNATURE_LOOKAHEAD: usize = 4;

/// The L004 rule object.
pub struct RegistryComplete;

/// An `impl Scheduler for X` site found in library code.
struct ImplSite {
    type_name: String,
    file: String,
    line: usize,
}

impl Rule for RegistryComplete {
    fn id(&self) -> &'static str {
        "L004"
    }

    fn describe(&self) -> &'static str {
        "every `impl Scheduler for` type is registered in SchedulerRegistry::with_builtins"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let mut impls: Vec<ImplSite> = Vec::new();
        let mut builtins_body = String::new();
        for file in &cx.ws.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            for (idx, l) in file.lexed.lines.iter().enumerate() {
                let line = idx + 1;
                if file.in_test_region(line) {
                    continue;
                }
                if let Some(name) = impl_scheduler_type(&l.code) {
                    if !file.waived("L004", line) {
                        impls.push(ImplSite {
                            type_name: name,
                            file: file.rel_path.clone(),
                            line,
                        });
                    }
                }
                if l.code.contains("fn with_builtins") {
                    if let Some((start, end)) = body_range(&file.lexed, line, SIGNATURE_LOOKAHEAD) {
                        for b in &file.lexed.lines[start - 1..end] {
                            builtins_body.push_str(&b.code);
                            builtins_body.push('\n');
                        }
                    }
                }
            }
        }
        if impls.is_empty() {
            return;
        }
        if builtins_body.is_empty() {
            for site in &impls {
                out.push(Diagnostic::new(
                    "L004",
                    site.file.clone(),
                    site.line,
                    format!(
                        "scheduler `{}` found but no `SchedulerRegistry::with_builtins` \
                         exists to register it",
                        site.type_name
                    ),
                ));
            }
            return;
        }
        for site in &impls {
            if !mentions_type(&builtins_body, &site.type_name) {
                out.push(Diagnostic::new(
                    "L004",
                    site.file.clone(),
                    site.line,
                    format!(
                        "scheduler `{}` is not registered in \
                         SchedulerRegistry::with_builtins; register it or waive with \
                         `// lint: allow(L004, reason)`",
                        site.type_name
                    ),
                ));
            }
        }
    }
}

/// If `code` contains `impl … Scheduler for Type`, returns the bare type
/// name (generics stripped).
fn impl_scheduler_type(code: &str) -> Option<String> {
    let impl_pos = find_word(code, "impl")?;
    let rest = &code[impl_pos..];
    let for_pos = find_word(rest, " for ")?;
    let head = &rest[..for_pos];
    // The trait path must end in `Scheduler` (allow `core::Scheduler` etc.,
    // reject `SomeOtherTrait`).
    let trait_part = head.trim_end();
    if !(trait_part.ends_with("Scheduler")
        || trait_part.ends_with("Scheduler>")
        || trait_part.contains("Scheduler "))
    {
        return None;
    }
    let after = rest[for_pos + 5..].trim_start();
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `true` if `body` mentions `name` as a whole identifier.
fn mentions_type(body: &str, name: &str) -> bool {
    find_word(body, name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_from_files};

    fn run(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files = files
            .into_iter()
            .map(|(path, src)| ("oocts-core", FileKind::Lib, path, src))
            .collect();
        run_rule(&RegistryComplete, &ws_from_files(files))
    }

    const REGISTRY: &str = "impl SchedulerRegistry {\n    pub fn with_builtins() -> Self {\n        let mut r = Self::new();\n        r.register(PostOrderMinIo);\n        r\n    }\n}";

    #[test]
    fn registered_scheduler_passes_unregistered_fires() {
        let impls = "pub struct PostOrderMinIo;\nimpl Scheduler for PostOrderMinIo {}\npub struct Forgotten;\nimpl Scheduler for Forgotten {}";
        let out = run(vec![("a.rs", impls), ("r.rs", REGISTRY)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Forgotten"));
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn waived_impl_passes() {
        let impls =
            "// lint: allow(L004, test oracle, not a strategy)\nimpl Scheduler for Oracle {}";
        assert!(run(vec![("a.rs", impls), ("r.rs", REGISTRY)]).is_empty());
    }

    #[test]
    fn generic_impls_and_paths_are_recognised() {
        let impls = "impl<T: Clone> Scheduler for Wrapper {}\nimpl crate::Scheduler for Pathy {}";
        let out = run(vec![("a.rs", impls), ("r.rs", REGISTRY)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d.message.contains("Wrapper")));
        assert!(out.iter().any(|d| d.message.contains("Pathy")));
    }

    #[test]
    fn other_traits_do_not_fire() {
        let impls = "impl Display for PostOrderMinIo {}\nimpl SchedulerSpec {}";
        assert!(run(vec![("a.rs", impls), ("r.rs", REGISTRY)]).is_empty());
    }

    #[test]
    fn missing_registry_reports_each_impl() {
        let impls = "impl Scheduler for Lone {}";
        let out = run(vec![("a.rs", impls)]);
        assert_eq!(out.len(), 1);
        assert!(out[0]
            .message
            .contains("no `SchedulerRegistry::with_builtins`"));
    }
}
