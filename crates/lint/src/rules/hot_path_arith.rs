//! L009: no unchecked narrowing or unguarded counter accumulation in
//! `// lint: no_alloc` hot paths.
//!
//! The hot paths the `no_alloc` annotation marks are exactly the ones that
//! process million-node trees, where I/O-volume and memory counters grow
//! far past `u32` and a silent `as` truncation or a wrapping `+=` corrupts
//! the schedule cost instead of failing. Inside annotated bodies this rule
//! flags:
//!
//! * narrowing casts (`as u8|u16|u32|i8|i16|i32`) — use `try_from` or keep
//!   the wide type;
//! * `+=`/`*=` on identifiers that look like volume counters (`total_io`,
//!   `peak_memory`, `byte_count`, …) — use `checked_add`/`saturating_add`
//!   (`checked_mul` for products) so overflow is a decision, not UB-shaped
//!   silence in release builds.
//!
//! Sites that are provably in range are waived per line with
//! `// lint: allow(L009, reason)`.

use crate::diagnostics::Diagnostic;

use super::{body_range, find_word, Context, Rule};

/// How many lines past the annotation target the function signature may
/// span (mirrors L003).
const SIGNATURE_LOOKAHEAD: usize = 8;

/// Narrowing target types for `as` casts.
const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a variable as a volume/IO counter.
const COUNTER_HINTS: [&str; 12] = [
    "io", "total", "vol", "volume", "count", "counter", "sum", "acc", "bytes", "peak", "resident",
    "tau",
];

/// The L009 rule object.
pub struct HotPathArith;

impl Rule for HotPathArith {
    fn id(&self) -> &'static str {
        "L009"
    }

    fn describe(&self) -> &'static str {
        "no narrowing `as` casts or unguarded counter `+=`/`*=` in `no_alloc` hot paths"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        for file in &cx.ws.files {
            for annotation in file
                .waivers
                .iter()
                .filter(|w| w.rule == "no_alloc" && !w.is_allow)
            {
                let Some((start, end)) =
                    body_range(&file.lexed, annotation.target_line, SIGNATURE_LOOKAHEAD)
                else {
                    continue; // dangling annotations are L003 findings
                };
                for line in start..=end {
                    if file.waived("L009", line) {
                        continue;
                    }
                    let code = &file.lexed.lines[line - 1].code;
                    for ty in NARROW {
                        if find_word(code, &format!("as {ty}")).is_some() {
                            out.push(Diagnostic::new(
                                "L009",
                                file.rel_path.clone(),
                                line,
                                format!(
                                    "narrowing `as {ty}` cast in a `no_alloc` hot path; \
                                     use `{ty}::try_from` or keep the wide type"
                                ),
                            ));
                        }
                    }
                    for (op, checked, saturating) in [
                        ("+=", "checked_add", "saturating_add"),
                        ("*=", "checked_mul", "checked_mul"),
                    ] {
                        if let Some(name) = accumulated_counter(code, op) {
                            out.push(Diagnostic::new(
                                "L009",
                                file.rel_path.clone(),
                                line,
                                format!(
                                    "unguarded `{op}` on volume counter `{name}` in a \
                                     `no_alloc` hot path; use `{checked}` or `{saturating}`"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// If `code` applies `op` (`+=` or `*=`) to an identifier whose
/// underscore-separated segments include a counter hint, returns the
/// identifier.
fn accumulated_counter(code: &str, op: &str) -> Option<String> {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(op) {
        let abs = from + pos;
        from = abs + op.len();
        // `a += b` vs `a <<= b`-style near-misses: the char before must not
        // extend another operator.
        if abs > 0 && matches!(code.as_bytes()[abs - 1], b'+' | b'*' | b'<' | b'>') {
            continue;
        }
        let head = code[..abs].trim_end();
        let ident: String = head
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        // Field accesses count by their last segment (`self.total_io`).
        let last = ident.rsplit('.').next().unwrap_or(&ident);
        if last.is_empty() {
            continue;
        }
        let hinted = last
            .split('_')
            .any(|seg| COUNTER_HINTS.contains(&seg.to_ascii_lowercase().as_str()));
        if hinted {
            return Some(last.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_with};
    use crate::workspace::FileKind;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_rule(&HotPathArith, &ws_with(FileKind::Lib, "oocts-core", src))
    }

    #[test]
    fn narrowing_cast_fires_widening_does_not() {
        let src = "// lint: no_alloc\nfn hot(x: u64, y: u32) -> u64 {\n    let small = x as u32;\n    let wide = y as u64;\n    small as u64 + wide\n}";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("as u32"), "{}", out[0].message);
        assert!(out[0].message.contains("try_from"));
    }

    #[test]
    fn counter_accumulation_fires_plain_loop_vars_do_not() {
        let src = "// lint: no_alloc\nfn hot(amounts: &[u64]) -> u64 {\n    let mut total_io = 0u64;\n    let mut idx = 0usize;\n    while idx < amounts.len() {\n        total_io += amounts[idx];\n        idx += 1;\n    }\n    total_io\n}";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6);
        assert!(out[0].message.contains("total_io"));
        assert!(out[0].message.contains("saturating_add"));
    }

    #[test]
    fn field_counters_and_products_fire() {
        let src = "// lint: no_alloc\nfn hot(&mut self, w: u64) {\n    self.peak_memory *= w;\n}";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("peak_memory"));
        assert!(out[0].message.contains("checked_mul"));
    }

    #[test]
    fn unannotated_code_is_exempt() {
        let src = "fn cold(x: u64) -> u32 {\n    let mut total_io = 0u64;\n    total_io += x;\n    total_io as u32\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn waived_lines_pass() {
        let src = "// lint: no_alloc\nfn hot(x: u64) -> u32 {\n    x as u32 // lint: allow(L009, node counts fit u32 by construction)\n}";
        assert!(run(src).is_empty());
    }
}
