//! L007: library functions of the algorithmic crates must not *reach* a
//! panic through any workspace call chain.
//!
//! L001 bans panicking constructs written in library code; this rule bans
//! the transitive version: a library function of the six covered crates
//! that can reach an unwaived panic site in some other function — however
//! many calls away — is reported at its definition, with the full call
//! path to the panic. Panic sites that carry an `allow(L001, …)` waiver
//! are treated as provably infallible and do not propagate.
//!
//! Functions whose *own* body panics are L001's findings and are skipped
//! here. Waive a function whose panic chain is acceptable (e.g. a
//! debug-only oracle) at its definition line with
//! `// lint: allow(L007, reason)`.

use crate::diagnostics::Diagnostic;

use super::no_panics::COVERED_CRATES;
use super::{Context, Rule};

/// How many lines of attributes may sit between a standalone waiver and
/// the `fn` it governs.
const ATTRIBUTE_WINDOW: usize = 8;

/// The L007 rule object.
pub struct TransitivePanics;

impl Rule for TransitivePanics {
    fn id(&self) -> &'static str {
        "L007"
    }

    fn describe(&self) -> &'static str {
        "library code of the algorithmic crates must not reach a panic through any call chain"
    }

    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let graph = cx.graph;
        for (f, info) in graph.fns.iter().enumerate() {
            if !COVERED_CRATES.contains(&info.crate_name.as_str()) {
                continue;
            }
            if info.panic_site.is_some() || !graph.reaches_panic[f] {
                continue; // local panics are L001 findings
            }
            let file = cx
                .ws
                .files
                .iter()
                .find(|sf| sf.rel_path == info.file)
                .expect("graph functions come from scanned files");
            if file.waived_within("L007", info.line, ATTRIBUTE_WINDOW) {
                continue;
            }
            let Some(path) = graph.path_to(f, |i| graph.fns[i].panic_site.is_some()) else {
                continue; // reachability and path agree; defensive
            };
            let sink = *path.last().expect("path is non-empty");
            let (site_line, name) = graph.fns[sink]
                .panic_site
                .clone()
                .expect("path ends at a panic site");
            let chain: Vec<String> = path.iter().map(|&i| graph.fns[i].label()).collect();
            out.push(Diagnostic::new(
                "L007",
                info.file.clone(),
                info.line,
                format!(
                    "function can reach {name} ({}:{site_line}) via {}; \
                     make the chain infallible or waive with `// lint: allow(L007, reason)`",
                    graph.fns[sink].file,
                    chain.join(" -> "),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::{run_rule, ws_with};
    use crate::workspace::FileKind;

    fn run_in(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        run_rule(&TransitivePanics, &ws_with(FileKind::Lib, crate_name, src))
    }

    #[test]
    fn panic_one_call_deep_fires_at_the_definition_with_the_path() {
        let src = "fn entry(x: u64) -> u64 {\n    deep(x)\n}\nfn deep(x: u64) -> u64 {\n    if x == 0 { panic!(\"zero\"); }\n    x\n}";
        let out = run_in("oocts-core", src);
        // `deep` panics locally (an L001 finding, not L007); `entry` reaches it.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1, "anchored at entry's definition");
        assert!(
            out[0]
                .message
                .contains("oocts-core::entry -> oocts-core::deep"),
            "full path in message: {}",
            out[0].message
        );
        assert!(out[0].message.contains("panic!"), "{}", out[0].message);
        assert!(
            out[0].message.contains(":5"),
            "sink line: {}",
            out[0].message
        );
    }

    #[test]
    fn waived_panic_sites_are_infallible_and_do_not_propagate() {
        let src = "fn entry(x: u64) -> u64 {\n    deep(x)\n}\nfn deep(x: u64) -> u64 {\n    x.checked_add(1).expect(\"bounded\") // lint: allow(L001, bounded by caller)\n}";
        assert!(run_in("oocts-core", src).is_empty());
    }

    #[test]
    fn uncovered_crates_are_exempt() {
        let src = "fn entry() { deep(); }\nfn deep() { panic!(\"x\"); }";
        assert!(run_in("oocts-lint", src).is_empty());
    }

    #[test]
    fn waiver_at_the_definition_suppresses() {
        let src = "// lint: allow(L007, oracle, only run on tiny instances)\nfn entry() { deep(); }\nfn deep() { panic!(\"x\"); }";
        assert!(run_in("oocts-core", src).is_empty());
    }

    #[test]
    fn the_whole_upstream_chain_is_reported() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { todo!() }";
        let out = run_in("oocts-tree", src);
        // Both a and b reach c's todo!; c itself is L001's finding.
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("todo!"));
    }
}
