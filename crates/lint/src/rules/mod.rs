//! The rule set. Each rule is a module with fixture-based self-tests; the
//! driver runs them all (or a `--rules` subset) over the scanned workspace.
//!
//! Rules see the workspace through a [`Context`]: the scanned sources plus
//! the pre-built [`CallGraph`]. The line rules
//! (L001–L005) only read `cx.ws`; the transitive rules (L006–L008) walk the
//! graph (`crate::callgraph`).

pub mod crate_headers;
pub mod hot_path_arith;
pub mod no_alloc;
pub mod no_panics;
pub mod offline_deps;
pub mod recursion_cycles;
pub mod registry_complete;
pub mod transitive_no_alloc;
pub mod transitive_panics;

use crate::callgraph::CallGraph;
use crate::diagnostics::Diagnostic;
use crate::workspace::Workspace;

/// Everything a rule can look at.
pub struct Context<'a> {
    /// The scanned workspace (sources, manifests, waivers).
    pub ws: &'a Workspace,
    /// The workspace call graph, built once per run.
    pub graph: &'a CallGraph,
}

/// One lint rule.
pub trait Rule {
    /// Stable identifier (`"L001"` … `"L009"`).
    fn id(&self) -> &'static str;
    /// One-line description, shown by `--list`.
    fn describe(&self) -> &'static str;
    /// Appends this rule's findings to `out`.
    fn check(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>);
}

/// All rules, in identifier order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panics::NoPanics),
        Box::new(offline_deps::OfflineDeps),
        Box::new(no_alloc::NoAlloc),
        Box::new(registry_complete::RegistryComplete),
        Box::new(crate_headers::CrateHeaders),
        Box::new(transitive_no_alloc::TransitiveNoAlloc),
        Box::new(transitive_panics::TransitivePanics),
        Box::new(recursion_cycles::RecursionCycles),
        Box::new(hot_path_arith::HotPathArith),
    ]
}

/// The body line range (1-based, inclusive) of the item starting at
/// `start_line`: from the first `{` at or after `start_line` to its
/// matching `}`. Returns `None` when no body opens within `lookahead`
/// lines.
pub(crate) fn body_range(
    lexed: &crate::lexer::Lexed,
    start_line: usize,
    lookahead: usize,
) -> Option<(usize, usize)> {
    let n = lexed.lines.len();
    let first = start_line.saturating_sub(1);
    let mut depth = 0i64;
    let mut opened = false;
    for (off, l) in lexed.lines[first..n].iter().enumerate() {
        if !opened && off > lookahead {
            return None;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start_line, first + off + 1));
                    }
                }
                _ => {}
            }
        }
    }
    opened.then_some((start_line, n))
}

/// Word-boundary-ish search: `needle` not preceded/followed by an
/// identifier char (a needle that starts or ends with a non-identifier
/// char carries its own boundary on that side).
pub(crate) fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let self_bounded_start = needle
        .chars()
        .next()
        .is_some_and(|c| !c.is_alphanumeric() && c != '_');
    let self_bounded_end = needle
        .chars()
        .next_back()
        .is_some_and(|c| !c.is_alphanumeric() && c != '_');
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let abs = from + pos;
        let before_ok = self_bounded_start
            || abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = abs + needle.len();
        let after_ok = self_bounded_end
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        from = end;
    }
    None
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared scaffolding for rule unit tests: build a [`Workspace`] from
    //! in-memory sources and run one rule over it (graph included).

    use std::path::PathBuf;

    use super::{Context, Rule};
    use crate::callgraph::CallGraph;
    use crate::diagnostics::Diagnostic;
    use crate::lexer;
    use crate::waiver;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    /// A single-file workspace with the given crate name and file kind.
    pub fn ws_with(kind: FileKind, crate_name: &str, src: &str) -> Workspace {
        ws_from_files(vec![(crate_name, kind, "crates/x/src/lib.rs", src)])
    }

    /// A workspace from `(crate_name, kind, rel_path, source)` tuples.
    pub fn ws_from_files(files: Vec<(&str, FileKind, &str, &str)>) -> Workspace {
        let files = files
            .into_iter()
            .map(|(crate_name, kind, path, src)| {
                let lexed = lexer::lex(src);
                let waivers = waiver::parse_waivers(&lexed);
                let test_regions = lexed.test_regions();
                SourceFile {
                    rel_path: path.to_string(),
                    crate_name: crate_name.to_string(),
                    kind,
                    lexed,
                    waivers,
                    test_regions,
                }
            })
            .collect();
        Workspace {
            root: PathBuf::new(),
            members: Vec::new(),
            manifests: Vec::new(),
            files,
        }
    }

    /// Runs `rule` over `ws` with a freshly built call graph.
    pub fn run_rule(rule: &dyn Rule, ws: &Workspace) -> Vec<Diagnostic> {
        let graph = CallGraph::build(ws);
        let cx = Context { ws, graph: &graph };
        let mut out = Vec::new();
        rule.check(&cx, &mut out);
        out
    }
}
