//! The rule set. Each rule is a module with fixture-based self-tests; the
//! driver runs them all (or a `--rules` subset) over the scanned workspace.

pub mod crate_headers;
pub mod no_alloc;
pub mod no_panics;
pub mod offline_deps;
pub mod registry_complete;

use crate::diagnostics::Diagnostic;
use crate::workspace::Workspace;

/// One lint rule.
pub trait Rule {
    /// Stable identifier (`"L001"` … `"L005"`).
    fn id(&self) -> &'static str;
    /// One-line description, shown by `--list`.
    fn describe(&self) -> &'static str;
    /// Appends this rule's findings on `ws` to `out`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// All rules, in identifier order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panics::NoPanics),
        Box::new(offline_deps::OfflineDeps),
        Box::new(no_alloc::NoAlloc),
        Box::new(registry_complete::RegistryComplete),
        Box::new(crate_headers::CrateHeaders),
    ]
}

/// The body line range (1-based, inclusive) of the item starting at
/// `start_line`: from the first `{` at or after `start_line` to its
/// matching `}`. Returns `None` when no body opens within `lookahead`
/// lines.
pub(crate) fn body_range(
    lexed: &crate::lexer::Lexed,
    start_line: usize,
    lookahead: usize,
) -> Option<(usize, usize)> {
    let n = lexed.lines.len();
    let first = start_line.saturating_sub(1);
    let mut depth = 0i64;
    let mut opened = false;
    for (off, l) in lexed.lines[first..n].iter().enumerate() {
        if !opened && off > lookahead {
            return None;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start_line, first + off + 1));
                    }
                }
                _ => {}
            }
        }
    }
    opened.then_some((start_line, n))
}
