//! Workspace discovery: members, source files, and manifest dependencies.
//!
//! Members are enumerated directly from the filesystem layout the root
//! manifest pins down (`members = ["crates/*"]` plus the root umbrella
//! package), so the linter needs no TOML parser — only the dependency
//! sections of each manifest are scanned, line by line.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Lexed};
use crate::waiver::{self, Waiver};

/// What kind of compilation target a source file belongs to. Library rules
/// (L001, L003, L004) only apply to [`FileKind::Lib`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a crate, excluding binary roots.
    Lib,
    /// `src/main.rs` or `src/bin/**`.
    Bin,
    /// `tests/**`.
    Test,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// One scanned `.rs` file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Package name of the owning crate (e.g. `oocts-core`).
    pub crate_name: String,
    /// Target kind, used by rules to scope themselves to library code.
    pub kind: FileKind,
    /// Scanned code/comment channels.
    pub lexed: Lexed,
    /// Parsed `// lint: …` annotations.
    pub waivers: Vec<Waiver>,
    /// `#[cfg(test)]` line ranges (1-based, inclusive).
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// `true` if `rule` is waived on `line` (1-based).
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        self.waivers.iter().any(|w| w.covers(rule, line))
    }

    /// `true` if `rule` is waived on `line` or by an annotation targeting
    /// at most `window` lines above it. Definition-anchored rules (L007,
    /// L008) use this: attributes such as `#[allow(…)]` or `#[inline]` may
    /// sit between a standalone waiver comment and the `fn` it governs.
    pub fn waived_within(&self, rule: &str, line: usize, window: usize) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && w.target_line <= line && line <= w.target_line + window)
    }

    /// `true` if `line` (1-based) is inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: usize) -> bool {
        lexer::in_regions(&self.test_regions, line)
    }
}

/// One dependency entry of a manifest.
#[derive(Debug, Clone)]
pub struct Dependency {
    /// The dependency name as written.
    pub name: String,
    /// 1-based line in the manifest.
    pub line: usize,
    /// `true` when the entry resolves offline (a `path` dependency or a
    /// `workspace = true` reference).
    pub offline: bool,
    /// Short description of why the entry is not offline (registry version,
    /// git, …); empty when `offline`.
    pub problem: String,
}

/// One scanned `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Path relative to the workspace root.
    pub rel_path: String,
    /// The package name (`name = "…"`), or the directory name for the
    /// virtual root.
    pub crate_name: String,
    /// All dependency entries across `[dependencies]`,
    /// `[dev-dependencies]`, `[build-dependencies]` and
    /// `[workspace.dependencies]`.
    pub deps: Vec<Dependency>,
}

/// One workspace member.
#[derive(Debug, Clone)]
pub struct Member {
    /// Package name.
    pub name: String,
    /// Directory relative to the workspace root (`"."` for the root
    /// package).
    pub rel_dir: String,
    /// `true` if the member has a `src/lib.rs`.
    pub has_lib: bool,
}

/// The scanned workspace: members, manifests, and all `.rs` sources.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Absolute path of the workspace root.
    pub root: PathBuf,
    /// Members in directory order (root package first).
    pub members: Vec<Member>,
    /// Scanned manifests (root first).
    pub manifests: Vec<Manifest>,
    /// Scanned source files.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Scans the workspace rooted at `root` (which must contain the
    /// workspace `Cargo.toml`).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let root_manifest = root.join("Cargo.toml");
        let root_toml = fs::read_to_string(&root_manifest)
            .map_err(|e| format!("cannot read {}: {e}", root_manifest.display()))?;
        if !root_toml.contains("[workspace]") {
            return Err(format!(
                "{} is not a workspace manifest",
                root_manifest.display()
            ));
        }

        let mut members = Vec::new();
        if root_toml.contains("[package]") {
            members.push(Member {
                name: package_name(&root_toml).unwrap_or_else(|| "root".to_string()),
                rel_dir: ".".to_string(),
                has_lib: root.join("src/lib.rs").is_file(),
            });
        }
        // `members = ["crates/*"]`: enumerate crates/* directories that
        // carry a manifest. `vendor/` is excluded from the workspace and
        // lives outside crates/, so it is never picked up.
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = Vec::new();
        if crates_dir.is_dir() {
            let entries = fs::read_dir(&crates_dir)
                .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
            for entry in entries.flatten() {
                let dir = entry.path();
                if dir.join("Cargo.toml").is_file() {
                    crate_dirs.push(dir);
                }
            }
        }
        crate_dirs.sort();
        for dir in &crate_dirs {
            let toml = fs::read_to_string(dir.join("Cargo.toml"))
                .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let rel_dir = rel(root, dir);
            members.push(Member {
                name: package_name(&toml).unwrap_or_else(|| rel_dir.clone()),
                rel_dir,
                has_lib: dir.join("src/lib.rs").is_file(),
            });
        }

        let mut manifests = Vec::new();
        let mut files = Vec::new();
        for member in &members {
            let dir = if member.rel_dir == "." {
                root.to_path_buf()
            } else {
                root.join(&member.rel_dir)
            };
            let manifest_path = dir.join("Cargo.toml");
            let toml = fs::read_to_string(&manifest_path)
                .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
            manifests.push(Manifest {
                rel_path: rel(root, &manifest_path),
                crate_name: member.name.clone(),
                deps: scan_dependencies(&toml),
            });
            for (sub, kind) in [
                ("src", FileKind::Lib),
                ("tests", FileKind::Test),
                ("examples", FileKind::Example),
                ("benches", FileKind::Bench),
            ] {
                let sub_dir = dir.join(sub);
                if !sub_dir.is_dir() {
                    continue;
                }
                let mut paths = Vec::new();
                collect_rs(&sub_dir, &mut paths)?;
                paths.sort();
                for path in paths {
                    let rel_path = rel(root, &path);
                    let kind = classify(kind, &rel_path, &member.rel_dir);
                    let source = fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                    let lexed = lexer::lex(&source);
                    let waivers = waiver::parse_waivers(&lexed);
                    let test_regions = lexed.test_regions();
                    files.push(SourceFile {
                        rel_path,
                        crate_name: member.name.clone(),
                        kind,
                        lexed,
                        waivers,
                        test_regions,
                    });
                }
            }
        }

        Ok(Workspace {
            root: root.to_path_buf(),
            members,
            manifests,
            files,
        })
    }
}

/// Refines the directory-derived kind for files under `src/`.
fn classify(base: FileKind, rel_path: &str, member_dir: &str) -> FileKind {
    if base != FileKind::Lib {
        return base;
    }
    let prefix = if member_dir == "." {
        String::new()
    } else {
        format!("{member_dir}/")
    };
    if rel_path == format!("{prefix}src/main.rs")
        || rel_path.starts_with(&format!("{prefix}src/bin/"))
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Recursively collects `.rs` files, skipping `fixtures/` directories (the
/// lint crate's own test inputs deliberately violate the rules).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with `/` separators.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extracts `name = "…"` from a `[package]` section.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// `true` if a section header opens a dependency table.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_matches(['[', ']']);
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

/// Scans the dependency sections of a manifest, line by line.
///
/// Handles the idioms in use across the workspace: `name.workspace = true`,
/// `name = { workspace = true }`, `name = { path = "…" }`, plus the
/// violations the rule must catch: `name = "1.0"`,
/// `name = { version = "1.0" }`, `name = { git = "…" }`, and sub-table
/// dependencies `[dependencies.name]`.
pub fn scan_dependencies(toml: &str) -> Vec<Dependency> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    // A `[dependencies.NAME]` sub-table being accumulated.
    let mut pending: Option<Dependency> = None;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(dep) = pending.take() {
                deps.push(dep);
            }
            let h = line.trim_matches(['[', ']']);
            let sub = h
                .strip_prefix("dependencies.")
                .or_else(|| h.strip_prefix("dev-dependencies."))
                .or_else(|| h.strip_prefix("build-dependencies."))
                .or_else(|| h.strip_prefix("workspace.dependencies."));
            if let Some(name) = sub {
                pending = Some(Dependency {
                    name: name.to_string(),
                    line: idx + 1,
                    offline: false,
                    problem: "no path/workspace source".to_string(),
                });
                in_deps = false;
            } else {
                in_deps = is_dep_section(line);
            }
            continue;
        }
        if let Some(dep) = pending.as_mut() {
            if line.starts_with("path") || (line.starts_with("workspace") && line.contains("true"))
            {
                dep.offline = true;
                dep.problem.clear();
            } else if line.starts_with("git") {
                dep.offline = false;
                dep.problem = "git dependency".to_string();
            }
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `name.workspace = true` / `name.path = "…"` dotted form.
        let (name, is_dotted_offline) = match key.split_once('.') {
            Some((n, attr)) => (
                n.trim(),
                (attr.trim() == "workspace" && value == "true") || attr.trim() == "path",
            ),
            None => (key, false),
        };
        let (offline, problem) = if is_dotted_offline
            || value.contains("path")
            || (value.contains("workspace") && value.contains("true"))
        {
            (true, String::new())
        } else if value.contains("git") {
            (false, "git dependency".to_string())
        } else {
            (false, "registry version, not a path".to_string())
        };
        deps.push(Dependency {
            name: name.trim_matches('"').to_string(),
            line: idx + 1,
            offline,
            problem,
        });
    }
    if let Some(dep) = pending.take() {
        deps.push(dep);
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_idioms() {
        let toml = r#"
[package]
name = "x"

[dependencies]
oocts-tree.workspace = true
serde = { path = "vendor/serde", features = ["derive"] }
bad = "1.0"
worse = { version = "2", default-features = false }
evil = { git = "https://example.com/evil" }

[features]
brute-force = ["oocts-core/brute-force"]

[dev-dependencies]
oocts-core = { path = ".", features = ["brute-force"] }

[dependencies.sub]
version = "1"
"#;
        let deps = scan_dependencies(toml);
        let by_name = |n: &str| deps.iter().find(|d| d.name == n).expect("dep present");
        assert!(by_name("oocts-tree").offline);
        assert!(by_name("serde").offline);
        assert!(!by_name("bad").offline);
        assert!(!by_name("worse").offline);
        assert!(!by_name("evil").offline);
        assert!(by_name("evil").problem.contains("git"));
        assert!(by_name("oocts-core").offline);
        assert!(!by_name("sub").offline);
        // Feature lists are not dependencies.
        assert!(!deps.iter().any(|d| d.name == "brute-force"));
        assert_eq!(deps.len(), 7);
    }

    #[test]
    fn package_name_extraction() {
        assert_eq!(
            package_name("[package]\nname = \"oocts-core\"\n"),
            Some("oocts-core".to_string())
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
