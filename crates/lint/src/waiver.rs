//! Waiver parsing: `// lint: allow(RULE, reason)` and `// lint: no_alloc`.
//!
//! A waiver suppresses a rule on the line it sits on, or — when written on
//! its own line — on the next line that carries code. The reason is free
//! text and mandatory; [`crate::run_lint`] reports reason-less waivers as
//! `W000`.

use crate::lexer::Lexed;

/// One parsed `// lint: …` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The named rule (`"L001"` … `"L005"`), or `"no_alloc"` for the
    /// zero-alloc region annotation.
    pub rule: String,
    /// The free-text justification (empty for `no_alloc` annotations).
    pub reason: String,
    /// 1-based line the annotation was written on.
    pub line: usize,
    /// 1-based line the annotation *applies to*: the same line when the
    /// comment trails code, otherwise the next line that carries code.
    pub target_line: usize,
    /// `true` for the `allow(RULE, reason)` form, `false` for bare
    /// annotations such as `// lint: no_alloc`. An `allow(no_alloc, …)`
    /// parses (so [`crate::run_lint`] can report it as a W000 note — the
    /// writer meant L003 or L006) but never acts as an annotation.
    pub is_allow: bool,
}

impl Waiver {
    /// `true` if this waiver suppresses `rule` on `line` (1-based).
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.rule == rule && self.target_line == line
    }
}

/// Extracts all `// lint: …` annotations from a scanned file.
pub fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, l) in lexed.lines.iter().enumerate() {
        let Some(comment) = &l.comment else { continue };
        let Some(rest) = comment.trim().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let line = idx + 1;
        let has_code = !l.code.trim().is_empty();
        let target_line = if has_code {
            line
        } else {
            // Stand-alone comment: applies to the next line with code.
            lexed.lines[idx + 1..]
                .iter()
                .position(|nl| !nl.code.trim().is_empty())
                .map(|off| line + 1 + off)
                .unwrap_or(line)
        };
        if rest == "no_alloc" {
            waivers.push(Waiver {
                rule: "no_alloc".to_string(),
                reason: String::new(),
                line,
                target_line,
                is_allow: false,
            });
        } else if let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|s| s.strip_suffix(')'))
        {
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                None => (inner.trim().to_string(), String::new()),
            };
            waivers.push(Waiver {
                rule,
                reason,
                line,
                target_line,
                is_allow: true,
            });
        }
        // Other `lint:`-prefixed comments are ignored; the annotation
        // namespace may grow.
    }
    waivers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let lexed = lex("let x = f(); // lint: allow(L001, provably infallible)");
        let ws = parse_waivers(&lexed);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "L001");
        assert_eq!(ws[0].reason, "provably infallible");
        assert_eq!(ws[0].target_line, 1);
        assert!(ws[0].covers("L001", 1));
        assert!(!ws[0].covers("L002", 1));
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let src =
            "// lint: allow(L004, bench-only strategy)\n// more prose\nimpl Scheduler for X {}";
        let ws = parse_waivers(&lex(src));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].line, 1);
        assert_eq!(ws[0].target_line, 3);
    }

    #[test]
    fn no_alloc_annotation() {
        let ws = parse_waivers(&lex("// lint: no_alloc\nfn hot() {}"));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "no_alloc");
        assert_eq!(ws[0].target_line, 2);
        assert!(!ws[0].is_allow);
    }

    #[test]
    fn allow_of_the_annotation_name_is_flagged_as_allow() {
        // `allow(no_alloc, …)` names the annotation, not a rule; the parse
        // keeps it (run_lint turns it into a W000 note) but the `is_allow`
        // flag stops it from acting as a `no_alloc` annotation.
        let ws = parse_waivers(&lex("// lint: allow(no_alloc, misguided)\nfn f() {}"));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "no_alloc");
        assert!(ws[0].is_allow);
    }

    #[test]
    fn missing_reason_is_parsed_with_empty_reason() {
        let ws = parse_waivers(&lex("x(); // lint: allow(L001)"));
        assert_eq!(ws.len(), 1);
        assert!(ws[0].reason.is_empty());
    }

    #[test]
    fn waiver_inside_string_is_ignored() {
        let ws = parse_waivers(&lex(r#"let s = "// lint: allow(L001, nope)";"#));
        assert!(ws.is_empty());
    }
}
