//! Perf-trajectory benchmark matrix and the `BENCH_*.json` snapshot schema.
//!
//! The `bench` binary runs a fixed matrix of **(instance family × size ×
//! scheduler × thread count)** cells through
//! [`oocts_profile::runner::run_experiment`] and snapshots what came out of
//! every [`SolveReport`](oocts_core::scheduler::SolveReport): scheduling
//! wall-time, FiF I/O volume, the paper's performance metric and the
//! in-core peak. Snapshots are plain JSON files (`BENCH_<label>.json` at the
//! repository root) meant to be diffed across commits — the *perf
//! trajectory* of the codebase.
//!
//! # The `oocts-bench/v1` schema
//!
//! ```json
//! {
//!   "schema": "oocts-bench/v1",
//!   "label": "ci",
//!   "quick": true,
//!   "seed": 24301,
//!   "threads": [1, 4],
//!   "cells": [
//!     {
//!       "family": "SYNTH",
//!       "size": 250,
//!       "instances": 6,
//!       "scheduler": "RecExpand",
//!       "threads": 4,
//!       "memory_bound": "Middle",
//!       "total_io": 1234,
//!       "mean_performance": 1.25,
//!       "max_peak": 560,
//!       "wall_ms": 12.5
//!     }
//!   ]
//! }
//! ```
//!
//! Field semantics (one cell per scheduler of each run):
//!
//! * `family` — `"SYNTH"` (random binary trees) or `"TREES"` (multifrontal
//!   assembly trees); `size` is the node count per SYNTH tree or the TREES
//!   scale factor; `instances` the number of instances of the run.
//! * `total_io` / `max_peak` — [`ExperimentResults::total_io`] and
//!   [`ExperimentResults::max_peak`]: summed FiF I/O volume and worst
//!   in-core peak over the run's instances. Deterministic.
//! * `mean_performance` — [`ExperimentResults::mean_performance`], the mean
//!   of the paper's `(M + IO)/M` metric. Deterministic.
//! * `wall_ms` — [`ExperimentResults::total_schedule_time`] in milliseconds:
//!   the summed scheduling wall-time of the scheduler over all instances.
//!   Machine-dependent; compare trends, not digits.
//! * `engine` *(optional, schema-compatible addition)* — execution-engine
//!   statistics of the run that produced the cell, identical across the
//!   cells of one run:
//!
//!   ```json
//!   "engine": {
//!     "granularity": "Cell",
//!     "threads": 8,
//!     "elapsed_ms": 41.7,
//!     "cells": 256,
//!     "executed": 320,
//!     "stolen": 12,
//!     "injected": 58,
//!     "cell_wall_ms": 33.1,
//!     "csv_fnv64": "0x9b1a3f6c2d4e5a70"
//!   }
//!   ```
//!
//!   `granularity` is the engine decomposition (`"Cell"` or `"Instance"`);
//!   `elapsed_ms` the parallel wall-clock of the whole run (the number the
//!   `BENCH_pr10_before`/`BENCH_pr10` pair compares); `cells` the scheduler
//!   cells executed; `executed`/`stolen`/`injected` the summed per-worker
//!   task counters; `cell_wall_ms` the total engine-measured wall-time of
//!   *this scheduler's* cells; `csv_fnv64` the FNV-1a digest of the run's
//!   streamed per-instance CSV — deterministic, so identical digests across
//!   snapshots prove bit-identical CSV bytes. All `*_ms` fields are
//!   machine-dependent; everything else in `engine` except the counters is
//!   deterministic.
//!
//! Families are `"SYNTH"`, `"TREES"`, and `"IMBAL"` (the deliberately
//! imbalanced grid of `bench --imbalanced`: one huge instance plus many
//! tiny ones, built to measure load-balancing of the execution engine;
//! it runs the comparable-cost [`IMBAL_SCHEDULERS`] so the huge row can
//! actually be split across workers).
//!
//! [`validate_bench`] checks this shape and is what the CI gate (and the
//! `bench --validate` flag) runs against freshly emitted snapshots.
//!
//! [`ExperimentResults::total_io`]: oocts_profile::runner::ExperimentResults::total_io
//! [`ExperimentResults::max_peak`]: oocts_profile::runner::ExperimentResults::max_peak
//! [`ExperimentResults::mean_performance`]: oocts_profile::runner::ExperimentResults::mean_performance
//! [`ExperimentResults::total_schedule_time`]: oocts_profile::runner::ExperimentResults::total_schedule_time

use std::sync::Arc;

use oocts_core::registry::SchedulerRegistry;
use oocts_core::scheduler::{builtin_schedulers, Scheduler};
use oocts_gen::corpus::GoldenRecord;
use oocts_gen::dataset::{synth_dataset, trees_dataset, DatasetConfig, Instance};
use oocts_profile::bounds::MemoryBound;
use oocts_profile::engine::Granularity;
use oocts_profile::runner::{
    csv_header, run_experiment, run_experiment_streaming, ExperimentConfig, ExperimentError,
};
use oocts_tree::Tree;
use serde::value::Value;

/// Schema identifier written to (and required in) every snapshot.
pub const BENCH_SCHEMA_VERSION: &str = "oocts-bench/v1";

/// The scheduler specs of the benchmark matrix. `FullRecExpand` is excluded:
/// its exponential worst case would dominate the wall-time columns and the
/// trajectory should track the practical strategies.
pub const BENCH_SCHEDULERS: &str = "PostOrderMinIO,OptMinMem,RecExpand,PostOrderMinMem";

/// The scheduler specs of the imbalanced grid (`bench --imbalanced`).
/// `RecExpand` is additionally excluded here: its superlinear cost on the
/// huge instance would make that row a *single-cell* critical path, which no
/// cell-granularity balancing can split — the grid is built to measure load
/// balancing, so its per-cell costs must be comparable.
pub const IMBAL_SCHEDULERS: &str = "PostOrderMinIO,OptMinMem,PostOrderMinMem";

/// Configuration of one benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchConfig {
    /// Snapshot label: the output file is `BENCH_<label>.json`.
    pub label: String,
    /// Reduced matrix (CI-sized); recorded in the snapshot.
    pub quick: bool,
    /// Base random seed of the generated datasets.
    pub seed: u64,
    /// Thread counts of the matrix (each run is repeated per count).
    pub threads: Vec<usize>,
    /// Replace the matrix with the load-imbalance grid (`IMBAL` family):
    /// one huge instance plus many tiny ones, the worst case for
    /// instance-granularity sharding.
    pub imbalanced: bool,
    /// Execution-engine decomposition (`bench --sharding instance|cell`);
    /// output is byte-identical either way, only wall-clock differs.
    pub granularity: Granularity,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            label: "local".to_string(),
            quick: false,
            seed: 0x5eed,
            threads: vec![1, 4],
            imbalanced: false,
            granularity: Granularity::Cell,
        }
    }
}

impl BenchConfig {
    /// The CI-sized configuration (`bench --quick`).
    pub fn quick() -> Self {
        BenchConfig {
            quick: true,
            ..BenchConfig::default()
        }
    }

    /// The snapshot file name, `BENCH_<label>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }
}

/// One (family × size) axis point of the matrix.
struct MatrixRun {
    family: &'static str,
    /// Nodes per tree for SYNTH, scale factor for TREES.
    size: usize,
    instances: Vec<(String, Tree)>,
}

fn matrix_runs(config: &BenchConfig) -> Vec<MatrixRun> {
    let synth_sizes: &[(usize, usize)] = if config.quick {
        &[(120, 6), (250, 6)]
    } else {
        &[(500, 24), (1500, 24)]
    };
    let trees_scales: &[usize] = if config.quick { &[1] } else { &[1, 2] };

    let mut runs = Vec::new();
    for &(nodes, count) in synth_sizes {
        let ds = synth_dataset(&DatasetConfig {
            synth_instances: count,
            synth_nodes: nodes,
            trees_scale: 1,
            seed: config.seed,
        });
        runs.push(MatrixRun {
            family: "SYNTH",
            size: nodes,
            instances: ds.into_iter().map(|i| (i.name, i.tree)).collect(),
        });
    }
    for &scale in trees_scales {
        let ds = trees_dataset(&DatasetConfig {
            synth_instances: 0,
            synth_nodes: 0,
            trees_scale: scale,
            seed: config.seed,
        });
        runs.push(MatrixRun {
            family: "TREES",
            size: scale,
            instances: ds.into_iter().map(|i| (i.name, i.tree)).collect(),
        });
    }
    runs
}

/// The deliberately imbalanced grid (`bench --imbalanced`): one huge SYNTH
/// instance plus 63 tiny ones. Under instance-granularity sharding the huge
/// instance pins a single worker for all schedulers in a row; the cell
/// engine spreads its scheduler cells over the pool. Deterministic in
/// `seed`, like the regular matrix.
fn imbalanced_run(config: &BenchConfig) -> MatrixRun {
    let (huge_nodes, tiny_nodes) = if config.quick {
        (6_000, 150)
    } else {
        (1 << 18, 250)
    };
    let mut huge = synth_dataset(&DatasetConfig {
        synth_instances: 1,
        synth_nodes: huge_nodes,
        trees_scale: 1,
        seed: config.seed,
    });
    let tiny = synth_dataset(&DatasetConfig {
        synth_instances: 63,
        synth_nodes: tiny_nodes,
        trees_scale: 1,
        seed: config.seed.wrapping_add(1),
    });
    huge[0].name = "imbal-huge".to_string();
    let mut instances: Vec<(String, Tree)> = huge.into_iter().map(|i| (i.name, i.tree)).collect();
    instances.extend(
        tiny.into_iter()
            .map(|i| (format!("imbal-{}", i.name), i.tree)),
    );
    MatrixRun {
        family: "IMBAL",
        size: huge_nodes,
        instances,
    }
}

/// Streaming FNV-1a 64-bit digest, rendered `0x`-hex — the checksum behind
/// the `csv_fnv64` snapshot field. Fed row by row as the engine streams
/// results, so it also proves the streamed CSV equals the batch export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest rendered as `0x`-prefixed lowercase hex.
    pub fn render(self) -> String {
        format!("{:#018x}", self.0)
    }
}

/// Runs the benchmark matrix and returns the snapshot as a JSON [`Value`]
/// (validate with [`validate_bench`], write with
/// [`Value::render_pretty`]).
///
/// # Errors
/// Propagates the first [`ExperimentError`] of any run — the paper's memory
/// bounds are feasible by construction, so an error here is a regression.
pub fn run_bench(config: &BenchConfig) -> Result<Value, ExperimentError> {
    let registry = SchedulerRegistry::with_builtins();
    let spec = if config.imbalanced {
        IMBAL_SCHEDULERS
    } else {
        BENCH_SCHEDULERS
    };
    let schedulers: Vec<Arc<dyn Scheduler>> = registry
        .get_list(spec)
        .expect("the built-in benchmark specs parse");

    let runs = if config.imbalanced {
        vec![imbalanced_run(config)]
    } else {
        matrix_runs(config)
    };
    let mut cells = Vec::new();
    for run in runs {
        for &threads in &config.threads {
            let mut exp = ExperimentConfig::new(schedulers.clone(), MemoryBound::Middle);
            exp.threads = threads;
            exp.granularity = config.granularity;
            // The per-instance CSV is digested as the engine streams rows
            // out, not from the assembled results: identical `csv_fnv64`
            // values across snapshots certify bit-identical CSV bytes AND
            // that the streamed rows equal the batch export.
            let mut digest = Fnv64::new();
            digest.update(csv_header(&exp.scheduler_names()).as_bytes());
            let results = run_experiment_streaming(&run.instances, &exp, |row| {
                digest.update(row.csv_row().as_bytes());
            })?;
            let engine = results.engine.as_ref();
            for (a, name) in results.scheduler_names().iter().enumerate() {
                let mut cell = Value::object()
                    .with("family", Value::Str(run.family.to_string()))
                    .with("size", Value::U64(run.size as u64))
                    .with("instances", Value::U64(results.results.len() as u64))
                    .with("scheduler", Value::Str(name.clone()))
                    .with("threads", Value::U64(threads as u64))
                    .with("memory_bound", Value::Str(format!("{:?}", results.bound)))
                    .with("total_io", Value::U64(results.total_io(a)))
                    .with("mean_performance", Value::F64(results.mean_performance(a)))
                    .with("max_peak", Value::U64(results.max_peak(a)))
                    .with(
                        "wall_ms",
                        Value::F64(results.total_schedule_time(a).as_secs_f64() * 1e3),
                    );
                if let Some(stats) = engine {
                    cell = cell.with(
                        "engine",
                        Value::object()
                            .with(
                                "granularity",
                                Value::Str(format!("{:?}", stats.granularity)),
                            )
                            .with("threads", Value::U64(stats.threads as u64))
                            .with("elapsed_ms", Value::F64(stats.elapsed.as_secs_f64() * 1e3))
                            .with("cells", Value::U64(stats.cells))
                            .with("executed", Value::U64(stats.total_executed()))
                            .with("stolen", Value::U64(stats.total_stolen()))
                            .with("injected", Value::U64(stats.total_injected()))
                            .with(
                                "cell_wall_ms",
                                Value::F64(results.total_cell_time(a).as_secs_f64() * 1e3),
                            )
                            .with("csv_fnv64", Value::Str(digest.render())),
                    );
                }
                cells.push(cell);
            }
        }
    }

    Ok(Value::object()
        .with("schema", Value::Str(BENCH_SCHEMA_VERSION.to_string()))
        .with("label", Value::Str(config.label.clone()))
        .with("quick", Value::Bool(config.quick))
        .with("seed", Value::U64(config.seed))
        .with(
            "threads",
            Value::Array(
                config
                    .threads
                    .iter()
                    .map(|&t| Value::U64(t as u64))
                    .collect(),
            ),
        )
        .with("cells", Value::Array(cells)))
}

/// Validates a snapshot against the `oocts-bench/v1` schema documented on
/// this module (shape, types and value ranges).
///
/// # Errors
/// A human-readable path to the first violation, e.g.
/// `cells[3].total_io: expected a non-negative integer`.
pub fn validate_bench(snapshot: &Value) -> Result<(), String> {
    let top = |key: &str| {
        snapshot
            .get(key)
            .ok_or_else(|| format!("missing top-level key {key:?}"))
    };

    let schema = top("schema")?.as_str().ok_or("schema: expected a string")?;
    if schema != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema: expected {BENCH_SCHEMA_VERSION:?}, found {schema:?}"
        ));
    }
    let label = top("label")?.as_str().ok_or("label: expected a string")?;
    if label.is_empty() {
        return Err("label: must not be empty".to_string());
    }
    top("quick")?.as_bool().ok_or("quick: expected a boolean")?;
    top("seed")?.as_u64().ok_or("seed: expected an integer")?;
    let threads = top("threads")?
        .as_array()
        .ok_or("threads: expected an array")?;
    if threads.is_empty() || threads.iter().any(|t| t.as_u64().is_none()) {
        return Err("threads: expected a non-empty array of integers".to_string());
    }

    let cells = top("cells")?.as_array().ok_or("cells: expected an array")?;
    if cells.is_empty() {
        return Err("cells: must not be empty".to_string());
    }
    for (i, cell) in cells.iter().enumerate() {
        validate_cell(cell).map_err(|e| format!("cells[{i}].{e}"))?;
    }
    Ok(())
}

fn validate_cell(cell: &Value) -> Result<(), String> {
    let field = |key: &str| cell.get(key).ok_or_else(|| format!("{key}: missing"));

    let family = field("family")?
        .as_str()
        .ok_or("family: expected a string")?;
    if family != "SYNTH" && family != "TREES" && family != "IMBAL" {
        return Err(format!(
            "family: expected SYNTH, TREES or IMBAL, found {family:?}"
        ));
    }
    let size = field("size")?.as_u64().ok_or("size: expected an integer")?;
    if size == 0 {
        return Err("size: must be positive".to_string());
    }
    let instances = field("instances")?
        .as_u64()
        .ok_or("instances: expected an integer")?;
    if instances == 0 {
        return Err("instances: must be positive".to_string());
    }
    let scheduler = field("scheduler")?
        .as_str()
        .ok_or("scheduler: expected a string")?;
    if scheduler.is_empty() {
        return Err("scheduler: must not be empty".to_string());
    }
    field("threads")?
        .as_u64()
        .ok_or("threads: expected an integer")?;
    field("memory_bound")?
        .as_str()
        .ok_or("memory_bound: expected a string")?;
    field("total_io")?
        .as_u64()
        .ok_or("total_io: expected a non-negative integer")?;
    let perf = field("mean_performance")?
        .as_f64()
        .ok_or("mean_performance: expected a number")?;
    if !perf.is_finite() || perf < 1.0 {
        return Err(format!(
            "mean_performance: the (M + IO)/M metric is >= 1, found {perf}"
        ));
    }
    field("max_peak")?
        .as_u64()
        .ok_or("max_peak: expected a non-negative integer")?;
    let wall = field("wall_ms")?
        .as_f64()
        .ok_or("wall_ms: expected a number")?;
    if !wall.is_finite() || wall < 0.0 {
        return Err(format!(
            "wall_ms: expected a non-negative number, found {wall}"
        ));
    }
    // `engine` is an optional, schema-compatible addition: absent in
    // pre-engine snapshots, validated when present.
    if let Some(engine) = cell.get("engine") {
        validate_engine(engine).map_err(|e| format!("engine.{e}"))?;
    }
    Ok(())
}

fn validate_engine(engine: &Value) -> Result<(), String> {
    let field = |key: &str| engine.get(key).ok_or_else(|| format!("{key}: missing"));

    let granularity = field("granularity")?
        .as_str()
        .ok_or("granularity: expected a string")?;
    if granularity != "Cell" && granularity != "Instance" {
        return Err(format!(
            "granularity: expected Cell or Instance, found {granularity:?}"
        ));
    }
    let threads = field("threads")?
        .as_u64()
        .ok_or("threads: expected an integer")?;
    if threads == 0 {
        return Err("threads: must be positive".to_string());
    }
    for key in ["cells", "executed", "stolen", "injected"] {
        field(key)?
            .as_u64()
            .ok_or_else(|| format!("{key}: expected a non-negative integer"))?;
    }
    for key in ["elapsed_ms", "cell_wall_ms"] {
        let ms = field(key)?
            .as_f64()
            .ok_or_else(|| format!("{key}: expected a number"))?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("{key}: expected a non-negative number, found {ms}"));
        }
    }
    let digest = field("csv_fnv64")?
        .as_str()
        .ok_or("csv_fnv64: expected a string")?;
    if digest.len() != 18
        || !digest.starts_with("0x")
        || !digest[2..].bytes().all(|b| b.is_ascii_hexdigit())
    {
        return Err(format!(
            "csv_fnv64: expected an 0x-prefixed 16-digit hex string, found {digest:?}"
        ));
    }
    Ok(())
}

/// The instances snapshotted into the golden corpus (`tests/corpus/`):
/// a handful of small SYNTH trees plus the smallest TREES assembly trees,
/// all deterministic in `seed`.
///
/// Small on purpose — the golden suite replays every instance under every
/// built-in scheduler (`FullRecExpand` included) in debug builds.
pub fn corpus_instances(seed: u64) -> Vec<Instance> {
    let mut instances = synth_dataset(&DatasetConfig {
        synth_instances: 5,
        synth_nodes: 220,
        trees_scale: 1,
        seed,
    });
    for inst in &mut instances {
        inst.name = format!("corpus-{}", inst.name);
    }
    let mut trees = trees_dataset(&DatasetConfig {
        synth_instances: 0,
        synth_nodes: 0,
        trees_scale: 1,
        seed,
    });
    trees.sort_by_key(|i| i.tree.len());
    for mut inst in trees.into_iter().take(3) {
        inst.name = format!("corpus-{}", inst.name);
        instances.push(inst);
    }
    instances
}

/// Computes the golden expectations of a corpus: every instance solved by
/// every built-in scheduler at the `Middle` memory bound, through the same
/// [`run_experiment`] path the golden suite replays.
///
/// # Errors
/// Propagates the first [`ExperimentError`]; the corpus instances are
/// feasible under the paper's bounds by construction.
pub fn corpus_golden(instances: &[Instance]) -> Result<Vec<GoldenRecord>, ExperimentError> {
    let named: Vec<(String, Tree)> = instances
        .iter()
        .map(|i| (i.name.clone(), i.tree.clone()))
        .collect();
    let config = ExperimentConfig::new(builtin_schedulers(), MemoryBound::Middle);
    let results = run_experiment(&named, &config)?;
    let names = results.scheduler_names();
    let mut records = Vec::with_capacity(results.results.len() * names.len());
    for res in &results.results {
        for (a, scheduler) in names.iter().enumerate() {
            records.push(GoldenRecord {
                instance: res.name.clone(),
                scheduler: scheduler.clone(),
                memory: res.memory,
                io_volume: res.io_volumes[a],
                peak_memory: res.peak_memories[a],
            });
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_snapshot_passes_schema_validation() {
        let mut config = BenchConfig::quick();
        config.label = "unit".to_string();
        config.threads = vec![1, 2];
        let snapshot = run_bench(&config).expect("paper bounds are feasible");
        validate_bench(&snapshot).expect("freshly emitted snapshots are schema-valid");

        // The matrix shape: (2 SYNTH sizes + 1 TREES scale) × 2 thread
        // counts × 4 schedulers.
        let cells = snapshot.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 3 * 2 * 4);
        assert_eq!(config.file_name(), "BENCH_unit.json");

        // The snapshot survives a serialization round-trip intact.
        let reparsed = Value::parse(&snapshot.render_pretty()).unwrap();
        assert_eq!(reparsed, snapshot);
        validate_bench(&reparsed).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_snapshots() {
        let mut config = BenchConfig::quick();
        config.threads = vec![1];
        let good = run_bench(&config).unwrap();

        let mut wrong_schema = good.clone();
        wrong_schema.set("schema", Value::Str("oocts-bench/v0".to_string()));
        assert!(validate_bench(&wrong_schema)
            .unwrap_err()
            .contains("schema"));

        let mut no_cells = good.clone();
        no_cells.set("cells", Value::Array(Vec::new()));
        assert!(validate_bench(&no_cells).unwrap_err().contains("cells"));

        let mut bad_cell = good.clone();
        let mut cells = match bad_cell.get("cells") {
            Some(Value::Array(c)) => c.clone(),
            _ => unreachable!(),
        };
        cells[0].set("total_io", Value::Str("lots".to_string()));
        bad_cell.set("cells", Value::Array(cells));
        let err = validate_bench(&bad_cell).unwrap_err();
        assert!(err.contains("cells[0].total_io"), "{err}");

        assert!(validate_bench(&Value::Null).is_err());
    }

    #[test]
    fn snapshot_cells_carry_a_valid_engine_object() {
        let mut config = BenchConfig::quick();
        config.label = "engine-unit".to_string();
        config.threads = vec![2];
        let snapshot = run_bench(&config).expect("paper bounds are feasible");
        validate_bench(&snapshot).expect("schema-valid with engine objects");
        let cells = snapshot.get("cells").unwrap().as_array().unwrap();
        for cell in cells {
            let engine = cell.get("engine").expect("engine runs attach stats");
            assert_eq!(engine.get("granularity").unwrap().as_str(), Some("Cell"));
            assert_eq!(engine.get("threads").unwrap().as_u64(), Some(2));
            // Every cell of the matrix was executed by some worker.
            let cells_run = engine.get("cells").unwrap().as_u64().unwrap();
            let instances = cell.get("instances").unwrap().as_u64().unwrap();
            assert_eq!(cells_run, instances * 4);
            let executed = engine.get("executed").unwrap().as_u64().unwrap();
            assert_eq!(executed, instances * 5, "4 solve cells + 1 prep each");
        }
    }

    #[test]
    fn imbalanced_grid_is_deterministic_across_shardings() {
        let base = {
            let mut c = BenchConfig::quick();
            c.imbalanced = true;
            c.threads = vec![4];
            c
        };
        let cell = run_bench(&base).expect("feasible");
        let instance = {
            let mut c = base.clone();
            c.granularity = Granularity::Instance;
            run_bench(&c).expect("feasible")
        };
        for snap in [&cell, &instance] {
            validate_bench(snap).expect("IMBAL snapshots are schema-valid");
        }
        let cells_of = |snap: &Value| match snap.get("cells") {
            Some(Value::Array(c)) => c.clone(),
            _ => unreachable!(),
        };
        let (a, b) = (cells_of(&cell), cells_of(&instance));
        assert_eq!(a.len(), 3, "one IMBAL run x 3 IMBAL_SCHEDULERS");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.get("family").unwrap().as_str(), Some("IMBAL"));
            // Deterministic fields are sharding-independent...
            assert_eq!(x.get("total_io"), y.get("total_io"));
            assert_eq!(x.get("max_peak"), y.get("max_peak"));
            assert_eq!(x.get("instances"), y.get("instances"));
            // ...and so is the streamed CSV, byte for byte.
            assert_eq!(
                x.get("engine").unwrap().get("csv_fnv64"),
                y.get("engine").unwrap().get("csv_fnv64")
            );
            assert_eq!(
                y.get("engine")
                    .unwrap()
                    .get("granularity")
                    .unwrap()
                    .as_str(),
                Some("Instance")
            );
        }
    }

    #[test]
    fn streamed_csv_digest_matches_the_batch_export() {
        let run = imbalanced_run(&BenchConfig::quick());
        let registry = SchedulerRegistry::with_builtins();
        let mut exp = ExperimentConfig::new(
            registry.get_list(BENCH_SCHEDULERS).unwrap(),
            MemoryBound::Middle,
        );
        exp.threads = 3;
        let mut digest = Fnv64::new();
        digest.update(csv_header(&exp.scheduler_names()).as_bytes());
        let results = run_experiment_streaming(&run.instances, &exp, |row| {
            digest.update(row.csv_row().as_bytes());
        })
        .expect("feasible");
        let mut batch = Fnv64::new();
        batch.update(results.to_csv().as_bytes());
        assert_eq!(digest.render(), batch.render());
        assert!(digest.render().starts_with("0x"));
        assert_eq!(digest.render().len(), 18);
    }

    #[test]
    fn validator_rejects_malformed_engine_objects() {
        let mut config = BenchConfig::quick();
        config.threads = vec![1];
        config.imbalanced = true;
        let good = run_bench(&config).unwrap();

        let mut bad = good.clone();
        let mut cells = match bad.get("cells") {
            Some(Value::Array(c)) => c.clone(),
            _ => unreachable!(),
        };
        let mut engine = cells[0].get("engine").unwrap().clone();
        engine.set("csv_fnv64", Value::Str("not-hex".to_string()));
        cells[0].set("engine", engine);
        bad.set("cells", Value::Array(cells));
        let err = validate_bench(&bad).unwrap_err();
        assert!(err.contains("cells[0].engine.csv_fnv64"), "{err}");

        let mut bad_gran = good.clone();
        let mut cells = match bad_gran.get("cells") {
            Some(Value::Array(c)) => c.clone(),
            _ => unreachable!(),
        };
        let mut engine = cells[1].get("engine").unwrap().clone();
        engine.set("granularity", Value::Str("Sideways".to_string()));
        cells[1].set("engine", engine);
        bad_gran.set("cells", Value::Array(cells));
        let err = validate_bench(&bad_gran).unwrap_err();
        assert!(err.contains("engine.granularity"), "{err}");

        // A cell with no engine object at all stays valid (pre-engine
        // snapshots must keep validating).
        let mut no_engine = good.clone();
        let mut cells = match no_engine.get("cells") {
            Some(Value::Array(c)) => c.clone(),
            _ => unreachable!(),
        };
        for cell in &mut cells {
            if let Value::Object(entries) = cell {
                entries.retain(|(k, _)| k != "engine");
            }
        }
        no_engine.set("cells", Value::Array(cells));
        validate_bench(&no_engine).expect("engine is optional");
    }

    #[test]
    fn corpus_is_deterministic_and_golden_covers_every_cell() {
        let a = corpus_instances(7);
        let b = corpus_instances(7);
        assert_eq!(a.len(), 8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.tree, y.tree);
        }
        let golden = corpus_golden(&a).expect("corpus instances are feasible");
        assert_eq!(golden.len(), a.len() * builtin_schedulers().len());
        assert!(golden.iter().any(|r| r.scheduler == "FullRecExpand"));
        assert!(golden
            .iter()
            .all(|r| r.peak_memory >= 1 && r.instance.starts_with("corpus-")));
    }
}
