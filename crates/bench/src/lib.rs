//! # oocts-bench — figure regeneration and runtime benchmarks
//!
//! One binary per figure of the paper (see the workspace DESIGN.md for the
//! experiment index), all sharing the machinery of this library crate:
//!
//! | binary | paper figure |
//! |---|---|
//! | `fig02_counterexamples` | Section 4.3/4.4, Figure 2(a)/(b)/(c) |
//! | `fig04_synth_mid` | Figure 4 (SYNTH, M = (LB+Peak−1)/2) |
//! | `fig05_trees_mid` | Figure 5 (TREES, same bound) |
//! | `fig08_synth_lb` | Figure 8 (SYNTH, M1 = LB) |
//! | `fig09_trees_lb` | Figure 9 (TREES, M1 = LB) |
//! | `fig10_synth_peak` | Figure 10 (SYNTH, M2 = Peak − 1) |
//! | `fig11_trees_peak` | Figure 11 (TREES, M2 = Peak − 1) |
//! | `figA_examples` | Appendix A, Figures 6 and 7 |
//!
//! Every binary accepts `--trees N`, `--nodes K`, `--scale S`, `--seed X`,
//! `--threads T`, `--algos a,b,c` (strategy selection through the
//! [`oocts_core::registry::SchedulerRegistry`], parameterized specs such as
//! `RecExpand(max_rounds=5)` included) and `--quick`; run with `--help` for
//! details. Output is a short ASCII performance-profile table plus a CSV
//! block, ready to be pasted into EXPERIMENTS.md.

//!
//! Besides the figure binaries, the `bench` binary runs the perf-trajectory
//! matrix of [`perf`] and emits schema-versioned `BENCH_<label>.json`
//! snapshots (plus the golden regression corpus under `tests/corpus/` with
//! `--emit-corpus`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod perf;

use std::sync::Arc;
use std::time::Instant;

use oocts_core::registry::SchedulerRegistry;
use oocts_core::scheduler::{FullRecExpand, OptMinMem, PostOrderMinIo, Scheduler};
use oocts_gen::dataset::{synth_dataset, trees_dataset, DatasetConfig};
use oocts_gen::paper;
use oocts_minmem::opt_min_mem;
use oocts_profile::bounds::MemoryBound;
use oocts_profile::runner::{run_experiment, ExperimentConfig, ExperimentResults};
use oocts_tree::{fif_io, Tree};

/// Command-line options shared by all figure binaries.
#[derive(Clone)]
pub struct Cli {
    /// Number of SYNTH instances.
    pub trees: usize,
    /// Number of nodes per SYNTH instance.
    pub nodes: usize,
    /// TREES dataset scale (1–4).
    pub scale: usize,
    /// Base random seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Include FullRecExpand in SYNTH runs (expensive).
    pub full: bool,
    /// Strategy selection (`--algos a,b,c`, resolved once through the
    /// scheduler registry at parse time); `None` keeps each figure's
    /// paper-default set.
    pub algos: Option<Vec<Arc<dyn Scheduler>>>,
}

impl std::fmt::Debug for Cli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cli")
            .field("trees", &self.trees)
            .field("nodes", &self.nodes)
            .field("scale", &self.scale)
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("full", &self.full)
            .field("algos", &self.algo_names())
            .finish()
    }
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            trees: 330,
            nodes: 3000,
            scale: 2,
            seed: 0x5eed,
            threads: 0,
            full: true,
            algos: None,
        }
    }
}

/// A command-line usage error from [`Cli::parse`]: the offending option and
/// what was wrong with its value. Rendered, it reads like
/// `--threads: invalid value "many" (expected a number)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// The option the error is about (e.g. `--threads`).
    pub option: String,
    /// What was wrong with it.
    pub message: String,
}

impl CliError {
    fn new(option: &str, message: impl Into<String>) -> CliError {
        CliError {
            option: option.to_string(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.option, self.message)
    }
}

impl std::error::Error for CliError {}

/// The one-line usage string shared by all figure binaries.
pub const USAGE: &str = "options: --trees N --nodes K --scale S --seed X --threads T \
                         --algos a,b,c --no-full --quick";

impl Cli {
    /// Parses the common command-line options; exits on `--help`.
    ///
    /// # Errors
    /// Returns a [`CliError`] on an unknown option, a missing value, or a
    /// value that does not parse (including `--algos` names the scheduler
    /// registry rejects). Binaries report it via [`Cli::parse_or_exit`].
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, CliError> {
        let mut cli = Cli::default();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| CliError::new(name, "missing value"))
            };
            fn number<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, CliError> {
                raw.parse().map_err(|_| {
                    CliError::new(name, format!("invalid value {raw:?} (expected a number)"))
                })
            }
            match arg.as_str() {
                "--trees" => cli.trees = number("--trees", value("--trees")?)?,
                "--nodes" => cli.nodes = number("--nodes", value("--nodes")?)?,
                "--scale" => cli.scale = number("--scale", value("--scale")?)?,
                "--seed" => cli.seed = number("--seed", value("--seed")?)?,
                "--threads" => cli.threads = number("--threads", value("--threads")?)?,
                "--algos" => {
                    let registry = SchedulerRegistry::with_builtins();
                    let list = value("--algos")?;
                    cli.algos = Some(
                        registry
                            .get_list(&list)
                            .map_err(|e| CliError::new("--algos", e.to_string()))?,
                    );
                }
                "--no-full" => cli.full = false,
                "--quick" => {
                    cli.trees = 30;
                    cli.nodes = 500;
                    cli.scale = 1;
                }
                "--help" | "-h" => {
                    println!("{USAGE}");
                    println!(
                        "registered schedulers: {}",
                        SchedulerRegistry::with_builtins().names().join(", ")
                    );
                    std::process::exit(0);
                }
                other => return Err(CliError::new(other, "unknown option")),
            }
        }
        Ok(cli)
    }

    /// [`Cli::parse`] for binaries: on a usage error, prints the error and
    /// the usage string to stderr and exits with code 2.
    pub fn parse_or_exit(args: impl IntoIterator<Item = String>) -> Cli {
        Cli::parse(args).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }

    /// The names of the schedulers selected with `--algos`; `None` if the
    /// flag was not given.
    pub fn algo_names(&self) -> Option<Vec<String>> {
        self.algos
            .as_ref()
            .map(|s| s.iter().map(|s| s.name()).collect())
    }

    fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig {
            synth_instances: self.trees,
            synth_nodes: self.nodes,
            trees_scale: self.scale,
            seed: self.seed,
        }
    }
}

/// The overhead thresholds at which profiles are tabulated (fractions).
pub const REPORT_THRESHOLDS: [f64; 9] = [0.0, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00, 2.00];

/// Runs the SYNTH experiment of the paper (Figures 4, 8 and 10 depending on
/// the memory bound) and returns the formatted report.
pub fn synth_figure(cli: &Cli, bound: MemoryBound, figure: &str) -> String {
    let started = Instant::now();
    let ds = synth_dataset(&cli.dataset_config());
    let instances: Vec<(String, Tree)> = ds.into_iter().map(|i| (i.name, i.tree)).collect();
    let mut config = ExperimentConfig::synth(bound);
    if let Some(schedulers) = &cli.algos {
        config.schedulers = schedulers.clone();
    } else if !cli.full {
        config
            .schedulers
            .retain(|s| s.name() != FullRecExpand.name());
    }
    config.threads = cli.threads;
    let results = run_experiment(&instances, &config)
        .expect("paper memory bounds are feasible by construction");
    render_report(figure, &results, started)
}

/// Runs the TREES experiment of the paper (Figures 5, 9 and 11 depending on
/// the memory bound) and returns the formatted report. The report includes
/// both the full profile and the profile restricted to instances on which the
/// algorithms differ (the right-hand plots of the paper).
pub fn trees_figure(cli: &Cli, bound: MemoryBound, figure: &str) -> String {
    let started = Instant::now();
    let ds = trees_dataset(&cli.dataset_config());
    let instances: Vec<(String, Tree)> = ds.into_iter().map(|i| (i.name, i.tree)).collect();
    let mut config = ExperimentConfig::trees(bound);
    if let Some(schedulers) = &cli.algos {
        config.schedulers = schedulers.clone();
    }
    config.threads = cli.threads;
    let results = run_experiment(&instances, &config)
        .expect("paper memory bounds are feasible by construction");
    let mut out = render_report(figure, &results, started);
    let differing = results.restricted_to_differing();
    out.push_str(&format!(
        "\n-- restricted to the {} instances where the heuristics differ --\n",
        differing.results.len()
    ));
    if !differing.results.is_empty() {
        out.push_str(&differing.profile().to_ascii(&REPORT_THRESHOLDS));
    }
    out
}

fn render_report(figure: &str, results: &ExperimentResults, started: Instant) -> String {
    let profile = results.profile();
    let mut out = String::new();
    out.push_str(&format!(
        "=== {figure} — memory bound {}, {} instances, {} algorithms, {:.1}s ===\n",
        results.bound,
        results.results.len(),
        results.schedulers.len(),
        started.elapsed().as_secs_f64()
    ));
    out.push_str(&profile.to_ascii(&REPORT_THRESHOLDS));
    out.push('\n');
    for (a, name) in results.scheduler_names().iter().enumerate() {
        out.push_str(&format!(
            "{:<18} win-rate {:>6.1}%   mean overhead {:>7.2}%\n",
            name,
            profile.win_rate(a) * 100.0,
            profile.mean_overhead(a) * 100.0
        ));
    }
    out.push_str("\nCSV profile:\n");
    out.push_str(&profile.to_csv(&REPORT_THRESHOLDS));
    out
}

/// Reproduces the counterexamples of Sections 4.3 and 4.4 (Figure 2):
/// the best postorder against the 1-I/O reference on the Figure 2(a) family,
/// and OptMinMem against the 2k-I/O reference on the Figure 2(c) family.
pub fn counterexamples_report() -> String {
    let mut out = String::new();

    out.push_str("=== Figure 2(a) family: postorder traversals are not competitive ===\n");
    out.push_str("levels  nodes   M  reference_io  postorder_io  ratio\n");
    let m = 64;
    for levels in [0usize, 2, 4, 8, 16, 32] {
        let (tree, reference) = paper::fig2a_family(levels, m);
        let ref_io = fif_io(&tree, &reference, m).unwrap().total_io;
        let po = PostOrderMinIo.solve(&tree, m).unwrap();
        out.push_str(&format!(
            "{levels:>6}  {:>5}  {m:>2}  {ref_io:>12}  {:>12}  {:>5.1}\n",
            tree.len(),
            po.io_volume,
            po.io_volume as f64 / ref_io.max(1) as f64
        ));
    }

    out.push_str("\n=== Figure 2(b): OptMinMem trades 1 unit of peak for extra I/O (M = 6) ===\n");
    {
        let tree = paper::fig2b();
        let m = paper::FIG2B_MEMORY;
        let po = oocts_tree::Schedule::postorder(&tree);
        let po_io = fif_io(&tree, &po, m).unwrap().total_io;
        let po_peak = oocts_tree::peak_memory(&tree, &po).unwrap();
        let (mm_sched, mm_peak) = opt_min_mem(&tree);
        let mm_io = fif_io(&tree, &mm_sched, m).unwrap().total_io;
        out.push_str(&format!(
            "one chain after the other: peak {po_peak}, {po_io} I/Os\n\
             OptMinMem:                 peak {mm_peak}, {mm_io} I/Os\n"
        ));
    }

    out.push_str("\n=== Figure 2(c) family: OptMinMem is not competitive (M = 4k) ===\n");
    out.push_str("    k  nodes     M  reference_io  optminmem_io  ratio  k(k+1)\n");
    for k in [2u64, 4, 8, 16, 32, 64] {
        let (tree, reference, m) = paper::fig2c_family(k);
        let ref_io = fif_io(&tree, &reference, m).unwrap().total_io;
        let mm = OptMinMem.solve(&tree, m).unwrap();
        out.push_str(&format!(
            "{k:>5}  {:>5}  {m:>4}  {ref_io:>12}  {:>12}  {:>5.1}  {:>6}\n",
            tree.len(),
            mm.io_volume,
            mm.io_volume as f64 / ref_io.max(1) as f64,
            k * (k + 1)
        ));
    }
    out
}

/// Ablation study (not a paper figure): how the quality of `RecExpand`
/// changes with the number of expansion iterations allowed per node
/// (the paper fixes this to 2; `FullRecExpand` is the unbounded limit).
///
/// Reports, for a small SYNTH-like set, the total I/O volume summed over the
/// dataset and the average performance for each iteration limit.
pub fn recexpand_ablation_report(cli: &Cli) -> String {
    use oocts_core::recexpand::rec_expand_with_limit;
    use oocts_profile::bounds::MemoryBounds;

    let cfg = DatasetConfig {
        synth_instances: cli.trees.min(40),
        synth_nodes: cli.nodes.min(1000),
        trees_scale: 1,
        seed: cli.seed,
    };
    let instances = synth_dataset(&cfg);
    let limits: [Option<usize>; 5] = [Some(1), Some(2), Some(3), Some(5), None];

    let mut out = String::new();
    out.push_str(&format!(
        "=== RecExpand ablation: expansion-iteration limit ({} trees of {} nodes, M = mid) ===\n",
        cfg.synth_instances, cfg.synth_nodes
    ));
    out.push_str("limit      total_io     mean_perf   expansions\n");
    for limit in limits {
        let mut total_io = 0u64;
        let mut perf_sum = 0.0;
        let mut expansions = 0usize;
        for inst in &instances {
            let bounds = MemoryBounds::of(&inst.tree);
            let memory = bounds.memory(MemoryBound::Middle);
            let outcome = rec_expand_with_limit(&inst.tree, memory, limit).expect("feasible");
            let io = fif_io(&inst.tree, &outcome.schedule, memory)
                .unwrap()
                .total_io;
            total_io += io;
            perf_sum += oocts_profile::metric::performance(memory, io);
            expansions += outcome.expansions;
        }
        let label = match limit {
            Some(l) => format!("{l}"),
            None => "full".to_string(),
        };
        out.push_str(&format!(
            "{label:<8} {total_io:>11} {:>13.5} {expansions:>12}\n",
            perf_sum / instances.len() as f64
        ));
    }
    out
}

/// Reproduces the worked examples of Appendix A (Figures 6 and 7).
pub fn appendix_examples_report() -> String {
    let mut out = String::new();
    let cases = [
        ("Figure 6", paper::fig6(), paper::FIG6_MEMORY),
        ("Figure 7", paper::fig7(), paper::FIG7_MEMORY),
    ];
    for (name, tree, m) in cases {
        out.push_str(&format!("=== {name} (M = {m}) ===\n"));
        let (_, opt) = oocts_core::brute_force_min_io(&tree, m).unwrap();
        out.push_str(&format!("optimal I/O volume: {opt}\n"));
        for scheduler in oocts_core::scheduler::synth_schedulers() {
            let report = scheduler.solve(&tree, m).unwrap();
            out.push_str(&format!(
                "{:<18} {:>3} I/Os\n",
                report.scheduler, report.io_volume
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_parses_options() {
        let cli = parse(&["--trees", "5", "--nodes", "100", "--seed", "9", "--no-full"]).unwrap();
        assert_eq!(cli.trees, 5);
        assert_eq!(cli.nodes, 100);
        assert_eq!(cli.seed, 9);
        assert!(!cli.full);
        let quick = parse(&["--quick"]).unwrap();
        assert_eq!(quick.trees, 30);
    }

    #[test]
    fn cli_rejects_unknown_options() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert_eq!(err.option, "--bogus");
        assert_eq!(err.message, "unknown option");
    }

    #[test]
    fn cli_rejects_bad_numeric_values() {
        let err = parse(&["--threads", "many"]).unwrap_err();
        assert_eq!(err.option, "--threads");
        assert!(err.message.contains("\"many\""), "{err}");
        assert!(err.message.contains("expected a number"), "{err}");
        let err = parse(&["--scale", "2.5"]).unwrap_err();
        assert_eq!(err.option, "--scale");
        let err = parse(&["--trees", "-3"]).unwrap_err();
        assert_eq!(err.option, "--trees");
        // The rendered form names the flag, so the user knows what to fix.
        assert!(err.to_string().starts_with("--trees: "), "{err}");
    }

    #[test]
    fn cli_rejects_missing_values() {
        let err = parse(&["--seed"]).unwrap_err();
        assert_eq!(err.option, "--seed");
        assert_eq!(err.message, "missing value");
        let err = parse(&["--algos"]).unwrap_err();
        assert_eq!(err.option, "--algos");
    }

    #[test]
    fn cli_resolves_algos_through_the_registry() {
        let cli = parse(&["--algos", "postorderminio,RecExpand(max_rounds=4)"]).unwrap();
        assert_eq!(
            cli.algo_names().unwrap(),
            ["PostOrderMinIO", "RecExpand(max_rounds=4)"]
        );
        let schedulers = cli.algos.as_ref().unwrap();
        assert_eq!(schedulers.len(), 2);
        assert_eq!(schedulers[1].name(), "RecExpand(max_rounds=4)");
    }

    #[test]
    fn cli_rejects_unknown_algos() {
        let err = parse(&["--algos", "NoSuchScheduler"]).unwrap_err();
        assert_eq!(err.option, "--algos");
        assert!(err.message.contains("NoSuchScheduler"), "{err}");
    }

    #[test]
    fn synth_figure_honours_algo_selection() {
        let mut cli =
            Cli::parse(["--quick", "--algos", "PostOrderMinIO,OptMinMem"].map(str::to_string))
                .unwrap();
        cli.trees = 4;
        cli.nodes = 150;
        let report = synth_figure(&cli, MemoryBound::Middle, "Figure 4 (selected)");
        assert!(report.contains("2 algorithms"));
        assert!(report.contains("PostOrderMinIO"));
        assert!(!report.contains("RecExpand"));
    }

    #[test]
    fn counterexample_report_shows_growing_ratio() {
        let report = counterexamples_report();
        assert!(report.contains("Figure 2(a)"));
        assert!(report.contains("Figure 2(c)"));
        assert!(report.contains("OptMinMem"));
    }

    #[test]
    fn appendix_report_contains_both_examples() {
        let report = appendix_examples_report();
        assert!(report.contains("Figure 6"));
        assert!(report.contains("Figure 7"));
        assert!(report.contains("optimal I/O volume: 3"));
    }

    #[test]
    fn ablation_report_runs_and_is_monotone_in_spirit() {
        let mut cli = Cli::parse(["--quick".to_string()]).unwrap();
        cli.trees = 5;
        cli.nodes = 200;
        let report = recexpand_ablation_report(&cli);
        assert!(report.contains("RecExpand ablation"));
        // One line per limit plus the two headers.
        assert_eq!(report.lines().count(), 2 + 5);
    }

    #[test]
    fn synth_figure_quick_run() {
        let mut cli = Cli::parse(["--quick".to_string()]).unwrap();
        cli.trees = 6;
        cli.nodes = 200;
        cli.full = false;
        let report = synth_figure(&cli, MemoryBound::Middle, "Figure 4 (quick)");
        assert!(report.contains("Figure 4"));
        assert!(report.contains("PostOrderMinIO"));
        assert!(report.contains("CSV profile"));
    }

    #[test]
    fn trees_figure_quick_run() {
        let mut cli = Cli::parse(["--quick".to_string()]).unwrap();
        cli.scale = 1;
        cli.threads = 0;
        let report = trees_figure(&cli, MemoryBound::Middle, "Figure 5 (quick)");
        assert!(report.contains("Figure 5"));
        assert!(report.contains("restricted to"));
    }
}
