//! Regenerates Figure 11 of the paper (trees dataset, BelowPeak memory bound).
use oocts_bench::{trees_figure, Cli};
use oocts_profile::bounds::MemoryBound;

fn main() {
    let cli = Cli::parse_or_exit(std::env::args().skip(1));
    let report = trees_figure(&cli, MemoryBound::BelowPeak, "Figure 11");
    println!("{report}");
}
