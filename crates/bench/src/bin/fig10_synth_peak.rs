//! Regenerates Figure 10 of the paper (synth dataset, BelowPeak memory bound).
use oocts_bench::{synth_figure, Cli};
use oocts_profile::bounds::MemoryBound;

fn main() {
    let cli = Cli::parse_or_exit(std::env::args().skip(1));
    let report = synth_figure(&cli, MemoryBound::BelowPeak, "Figure 10");
    println!("{report}");
}
