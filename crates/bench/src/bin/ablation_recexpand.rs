//! Ablation (not a paper figure): sensitivity of `RecExpand` to the number of
//! expansion iterations allowed per node — the design choice DESIGN.md calls
//! out (the paper uses 2; `FullRecExpand` is the unbounded limit).
use oocts_bench::{recexpand_ablation_report, Cli};

fn main() {
    let cli = Cli::parse_or_exit(std::env::args().skip(1));
    println!("{}", recexpand_ablation_report(&cli));
}
