//! Regenerates the counterexample study of Sections 4.3 and 4.4 (Figure 2).
fn main() {
    println!("{}", oocts_bench::counterexamples_report());
}
