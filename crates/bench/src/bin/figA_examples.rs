//! Regenerates the worked examples of Appendix A (Figures 6 and 7).
fn main() {
    println!("{}", oocts_bench::appendix_examples_report());
}
