//! Perf-trajectory benchmark harness.
//!
//! Runs the fixed (family × size × scheduler × threads) matrix of
//! [`oocts_bench::perf`] and writes a schema-versioned snapshot next to the
//! current directory:
//!
//! ```text
//! cargo run --release -p oocts-bench --bin bench -- --quick --label ci
//! # -> BENCH_ci.json
//! ```
//!
//! Modes:
//!
//! * default — run the matrix, validate the snapshot in-process, write
//!   `BENCH_<label>.json` (options: `--quick`, `--label L`, `--seed X`,
//!   `--threads a,b,c`, `--imbalanced`, `--sharding instance|cell`);
//! * `--validate FILE` — parse and schema-check an existing snapshot, exit
//!   non-zero on violation (the CI gate);
//! * `--emit-corpus DIR` — regenerate the golden regression corpus
//!   (`*.tree` snapshots + `golden.tsv`) into `DIR`; the committed copy
//!   lives in `tests/corpus/`.
//!
//! The `BENCH_pr10_before.json` / `BENCH_pr10.json` pair at the repository
//! root was produced with:
//!
//! ```text
//! bench --imbalanced --threads 8 --sharding instance --label pr10_before
//! bench --imbalanced --threads 8 --sharding cell     --label pr10
//! ```
//!
//! Usage errors exit with code 2.

use std::path::Path;
use std::process::ExitCode;

use oocts_bench::perf::{corpus_golden, corpus_instances, run_bench, validate_bench, BenchConfig};
use oocts_gen::corpus::{format_golden, format_instance};
use oocts_profile::engine::Granularity;
use serde::value::Value;

const USAGE: &str = "usage: bench [--quick] [--label L] [--seed X] [--threads a,b,c] \
                     [--imbalanced] [--sharding instance|cell]\n\
                     \x20      bench --validate BENCH_x.json\n\
                     \x20      bench --emit-corpus tests/corpus";

/// What the command line asked for.
enum Mode {
    Run(BenchConfig),
    Validate(String),
    EmitCorpus(String, BenchConfig),
    Help,
}

/// Parses the bench command line; a `String` error is a usage error.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Mode, String> {
    let mut config = BenchConfig::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--imbalanced" => config.imbalanced = true,
            "--label" => config.label = value("--label")?,
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?;
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|_| "--threads wants numbers"))
                    .collect::<Result<_, _>>()?;
                if config.threads.is_empty() {
                    return Err("--threads wants numbers".to_string());
                }
            }
            "--sharding" => {
                config.granularity = match value("--sharding")?.as_str() {
                    "cell" => Granularity::Cell,
                    "instance" => Granularity::Instance,
                    other => {
                        return Err(format!(
                            "--sharding wants 'instance' or 'cell', found {other:?}"
                        ))
                    }
                };
            }
            "--validate" => return Ok(Mode::Validate(value("--validate")?)),
            "--emit-corpus" => return Ok(Mode::EmitCorpus(value("--emit-corpus")?, config)),
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Mode::Run(config))
}

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(Mode::Run(config)) => config,
        Ok(Mode::Validate(path)) => return validate_file(Path::new(&path)),
        Ok(Mode::EmitCorpus(dir, config)) => return emit_corpus(Path::new(&dir), &config),
        Ok(Mode::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("bench: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let snapshot = match run_bench(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_bench(&snapshot) {
        eprintln!("bench: emitted snapshot violates the schema: {e}");
        return ExitCode::FAILURE;
    }
    let path = config.file_name();
    if let Err(e) = std::fs::write(&path, snapshot.render_pretty()) {
        eprintln!("bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    let cells = snapshot
        .get("cells")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    println!("bench: wrote {path} ({cells} cells)");
    ExitCode::SUCCESS
}

/// `--validate FILE`: parse + schema-check an existing snapshot.
fn validate_file(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench: {} is not JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match validate_bench(&snapshot) {
        Ok(()) => {
            println!("bench: {} is a valid oocts-bench snapshot", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench: {} violates the schema: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// `--emit-corpus DIR`: regenerate the golden regression corpus.
fn emit_corpus(dir: &Path, config: &BenchConfig) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("bench: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let instances = corpus_instances(config.seed);
    let golden = match corpus_golden(&instances) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    for inst in &instances {
        let text = match format_instance(&inst.name, &inst.tree) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = dir.join(format!("{}.tree", inst.name));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("bench: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let golden_path = dir.join("golden.tsv");
    if let Err(e) = std::fs::write(&golden_path, format_golden(&golden)) {
        eprintln!("bench: cannot write {}: {e}", golden_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "bench: wrote {} instances and {} golden records to {}",
        instances.len(),
        golden.len(),
        dir.display()
    );
    ExitCode::SUCCESS
}
