//! Throughput of the task-tree substrate: the FiF out-of-core simulator and
//! the in-core memory profiler, on large random binary trees.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use oocts_gen::random_binary_tree;
use oocts_profile::bounds::{MemoryBound, MemoryBounds};
use oocts_tree::{fif_io, peak_memory, Schedule};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[1_000usize, 10_000, 50_000] {
        let tree = random_binary_tree(n, 1..=100, 7);
        let schedule = Schedule::postorder(&tree);
        let bounds = MemoryBounds::of(&tree);
        let memory = bounds.memory(MemoryBound::Middle);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("peak_memory", n), &n, |b, _| {
            b.iter(|| peak_memory(&tree, &schedule).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fif_io", n), &n, |b, _| {
            b.iter(|| fif_io(&tree, &schedule, memory).unwrap().total_io)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
