//! Cost of the sparse multifrontal substrate: elimination tree, symbolic
//! factorization and assembly-tree construction on grid Laplacians.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oocts_sparse::ordering::nested_dissection_2d;
use oocts_sparse::{
    assembly_tree, column_counts, elimination_tree, grid_laplacian_2d, AssemblyOptions,
};

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &side in &[30usize, 60, 100] {
        let pattern = grid_laplacian_2d(side, side, false);
        let permuted = pattern.permute(&nested_dissection_2d(side, side));
        group.bench_with_input(BenchmarkId::new("etree", side * side), &side, |b, _| {
            b.iter(|| elimination_tree(&permuted))
        });
        let parent = elimination_tree(&permuted);
        group.bench_with_input(
            BenchmarkId::new("column_counts", side * side),
            &side,
            |b, _| b.iter(|| column_counts(&permuted, &parent)),
        );
        group.bench_with_input(
            BenchmarkId::new("assembly_tree", side * side),
            &side,
            |b, _| {
                b.iter(|| {
                    assembly_tree(&permuted, AssemblyOptions::default())
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sparse);
criterion_main!(benches);
