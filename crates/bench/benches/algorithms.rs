//! Runtime scaling of the scheduling algorithms (not a paper figure; an
//! ablation documenting the cost of each strategy on growing random binary
//! trees with the paper's weight distribution).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oocts_core::scheduler::{
    FullRecExpand, OptMinMem, PostOrderMinIo, PostOrderMinMem, RecExpand, Scheduler,
};
use oocts_gen::random_binary_tree;
use oocts_profile::bounds::{MemoryBound, MemoryBounds};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[100usize, 300, 1000, 3000] {
        let tree = random_binary_tree(n, 1..=100, 42);
        let bounds = MemoryBounds::of(&tree);
        let memory = bounds.memory(MemoryBound::Middle);
        let schedulers: [&dyn Scheduler; 4] = [
            &PostOrderMinIo,
            &PostOrderMinMem,
            &OptMinMem,
            &RecExpand::PAPER,
        ];
        for scheduler in schedulers {
            group.bench_with_input(
                BenchmarkId::new(scheduler.name(), n),
                &(&tree, memory),
                |b, (tree, memory)| b.iter(|| scheduler.solve(tree, *memory).unwrap().io_volume),
            );
        }
        // FullRecExpand only on the smaller sizes (it is the expensive one).
        if n <= 1000 {
            group.bench_with_input(
                BenchmarkId::new("FullRecExpand", n),
                &(&tree, memory),
                |b, (tree, memory)| {
                    b.iter(|| FullRecExpand.solve(tree, *memory).unwrap().io_volume)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
