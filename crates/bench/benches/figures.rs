//! End-to-end benchmark of the figure-regeneration pipelines on reduced
//! configurations: `cargo bench` therefore exercises the code path behind
//! every table and figure of the paper (the full-scale runs are produced by
//! the `fig*` binaries).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use oocts_bench::{
    appendix_examples_report, counterexamples_report, synth_figure, trees_figure, Cli,
};
use oocts_profile::bounds::MemoryBound;

fn quick_cli() -> Cli {
    let mut cli = Cli::parse(["--quick".to_string()]).expect("--quick parses");
    cli.trees = 8;
    cli.nodes = 300;
    cli.scale = 1;
    cli.full = false;
    cli
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("fig02_counterexamples", |b| b.iter(counterexamples_report));
    group.bench_function("figA_appendix_examples", |b| {
        b.iter(appendix_examples_report)
    });
    let cli = quick_cli();
    for (name, bound) in [
        ("fig04_synth_mid", MemoryBound::Middle),
        ("fig08_synth_lb", MemoryBound::LowerBound),
        ("fig10_synth_peak", MemoryBound::BelowPeak),
    ] {
        group.bench_function(name, |b| b.iter(|| synth_figure(&cli, bound, name)));
    }
    for (name, bound) in [
        ("fig05_trees_mid", MemoryBound::Middle),
        ("fig09_trees_lb", MemoryBound::LowerBound),
        ("fig11_trees_peak", MemoryBound::BelowPeak),
    ] {
        group.bench_function(name, |b| b.iter(|| trees_figure(&cli, bound, name)));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
