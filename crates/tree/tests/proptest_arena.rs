//! Differential property tests for the flat arena `Tree`.
//!
//! The arena stores everything as flat arrays (SoA weights, CSR children,
//! precomputed postorder/size/depth). These tests rebuild every derived
//! quantity with a deliberately naive reference model straight from the
//! `(weights, parents)` arrays and assert the arena agrees on trees of up to
//! 10 000 nodes across strongly skewed shapes (chains, stars, power-law
//! attachment), plus byte-identical round-trips through the corpus text
//! format.

use oocts_gen::corpus::{format_instance, parse_instance};
use oocts_tree::{NodeId, Tree, TreeBuilder};
use proptest::prelude::*;

/// Splitmix-style generator: cheap, deterministic, good enough to produce
/// adversarial shapes from a proptest-sampled seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parent arrays with node 0 as root and `parent(i) < i`, drawn from one of
/// four arity regimes so CSR ranges see both very long and very wide rows:
///
/// * `0` — uniform attachment (random recursive tree, arity ~ log n);
/// * `1` — chain-biased: 7 out of 8 nodes extend the previous node;
/// * `2` — star-biased: the parent index is squared towards 0, producing a
///   few nodes of huge arity;
/// * `3` — bounded fan-out: parent drawn from the last 4 nodes only.
fn parents_for(n: usize, mode: u64, seed: u64) -> Vec<Option<usize>> {
    let mut state = seed ^ (n as u64).rotate_left(17) ^ mode.rotate_left(43);
    let mut parents = vec![None; n];
    for (i, slot) in parents.iter_mut().enumerate().skip(1) {
        let r = next(&mut state);
        let p = match mode {
            0 => (r % i as u64) as usize,
            1 => {
                if r.is_multiple_of(8) {
                    (next(&mut state) % i as u64) as usize
                } else {
                    i - 1
                }
            }
            2 => {
                let u = (r % i as u64) as f64 / i as f64;
                ((u * u * i as f64) as usize).min(i - 1)
            }
            _ => i - 1 - (r % 4.min(i as u64)) as usize,
        };
        *slot = Some(p);
    }
    parents
}

/// Strategy: `(weights, parents)` raw arrays for trees of `1..=max_nodes`
/// nodes. Returning the arrays (not the `Tree`) lets each property rebuild
/// both the arena and the reference model from identical inputs.
fn raw_tree(max_nodes: usize) -> impl Strategy<Value = (Vec<u64>, Vec<Option<usize>>)> {
    (1..=max_nodes, 0u64..4, 0u64..1 << 32).prop_map(|(n, mode, seed)| {
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ mode;
        let weights: Vec<u64> = (0..n).map(|_| 1 + next(&mut state) % 50).collect();
        (weights, parents_for(n, mode, seed))
    })
}

/// Naive reference model: every derived quantity recomputed with the most
/// obvious algorithm, independent of the arena's CSR/postorder machinery.
struct RefModel {
    weights: Vec<u64>,
    parents: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    subtree_size: Vec<usize>,
    postorder: Vec<usize>,
}

impl RefModel {
    fn new(weights: &[u64], parents: &[Option<usize>]) -> Self {
        let n = weights.len();
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = *p {
                children[p].push(i);
            }
        }
        // The generators guarantee `parent(i) < i`, so a single index-order
        // pass computes depths and a reverse pass accumulates subtree sizes.
        let mut depth = vec![0usize; n];
        for i in 1..n {
            depth[i] = depth[parents[i].unwrap()] + 1;
        }
        let mut subtree_size = vec![1usize; n];
        for i in (1..n).rev() {
            subtree_size[parents[i].unwrap()] += subtree_size[i];
        }
        let mut model = RefModel {
            weights: weights.to_vec(),
            parents: parents.to_vec(),
            children,
            depth,
            subtree_size,
            postorder: Vec::with_capacity(n),
        };
        model.collect_postorder(0);
        model
    }

    /// Recursive DFS postorder visiting children in insertion order — the
    /// textbook definition the arena's iterative traversal must reproduce.
    fn collect_postorder(&mut self, node: usize) {
        for c in 0..self.children[node].len() {
            self.collect_postorder(self.children[node][c]);
        }
        self.postorder.push(node);
    }

    fn children_weight(&self, node: usize) -> u64 {
        self.children[node].iter().map(|&c| self.weights[c]).sum()
    }

    fn subtree_postorder(&self, root: usize) -> Vec<usize> {
        // Membership via an explicit DFS over the children lists, then a
        // filter of the global postorder — O(n) per query, no reliance on
        // the arena's contiguity claim being tested.
        let mut in_subtree = vec![false; self.weights.len()];
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            in_subtree[v] = true;
            stack.extend(self.children[v].iter().copied());
        }
        self.postorder
            .iter()
            .copied()
            .filter(|&v| in_subtree[v])
            .collect()
    }
}

/// Asserts every arena accessor against the reference model.
fn assert_matches(tree: &Tree, model: &RefModel) {
    let n = model.weights.len();
    assert_eq!(tree.len(), n);
    assert_eq!(tree.root(), NodeId(0));
    tree.validate().unwrap();

    // Whole-tree postorder: identical sequence, and `postorder_position` is
    // its inverse permutation.
    let arena_post: Vec<usize> = tree.postorder().iter().map(|id| id.index()).collect();
    assert_eq!(arena_post, model.postorder);
    for (pos, &id) in tree.postorder().iter().enumerate() {
        assert_eq!(tree.postorder_position(id), pos);
    }

    let mut max_depth = 0;
    for i in 0..n {
        let id = NodeId(u32::try_from(i).unwrap());
        assert_eq!(tree.weight(id), model.weights[i]);
        assert_eq!(tree.parent(id).map(|p| p.index()), model.parents[i]);
        let kids: Vec<usize> = tree.children(id).iter().map(|c| c.index()).collect();
        assert_eq!(kids, model.children[i], "children of node {i}");
        assert_eq!(tree.children_weight(id), model.children_weight(i));
        assert_eq!(
            tree.execution_weight(id),
            model.weights[i].max(model.children_weight(i))
        );
        assert_eq!(tree.subtree_size(id), model.subtree_size[i]);
        assert_eq!(tree.depth(id), model.depth[i]);
        max_depth = max_depth.max(model.depth[i]);
    }
    assert_eq!(tree.height(), max_depth);

    // Subtree postorders are contiguous slices of the global postorder;
    // cross-check a handful of nodes (root, a leaf, a stride sample) against
    // the O(n·h) reference filter.
    let stride = (n / 7).max(1);
    for i in (0..n).step_by(stride).chain([0, n - 1]) {
        let id = NodeId(u32::try_from(i).unwrap());
        let arena_sub: Vec<usize> = tree
            .subtree_postorder(id)
            .iter()
            .map(|c| c.index())
            .collect();
        assert_eq!(arena_sub, model.subtree_postorder(i), "subtree of node {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Small trees, exhaustively cross-checked: every accessor of every node
    /// against the naive model.
    #[test]
    fn arena_matches_reference_model_small(raw in raw_tree(64)) {
        let (weights, parents) = raw;
        let tree = Tree::from_parents(&weights, &parents).unwrap();
        let model = RefModel::new(&weights, &parents);
        assert_matches(&tree, &model);
    }

    /// The corpus text format round-trips byte-identically: format → parse →
    /// re-format reproduces the exact bytes, and the parsed arena equals the
    /// one built by `TreeBuilder` from the same raw arrays.
    #[test]
    fn corpus_text_round_trip_is_byte_identical(raw in raw_tree(200)) {
        let (weights, parents) = raw;
        let mut builder = TreeBuilder::with_capacity(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            match parents[i] {
                None => builder.add_root(w),
                Some(p) => builder.add_child(NodeId(u32::try_from(p).unwrap()), w),
            };
        }
        let tree = builder.build().unwrap();

        let text = format_instance("prop-arena", &tree).unwrap();
        let parsed = parse_instance(&text).unwrap();
        assert_eq!(parsed.name, "prop-arena");
        assert_eq!(parsed.tree, tree, "parsing must rebuild the identical arena");
        let reformatted = format_instance(&parsed.name, &parsed.tree).unwrap();
        assert_eq!(reformatted, text, "round-trip must be byte-identical");
    }
}

proptest! {
    // Fewer cases for the large trees: each one walks up to 10k nodes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Large skewed trees (up to 10k nodes): chains drive the depth arrays
    /// and the iterative postorder, stars drive wide CSR rows.
    #[test]
    fn arena_matches_reference_model_large(raw in raw_tree(10_000)) {
        let (weights, parents) = raw;
        let tree = Tree::from_parents(&weights, &parents).unwrap();
        let model = RefModel::new(&weights, &parents);
        assert_matches(&tree, &model);
    }

    /// `set_weight` keeps the cached `children_weight` of the parent in sync
    /// with a full recomputation from scratch.
    #[test]
    fn set_weight_matches_rebuilt_tree(raw in raw_tree(500)) {
        let (mut weights, parents) = raw;
        let mut tree = Tree::from_parents(&weights, &parents).unwrap();
        let mut state = weights.iter().sum::<u64>() | 1;
        for _ in 0..8 {
            let i = (next(&mut state) % weights.len() as u64) as usize;
            let w = 1 + next(&mut state) % 100;
            weights[i] = w;
            tree.set_weight(NodeId(u32::try_from(i).unwrap()), w);
        }
        let rebuilt = Tree::from_parents(&weights, &parents).unwrap();
        assert_eq!(tree, rebuilt, "set_weight must leave a canonical arena");
    }
}
