//! Execution schedules (the `σ` part of a traversal).

use serde::{Deserialize, Serialize};

use crate::error::TreeError;
use crate::tree::{NodeId, Tree};

/// A sequential execution order of a set of tasks.
///
/// A schedule may cover the whole tree or only a subtree: the only structural
/// requirement (checked by [`Schedule::validate`]) is that whenever a node is
/// scheduled, all of its children are scheduled before it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    order: Vec<NodeId>,
}

impl Schedule {
    /// Wraps an execution order without validating it.
    pub fn new(order: Vec<NodeId>) -> Self {
        Schedule { order }
    }

    /// The postorder schedule of the whole tree (children in their stored
    /// order). Always valid.
    pub fn postorder(tree: &Tree) -> Self {
        Schedule {
            order: tree.postorder().to_vec(),
        }
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if the schedule contains no task.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The scheduled tasks, in execution order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Consumes the schedule and returns the underlying order.
    pub fn into_order(self) -> Vec<NodeId> {
        self.order
    }

    /// Iterator over the scheduled tasks in execution order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Execution step of each node, indexed by node id.
    ///
    /// Nodes that are not part of the schedule get `usize::MAX`, which sorts
    /// *after* every scheduled node — convenient for Furthest-in-the-Future
    /// comparisons where "parent outside the schedule" means "needed last".
    pub fn positions(&self, tree: &Tree) -> Vec<usize> {
        let mut pos = Vec::new();
        self.positions_into(tree, &mut pos);
        pos
    }

    /// Buffer-reusing variant of [`Schedule::positions`]: fills `pos` in
    /// place. Replay loops (RecExpand, the FiF scratch path) call this with
    /// a buffer that already has capacity, so the steady state is
    /// allocation-free.
    // lint: no_alloc
    pub fn positions_into(&self, tree: &Tree, pos: &mut Vec<usize>) {
        pos.clear();
        pos.resize(tree.len(), usize::MAX);
        for (step, node) in self.order.iter().enumerate() {
            pos[node.index()] = step;
        }
    }

    /// Checks that the schedule is a valid (partial) traversal order of
    /// `tree`: no duplicates, children scheduled before their parents, and for
    /// every scheduled non-leaf node all its children are scheduled.
    pub fn validate(&self, tree: &Tree) -> Result<(), TreeError> {
        let mut seen = vec![false; tree.len()];
        let pos = self.positions(tree);
        for &node in &self.order {
            if node.index() >= tree.len() {
                return Err(TreeError::UnknownNode(node));
            }
            if seen[node.index()] {
                return Err(TreeError::DuplicateNode(node));
            }
            seen[node.index()] = true;
        }
        for &node in &self.order {
            for &child in tree.children(node) {
                if !seen[child.index()] {
                    return Err(TreeError::MissingChild { node, child });
                }
                if pos[child.index()] >= pos[node.index()] {
                    return Err(TreeError::NotTopological(node));
                }
            }
        }
        Ok(())
    }

    /// `true` if the schedule is a postorder traversal of `tree`
    /// (paper, Section 3.1): for every node `i`, the nodes of the subtree
    /// rooted at `i` occupy a contiguous range of steps.
    pub fn is_postorder(&self, tree: &Tree) -> bool {
        if self.validate(tree).is_err() {
            return false;
        }
        let pos = self.positions(tree);
        // Compute for every scheduled node the minimum position in its
        // subtree; the traversal is a postorder iff for every node the span
        // [min position, own position] has exactly subtree-size many steps.
        let mut min_pos = vec![usize::MAX; tree.len()];
        let mut size = vec![0usize; tree.len()];
        for &node in &self.order {
            // order is topological, so children processed before parents when
            // iterating in schedule order.
            let mut mp = pos[node.index()];
            let mut sz = 1usize;
            for &c in tree.children(node) {
                mp = mp.min(min_pos[c.index()]);
                sz += size[c.index()];
            }
            min_pos[node.index()] = mp;
            size[node.index()] = sz;
            if pos[node.index()] + 1 - mp != sz {
                return false;
            }
        }
        true
    }
}

impl IntoIterator for Schedule {
    type Item = NodeId;
    type IntoIter = std::vec::IntoIter<NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.order.into_iter()
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.order.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        b.add_child(r, 2);
        b.build().unwrap()
    }

    #[test]
    fn postorder_schedule_is_valid_and_postorder() {
        let t = sample();
        let s = Schedule::postorder(&t);
        s.validate(&t).unwrap();
        assert!(s.is_postorder(&t));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn non_postorder_topological_order_detected() {
        let t = sample();
        // c(2), b(3), a(1), root(0): valid topological order...
        let s = Schedule::new(vec![NodeId(2), NodeId(3), NodeId(1), NodeId(0)]);
        s.validate(&t).unwrap();
        // ... but not a postorder: subtree of node 1 = {1, 2} is interrupted
        // by node 3.
        assert!(!s.is_postorder(&t));
    }

    #[test]
    fn invalid_orders_are_rejected() {
        let t = sample();
        let not_topo = Schedule::new(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(0)]);
        assert!(matches!(
            not_topo.validate(&t),
            Err(TreeError::NotTopological(_))
        ));
        let dup = Schedule::new(vec![NodeId(2), NodeId(2)]);
        assert!(matches!(dup.validate(&t), Err(TreeError::DuplicateNode(_))));
        let missing_child = Schedule::new(vec![NodeId(1), NodeId(0)]);
        assert!(matches!(
            missing_child.validate(&t),
            Err(TreeError::MissingChild { .. })
        ));
    }

    #[test]
    fn subtree_schedule_is_valid() {
        let t = sample();
        let s = Schedule::new(vec![NodeId(2), NodeId(1)]);
        s.validate(&t).unwrap();
        assert!(s.is_postorder(&t));
    }

    #[test]
    fn positions_mark_unscheduled_nodes() {
        let t = sample();
        let s = Schedule::new(vec![NodeId(2), NodeId(1)]);
        let pos = s.positions(&t);
        assert_eq!(pos[2], 0);
        assert_eq!(pos[1], 1);
        assert_eq!(pos[0], usize::MAX);
    }
}
