//! Graphviz (DOT) export of task trees, for debugging and documentation.

use std::fmt::Write as _;

use crate::schedule::Schedule;
use crate::tree::Tree;

/// Renders the tree in Graphviz DOT format. Node labels show `id / weight`.
pub fn to_dot(tree: &Tree) -> String {
    to_dot_impl(tree, None, None)
}

/// Renders the tree in DOT format with the execution step of each node (from
/// `schedule`) and its I/O amount (from `tau`, if provided) in the label —
/// mirrors the annotated figures of the paper.
pub fn to_dot_annotated(tree: &Tree, schedule: &Schedule, tau: Option<&[u64]>) -> String {
    to_dot_impl(tree, Some(schedule), tau)
}

fn to_dot_impl(tree: &Tree, schedule: Option<&Schedule>, tau: Option<&[u64]>) -> String {
    let positions = schedule.map(|s| s.positions(tree));
    let mut out = String::new();
    out.push_str("digraph tasktree {\n");
    out.push_str("  rankdir = BT;\n");
    out.push_str("  node [shape = circle];\n");
    for node in tree.node_ids() {
        let mut label = format!("{}\\nw={}", node.index(), tree.weight(node));
        if let Some(pos) = &positions {
            if pos[node.index()] != usize::MAX {
                let _ = write!(label, "\\nstep {}", pos[node.index()]);
            }
        }
        if let Some(tau) = tau {
            if tau[node.index()] > 0 {
                let _ = write!(label, "\\nio {}", tau[node.index()]);
            }
        }
        let _ = writeln!(out, "  n{} [label=\"{}\"];", node.index(), label);
    }
    for node in tree.node_ids() {
        if let Some(p) = tree.parent(node) {
            let _ = writeln!(out, "  n{} -> n{};", node.index(), p.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn dot_output_contains_all_nodes_and_edges() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        let t = b.build().unwrap();
        let dot = to_dot(&t);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 [label=\"0\\nw=5\"]"));
        assert!(dot.contains("n1 -> n0;"));
        assert!(dot.contains("n2 -> n1;"));
    }

    #[test]
    fn annotated_dot_shows_steps_and_io() {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        b.add_child(r, 3);
        let t = b.build().unwrap();
        let s = Schedule::postorder(&t);
        let tau = vec![0, 2];
        let dot = to_dot_annotated(&t, &s, Some(&tau));
        assert!(dot.contains("step 0"));
        assert!(dot.contains("io 2"));
    }
}
