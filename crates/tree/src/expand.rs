//! Node expansion (paper, Figure 3).
//!
//! Expanding a node `i` by an amount `τ(i)` replaces it with a chain of three
//! nodes of weights `w_i`, `w_i − τ(i)` and `w_i`:
//!
//! ```text
//!        parent                    parent
//!          │                         │
//!         (i)  w_i      ⟹        (top)  w_i
//!        ╱   ╲                       │
//!   children                      (mid)  w_i − τ(i)
//!                                    │
//!                                   (i)  w_i
//!                                  ╱   ╲
//!                             children
//! ```
//!
//! The chain mimics an I/O of `τ(i)` units on the output of `i`: the data
//! occupies `w_i` units when produced, only `w_i − τ(i)` units while part of
//! it sits on disk, and `w_i` units again once read back just before the
//! parent executes. This transformation is the engine behind Theorem 2
//! (computing a schedule from an I/O function) and behind the `RecExpand` /
//! `FullRecExpand` heuristics of Section 5.

use crate::schedule::Schedule;
use crate::tree::{NodeId, Tree};

/// A tree derived from an original tree by a sequence of node expansions,
/// together with the bookkeeping needed to map schedules back to the original
/// tree.
#[derive(Debug, Clone)]
pub struct ExpandedTree {
    tree: Tree,
    /// For every node of the expanded tree, the original node it descends
    /// from (originals map to themselves).
    origin: Vec<NodeId>,
    /// `true` for the unique node of each original node's chain that carries
    /// the *execution* of the original task (the bottom of the chain, which
    /// kept the original children).
    is_exec: Vec<bool>,
    /// Total amount of I/O forced by expansions, per original node.
    forced_io: Vec<u64>,
    original_len: usize,
}

impl ExpandedTree {
    /// Starts from an unexpanded copy of `tree`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.len();
        ExpandedTree {
            tree: tree.clone(),
            origin: (0..n).map(NodeId::from_index).collect(),
            is_exec: vec![true; n],
            forced_io: vec![0; n],
            original_len: n,
        }
    }

    /// The current (expanded) tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of nodes of the original tree.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// The original node a node of the expanded tree descends from.
    pub fn origin(&self, node: NodeId) -> NodeId {
        self.origin[node.index()]
    }

    /// Amount of I/O forced so far on the output of original node `node`.
    pub fn forced_io_of(&self, node: NodeId) -> u64 {
        self.forced_io[node.index()]
    }

    /// Total amount of I/O forced by all expansions performed so far
    /// (the paper charges exactly this volume to `FullRecExpand`).
    pub fn total_forced_io(&self) -> u64 {
        self.forced_io.iter().sum()
    }

    /// Number of expansions performed so far.
    pub fn expansions(&self) -> usize {
        (self.tree.len() - self.original_len) / 2
    }

    /// Expands `node` (a node of the *expanded* tree) by `amount` units,
    /// i.e. forces `amount` units of its data to be written to disk right
    /// after the node completes and read back right before its parent starts.
    ///
    /// Returns the ids of the inserted (middle, top) nodes.
    ///
    /// # Panics
    /// Panics if `amount` is zero or exceeds the node's weight.
    pub fn expand(&mut self, node: NodeId, amount: u64) -> (NodeId, NodeId) {
        let w = self.tree.weight(node);
        assert!(amount > 0, "expansion amount must be positive");
        assert!(
            amount <= w,
            "cannot expand node of weight {w} by {amount} units"
        );
        let orig = self.origin[node.index()];
        let mid = self.tree.splice_above(node, w - amount);
        let top = self.tree.splice_above(mid, w);
        self.origin.push(orig); // mid
        self.origin.push(orig); // top
        self.is_exec.push(false);
        self.is_exec.push(false);
        self.forced_io[orig.index()] += amount;
        (mid, top)
    }

    /// Translates a schedule of the expanded tree into a schedule of the
    /// original tree: the original task executes at the step where the
    /// execution node of its chain executes; chain helper nodes are dropped.
    pub fn to_original_schedule(&self, schedule: &Schedule) -> Schedule {
        let order = schedule
            .iter()
            .filter(|n| self.is_exec[n.index()])
            .map(|n| self.origin[n.index()])
            .collect();
        Schedule::new(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{fif_io, peak_memory};
    use crate::tree::TreeBuilder;

    /// root(4) <- a(8) <- leaf(2), root <- b(10)  — loosely Figure 6 shaped.
    fn sample() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.add_root(4);
        let a = b.add_child(r, 8);
        b.add_child(a, 2);
        b.add_child(r, 10);
        b.build().unwrap()
    }

    #[test]
    fn expansion_inserts_chain() {
        let t = sample();
        let mut ex = ExpandedTree::new(&t);
        let a = NodeId(1);
        let (mid, top) = ex.expand(a, 3);
        let et = ex.tree();
        et.validate().unwrap();
        assert_eq!(et.len(), t.len() + 2);
        assert_eq!(et.weight(a), 8);
        assert_eq!(et.weight(mid), 5);
        assert_eq!(et.weight(top), 8);
        assert_eq!(et.parent(a), Some(mid));
        assert_eq!(et.parent(mid), Some(top));
        assert_eq!(et.parent(top), Some(NodeId(0)));
        assert_eq!(ex.origin(mid), a);
        assert_eq!(ex.origin(top), a);
        assert_eq!(ex.total_forced_io(), 3);
        assert_eq!(ex.expansions(), 1);
        assert_eq!(ex.forced_io_of(a), 3);
    }

    #[test]
    fn repeated_expansion_accumulates() {
        let t = sample();
        let mut ex = ExpandedTree::new(&t);
        let a = NodeId(1);
        let (mid, _top) = ex.expand(a, 3);
        // A further expansion of the reduced middle node mimics writing more
        // of the same datum to disk.
        ex.expand(mid, 2);
        assert_eq!(ex.total_forced_io(), 5);
        assert_eq!(ex.forced_io_of(a), 5);
        assert_eq!(ex.expansions(), 2);
        ex.tree().validate().unwrap();
    }

    #[test]
    fn schedule_maps_back_to_original() {
        let t = sample();
        let mut ex = ExpandedTree::new(&t);
        ex.expand(NodeId(1), 3);
        let s_exp = Schedule::postorder(ex.tree());
        let s_orig = ex.to_original_schedule(&s_exp);
        s_orig.validate(&t).unwrap();
        assert_eq!(s_orig.len(), t.len());
    }

    #[test]
    fn expansion_lowers_in_core_peak() {
        // A chain with a heavy middle node: the expanded tree can be
        // traversed with a smaller peak because the heavy datum shrinks
        // between production and use.
        let mut b = TreeBuilder::new();
        let r = b.add_root(2);
        let a = b.add_child(r, 8);
        b.add_child(a, 2);
        b.add_child(r, 6);
        let t = b.build().unwrap();
        // Best possible in-core peak is at least w̄_root = 14.
        let s = Schedule::postorder(&t);
        let peak_before = peak_memory(&t, &s).unwrap();
        assert!(peak_before >= 14);

        let mut ex = ExpandedTree::new(&t);
        ex.expand(NodeId(1), 8); // allow node a to shrink to 0 while b runs
        let s_exp = Schedule::postorder(ex.tree());
        // The expanded-tree postorder keeps the same peak (postorder does not
        // exploit the chain), but a hand-written order that executes the
        // middle node early does.
        let et = ex.tree();
        let mid = NodeId(4);
        let top = NodeId(5);
        let order = Schedule::new(vec![NodeId(2), NodeId(1), mid, NodeId(3), top, NodeId(0)]);
        order.validate(et).unwrap();
        let peak_after = peak_memory(et, &order).unwrap();
        assert_eq!(peak_after, 14);
        assert!(peak_after <= peak_memory(et, &s_exp).unwrap());

        // Mapping the clever order back gives a valid original schedule whose
        // FiF I/O under M = 14 is zero... the original schedule under M = 14:
        let s_back = ex.to_original_schedule(&order);
        s_back.validate(&t).unwrap();
        let io = fif_io(&t, &s_back, 14).unwrap();
        assert_eq!(io.total_io, 0);
    }

    #[test]
    #[should_panic(expected = "expansion amount must be positive")]
    fn zero_expansion_panics() {
        let t = sample();
        let mut ex = ExpandedTree::new(&t);
        ex.expand(NodeId(1), 0);
    }

    #[test]
    #[should_panic(expected = "cannot expand node")]
    fn oversized_expansion_panics() {
        let t = sample();
        let mut ex = ExpandedTree::new(&t);
        ex.expand(NodeId(1), 100);
    }
}
