//! # oocts-tree — task-tree substrate
//!
//! This crate provides the data structures and simulators shared by every
//! algorithm in the OOCTS workspace, which reproduces
//! *Minimizing I/Os in Out-of-Core Task Tree Scheduling*
//! (Marchal, McCauley, Simon, Vivien — INRIA RR-9025, 2017).
//!
//! The model (paper, Section 3.1):
//!
//! * a workload is a rooted **in-tree**: every node `i` is a task producing a
//!   single output datum of size `w_i`, consumed by its unique parent;
//! * to execute `i`, the outputs of all its children must be **entirely** in
//!   main memory, and at completion its own output must be in memory, so the
//!   task needs `w̄_i = max(w_i, Σ_{j child of i} w_j)` units on top of any
//!   other *active* data (produced but not yet consumed);
//! * main memory is bounded by `M`; disk is unbounded; any number of units of
//!   an active datum may be written to disk (one I/O per unit written, reads
//!   are free since every write is read back exactly once).
//!
//! The crate offers:
//!
//! * [`Tree`] / [`NodeId`] — arena-based rooted in-trees with integer weights;
//! * [`Schedule`] — a topological execution order of (a subtree of) the nodes;
//! * [`simulate`] — the in-core peak-memory profiler and the
//!   Furthest-in-the-Future (FiF) out-of-core simulator that turns a schedule
//!   into an I/O volume (optimal per Theorem 1 of the paper);
//! * [`expand`] — the node-expansion transformation (paper, Figure 3) on which
//!   Theorem 2 and the `RecExpand` heuristics are built;
//! * [`dot`] — Graphviz export for debugging and documentation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod dot;
pub mod error;
pub mod expand;
pub mod schedule;
pub mod simulate;
pub mod tree;

pub use error::TreeError;
pub use expand::ExpandedTree;
pub use schedule::Schedule;
pub use simulate::{
    check_traversal, fif_io, fif_io_with, memory_profile, peak_memory, FifScratch, IoResult,
    MemoryProfile,
};
pub use tree::{NodeId, Tree, TreeBuilder};
