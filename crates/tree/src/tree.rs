//! Rooted in-trees of tasks with weighted output data.

use serde::{Deserialize, Serialize};

use crate::error::TreeError;

/// Identifier of a node (task) inside a [`Tree`].
///
/// Node identifiers are dense indices (`0..tree.len()`); they are stable under
/// the structural mutations used by the node-expansion machinery (expansion
/// only *adds* nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        // lint: allow(L001, documented panic: the u32-width node id is a deliberate API contract)
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId::from_index(value)
    }
}

/// A rooted in-tree of tasks.
///
/// Every node `i` produces one output datum of `weight(i)` memory units that
/// is consumed by its unique parent. Dependencies are directed towards the
/// root: a node can only execute after all of its children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tree {
    weights: Vec<u64>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    root: NodeId,
}

impl Tree {
    /// Builds a tree from a parent array.
    ///
    /// `parents[i]` is the parent of node `i` (or `None` for the root);
    /// `weights[i]` is the size of node `i`'s output datum. Exactly one node
    /// must have no parent.
    pub fn from_parents(weights: &[u64], parents: &[Option<usize>]) -> Result<Self, TreeError> {
        if weights.is_empty() {
            return Err(TreeError::Empty);
        }
        assert_eq!(
            weights.len(),
            parents.len(),
            "weights and parents must have the same length"
        );
        let n = weights.len();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut root = None;
        for (i, &p) in parents.iter().enumerate() {
            match p {
                Some(p) => {
                    if p >= n {
                        return Err(TreeError::UnknownNode(NodeId::from_index(p)));
                    }
                    parent[i] = Some(NodeId::from_index(p));
                    children[p].push(NodeId::from_index(i));
                }
                None => match root {
                    None => root = Some(NodeId::from_index(i)),
                    Some(r) => return Err(TreeError::MultipleRoots(r, NodeId::from_index(i))),
                },
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;
        let tree = Tree {
            weights: weights.to_vec(),
            parent,
            children,
            root,
        };
        tree.check_acyclic()?;
        Ok(tree)
    }

    /// Builds a single-node tree (just a root of the given weight).
    pub fn singleton(weight: u64) -> Self {
        Tree {
            weights: vec![weight],
            parent: vec![None],
            children: vec![Vec::new()],
            root: NodeId(0),
        }
    }

    fn check_acyclic(&self) -> Result<(), TreeError> {
        // Every node must reach the root by following parent pointers in at
        // most `n` steps.
        let n = self.len();
        for start in 0..n {
            let mut cur = NodeId::from_index(start);
            let mut steps = 0usize;
            while let Some(p) = self.parent[cur.index()] {
                cur = p;
                steps += 1;
                if steps > n {
                    return Err(TreeError::Cycle(NodeId::from_index(start)));
                }
            }
            if cur != self.root {
                return Err(TreeError::Cycle(NodeId::from_index(start)));
            }
        }
        Ok(())
    }

    /// Number of nodes in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the tree has no nodes (never the case for a built tree).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The size `w_i` of node `i`'s output datum.
    // lint: no_alloc
    #[inline]
    pub fn weight(&self, node: NodeId) -> u64 {
        self.weights[node.index()]
    }

    /// Mutable access to a node weight (used by generators and tests).
    pub fn set_weight(&mut self, node: NodeId, weight: u64) {
        self.weights[node.index()] = weight;
    }

    /// The parent of `node`, or `None` for the root.
    // lint: no_alloc
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// The children of `node`.
    // lint: no_alloc
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// `true` if `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// Iterator over all node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from_index)
    }

    /// All leaves of the tree.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.is_leaf(n)).collect()
    }

    /// Sum of the children output sizes of `node`.
    // lint: no_alloc
    pub fn children_weight(&self, node: NodeId) -> u64 {
        self.children(node).iter().map(|&c| self.weight(c)).sum()
    }

    /// Memory needed to execute `node` in isolation:
    /// `w̄_i = max(w_i, Σ_{j child of i} w_j)` (paper, Section 3.1).
    pub fn execution_weight(&self, node: NodeId) -> u64 {
        self.weight(node).max(self.children_weight(node))
    }

    /// The minimum memory bound for which the tree can be executed at all
    /// (with unlimited I/O): `LB = max_i w̄_i` (paper, Section 6.1).
    pub fn min_feasible_memory(&self) -> u64 {
        self.node_ids()
            .map(|n| self.execution_weight(n))
            .max()
            .unwrap_or(0)
    }

    /// Sum of all node weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Maximum node weight.
    pub fn max_weight(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Number of nodes in the subtree rooted at `node` (including `node`).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.subtree_nodes(node).len()
    }

    /// The nodes of the subtree rooted at `node`, in an (iterative) postorder:
    /// every node appears after all of its children.
    pub fn subtree_postorder(&self, node: NodeId) -> Vec<NodeId> {
        // Iterative postorder to cope with very deep trees (elimination trees
        // of banded matrices are close to chains).
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(node, 0)];
        while let Some((n, child_idx)) = stack.pop() {
            if child_idx < self.children(n).len() {
                stack.push((n, child_idx + 1));
                stack.push((self.children(n)[child_idx], 0));
            } else {
                out.push(n);
            }
        }
        out
    }

    /// The nodes of the subtree rooted at `node`, in DFS preorder.
    pub fn subtree_nodes(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// Postorder over the whole tree (children before parents).
    pub fn postorder(&self) -> Vec<NodeId> {
        self.subtree_postorder(self.root)
    }

    /// Depth of `node` (the root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// Height of the tree: the maximum depth over all nodes.
    pub fn height(&self) -> usize {
        // Compute iteratively from the postorder to stay O(n).
        let mut h = vec![0usize; self.len()];
        let mut best = 0usize;
        for n in self.postorder() {
            let hn = self
                .children(n)
                .iter()
                .map(|&c| h[c.index()] + 1)
                .max()
                .unwrap_or(0);
            h[n.index()] = hn;
            best = best.max(hn);
        }
        best
    }

    /// `true` iff all nodes have output size exactly 1 (a *homogeneous* tree
    /// in the sense of Section 4.2 of the paper).
    pub fn is_homogeneous(&self) -> bool {
        self.weights.iter().all(|&w| w == 1)
    }

    /// Adds a new node above `node`: the new node takes `node`'s place as a
    /// child of `node`'s parent (or becomes the root), and `node` becomes its
    /// only child. Returns the new node's id.
    ///
    /// This is the structural primitive behind node expansion
    /// (see [`crate::expand`]).
    pub fn splice_above(&mut self, node: NodeId, weight: u64) -> NodeId {
        let new = NodeId::from_index(self.len());
        let old_parent = self.parent[node.index()];
        self.weights.push(weight);
        self.parent.push(old_parent);
        self.children.push(vec![node]);
        self.parent[node.index()] = Some(new);
        match old_parent {
            Some(p) => {
                let slot = self.children[p.index()]
                    .iter()
                    .position(|&c| c == node)
                    // lint: allow(L001, parent/child links are a Tree construction invariant)
                    .expect("parent/child links out of sync");
                self.children[p.index()][slot] = new;
            }
            None => self.root = new,
        }
        new
    }

    /// Validates the internal consistency of the tree (used in tests and by
    /// deserialization call sites).
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.is_empty() {
            return Err(TreeError::Empty);
        }
        let mut seen_as_child = vec![false; self.len()];
        for n in self.node_ids() {
            if let Some(p) = self.parent(n) {
                if p.index() >= self.len() {
                    return Err(TreeError::UnknownNode(p));
                }
                if !self.children(p).contains(&n) {
                    return Err(TreeError::UnknownNode(n));
                }
            }
            for &c in self.children(n) {
                if c.index() >= self.len() {
                    return Err(TreeError::UnknownNode(c));
                }
                if self.parent(c) != Some(n) {
                    return Err(TreeError::UnknownNode(c));
                }
                // A node listed twice (under one parent or several) would be
                // consumed twice by the simulator.
                if seen_as_child[c.index()] {
                    return Err(TreeError::DuplicateNode(c));
                }
                seen_as_child[c.index()] = true;
            }
        }
        if self.parent(self.root).is_some() {
            return Err(TreeError::NoRoot);
        }
        self.check_acyclic()
    }
}

/// Incremental builder for [`Tree`] values.
///
/// ```
/// use oocts_tree::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// let root = b.add_root(4);
/// let left = b.add_child(root, 2);
/// let _leaf = b.add_child(left, 7);
/// let _right = b.add_child(root, 3);
/// let tree = b.build().unwrap();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.weight(root), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TreeBuilder {
    weights: Vec<u64>,
    parents: Vec<Option<usize>>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        TreeBuilder {
            weights: Vec::with_capacity(n),
            parents: Vec::with_capacity(n),
        }
    }

    /// Adds the root node. Must be called exactly once.
    pub fn add_root(&mut self, weight: u64) -> NodeId {
        self.push(weight, None)
    }

    /// Adds a child of `parent` with the given output size.
    pub fn add_child(&mut self, parent: NodeId, weight: u64) -> NodeId {
        self.push(weight, Some(parent.index()))
    }

    fn push(&mut self, weight: u64, parent: Option<usize>) -> NodeId {
        let id = NodeId::from_index(self.weights.len());
        self.weights.push(weight);
        self.parents.push(parent);
        id
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Finalizes the tree.
    pub fn build(self) -> Result<Tree, TreeError> {
        Tree::from_parents(&self.weights, &self.parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // root(5) with children a(3) and b(2); a has leaf c(4).
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        b.add_child(r, 2);
        b.build().unwrap()
    }

    #[test]
    fn validate_rejects_corrupted_trees() {
        // The public constructors refuse these shapes, so corrupt the
        // private fields directly: validate() is the last line of defense
        // for future in-place mutation code.

        // A two-cycle in the parent/children links.
        let mut t = sample();
        t.parent[0] = Some(NodeId(1));
        t.children[1].push(NodeId(0));
        assert!(matches!(
            t.validate(),
            Err(TreeError::NoRoot | TreeError::Cycle(_))
        ));

        // The same node listed as a child twice.
        let mut t = sample();
        t.children[0].push(NodeId(1));
        assert_eq!(t.validate(), Err(TreeError::DuplicateNode(NodeId(1))));

        // A children list referencing a node outside the tree.
        let mut t = sample();
        t.children[0].push(NodeId(99));
        assert_eq!(t.validate(), Err(TreeError::UnknownNode(NodeId(99))));

        // A child whose parent link points elsewhere.
        let mut t = sample();
        t.parent[3] = Some(NodeId(1));
        assert!(t.validate().is_err());

        // An empty tree.
        let t = Tree {
            weights: Vec::new(),
            parent: Vec::new(),
            children: Vec::new(),
            root: NodeId(0),
        };
        assert_eq!(t.validate(), Err(TreeError::Empty));
    }

    #[test]
    fn builder_and_accessors() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.weight(NodeId(0)), 5);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(0)));
        assert_eq!(t.leaves(), vec![NodeId(2), NodeId(3)]);
        assert_eq!(t.total_weight(), 14);
        assert_eq!(t.max_weight(), 5);
        assert_eq!(t.height(), 2);
        assert_eq!(t.depth(NodeId(2)), 2);
        t.validate().unwrap();
    }

    #[test]
    fn execution_weights() {
        let t = sample();
        // root: max(5, 3 + 2) = 5 ; a: max(3, 4) = 4 ; leaf c: 4 ; leaf b: 2.
        assert_eq!(t.execution_weight(NodeId(0)), 5);
        assert_eq!(t.execution_weight(NodeId(1)), 4);
        assert_eq!(t.execution_weight(NodeId(2)), 4);
        assert_eq!(t.execution_weight(NodeId(3)), 2);
        assert_eq!(t.min_feasible_memory(), 5);
    }

    #[test]
    fn postorder_is_topological() {
        let t = sample();
        let po = t.postorder();
        assert_eq!(po.len(), t.len());
        let pos: std::collections::HashMap<_, _> =
            po.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in t.node_ids() {
            if let Some(p) = t.parent(n) {
                assert!(pos[&n] < pos[&p]);
            }
        }
    }

    #[test]
    fn from_parents_detects_errors() {
        assert_eq!(Tree::from_parents(&[], &[]), Err(TreeError::Empty));
        assert!(matches!(
            Tree::from_parents(&[1, 1], &[None, None]),
            Err(TreeError::MultipleRoots(_, _))
        ));
        assert!(matches!(
            Tree::from_parents(&[1, 1], &[Some(1), Some(0)]),
            Err(TreeError::NoRoot) | Err(TreeError::Cycle(_))
        ));
        assert!(matches!(
            Tree::from_parents(&[1], &[Some(5)]),
            Err(TreeError::UnknownNode(_))
        ));
    }

    #[test]
    fn splice_above_keeps_structure() {
        let mut t = sample();
        let a = NodeId(1);
        let new = t.splice_above(a, 99);
        t.validate().unwrap();
        assert_eq!(t.weight(new), 99);
        assert_eq!(t.parent(a), Some(new));
        assert_eq!(t.parent(new), Some(NodeId(0)));
        assert!(t.children(NodeId(0)).contains(&new));
        assert!(!t.children(NodeId(0)).contains(&a));
    }

    #[test]
    fn splice_above_root_changes_root() {
        let mut t = sample();
        let old_root = t.root();
        let new = t.splice_above(old_root, 1);
        t.validate().unwrap();
        assert_eq!(t.root(), new);
        assert_eq!(t.parent(old_root), Some(new));
    }

    #[test]
    fn homogeneous_detection() {
        let t = sample();
        assert!(!t.is_homogeneous());
        let h = Tree::from_parents(&[1, 1, 1], &[None, Some(0), Some(0)]).unwrap();
        assert!(h.is_homogeneous());
    }

    #[test]
    fn subtree_queries() {
        let t = sample();
        assert_eq!(t.subtree_size(NodeId(1)), 2);
        assert_eq!(t.subtree_size(t.root()), 4);
        let po = t.subtree_postorder(NodeId(1));
        assert_eq!(po, vec![NodeId(2), NodeId(1)]);
    }
}
