//! Rooted in-trees of tasks with weighted output data, stored as a flat
//! arena.
//!
//! # Arena layout
//!
//! The tree is a struct-of-arrays indexed by [`NodeId`]:
//!
//! ```text
//! weights        [w_0, w_1, …, w_{n-1}]          one u64 per node (SoA)
//! parent         [p_0, p_1, …, p_{n-1}]          u32; NO_PARENT for the root
//! child_start    [s_0, s_1, …, s_n]              CSR offsets (n + 1 entries)
//! children_flat  [c …]                           all child lists, concatenated
//! ```
//!
//! `children(i)` is the contiguous slice
//! `children_flat[child_start[i] .. child_start[i+1]]` — no per-node `Vec`,
//! no pointer chasing. On top of the structure the constructor precomputes
//! the derived arrays every scheduler needs:
//!
//! ```text
//! children_weight  Σ_{j child of i} w_j           O(1) lookups in simulators
//! postorder        DFS postorder of the whole tree (children in stored order)
//! postorder_pos    position of each node in `postorder`
//! subtree_size     nodes in the subtree rooted at i (including i)
//! depth            root = 0
//! ```
//!
//! Because the postorder visits every subtree contiguously (ending at its
//! root), [`Tree::subtree_postorder`] is a **slice** of the precomputed
//! order: traversals allocate nothing. Structural mutation is confined to
//! [`Tree::splice_above`] (the node-expansion primitive), which patches the
//! CSR arena in place — the new node's single-child list is appended at the
//! tail, the parent's child slot is overwritten — and then rebuilds the
//! derived arrays in O(n); callers (the `RecExpand` expansion loop) run an
//! O(n log n) scheduling pass after every splice, so the rebuild is
//! asymptotically free.

use serde::{Deserialize, Serialize};

use crate::error::TreeError;

/// Identifier of a node (task) inside a [`Tree`].
///
/// Node identifiers are dense indices (`0..tree.len()`); they are stable under
/// the structural mutations used by the node-expansion machinery (expansion
/// only *adds* nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Sentinel parent index of the root node in the flat parent array.
const NO_PARENT: u32 = u32::MAX;

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        // lint: allow(L001, documented panic: the u32-width node id is a deliberate API contract)
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId::from_index(value)
    }
}

/// A rooted in-tree of tasks, stored as a flat arena (see the module docs
/// for the layout).
///
/// Every node `i` produces one output datum of `weight(i)` memory units that
/// is consumed by its unique parent. Dependencies are directed towards the
/// root: a node can only execute after all of its children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tree {
    /// Output datum size per node (SoA weight array).
    weights: Vec<u64>,
    /// Parent index per node; `NO_PARENT` marks the root.
    parent: Vec<u32>,
    /// CSR offsets into `children_flat`; `len() + 1` entries.
    child_start: Vec<u32>,
    /// All child lists, concatenated in node-index order.
    children_flat: Vec<NodeId>,
    /// Precomputed `Σ_{j child of i} w_j`.
    children_weight: Vec<u64>,
    /// Precomputed DFS postorder of the whole tree (children in stored
    /// order, every subtree contiguous and ending at its root).
    postorder: Vec<NodeId>,
    /// Position of each node in `postorder`.
    postorder_pos: Vec<u32>,
    /// Number of nodes in the subtree rooted at each node (including it).
    subtree_size: Vec<u32>,
    /// Depth of each node (root = 0).
    depth: Vec<u32>,
    /// Maximum depth over all nodes.
    height: u32,
    root: NodeId,
}

impl Tree {
    /// Builds a tree from a parent array.
    ///
    /// `parents[i]` is the parent of node `i` (or `None` for the root);
    /// `weights[i]` is the size of node `i`'s output datum. Exactly one node
    /// must have no parent.
    pub fn from_parents(weights: &[u64], parents: &[Option<usize>]) -> Result<Self, TreeError> {
        if weights.is_empty() {
            return Err(TreeError::Empty);
        }
        assert_eq!(
            weights.len(),
            parents.len(),
            "weights and parents must have the same length"
        );
        let n = weights.len();
        let mut parent = vec![NO_PARENT; n];
        let mut root = None;
        // CSR construction by counting sort: count children per node, prefix
        // sum into offsets, then fill in ascending child-index order (the
        // same order the old per-node `Vec`s were pushed in).
        let mut counts = vec![0u32; n + 1];
        for (i, &p) in parents.iter().enumerate() {
            match p {
                Some(p) => {
                    if p >= n {
                        return Err(TreeError::UnknownNode(NodeId::from_index(p)));
                    }
                    parent[i] = NodeId::from_index(p).0;
                    counts[p] += 1;
                }
                None => match root {
                    None => root = Some(NodeId::from_index(i)),
                    Some(r) => return Err(TreeError::MultipleRoots(r, NodeId::from_index(i))),
                },
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;
        let mut child_start = vec![0u32; n + 1];
        for i in 0..n {
            child_start[i + 1] = child_start[i] + counts[i];
        }
        let mut cursor = child_start.clone();
        let mut children_flat = vec![NodeId(0); child_start[n] as usize];
        let mut placed = 0usize;
        for (i, &p) in parents.iter().enumerate() {
            if let Some(p) = p {
                children_flat[cursor[p] as usize] = NodeId::from_index(i);
                cursor[p] += 1;
                placed += 1;
            }
        }
        debug_assert_eq!(placed, n - 1, "every non-root node is someone's child");

        let mut tree = Tree {
            weights: weights.to_vec(),
            parent,
            child_start,
            children_flat,
            children_weight: Vec::new(),
            postorder: Vec::new(),
            postorder_pos: Vec::new(),
            subtree_size: Vec::new(),
            depth: Vec::new(),
            height: 0,
            root,
        };
        tree.recompute_derived()?;
        Ok(tree)
    }

    /// Builds a single-node tree (just a root of the given weight).
    pub fn singleton(weight: u64) -> Self {
        Tree {
            weights: vec![weight],
            parent: vec![NO_PARENT],
            child_start: vec![0, 0],
            children_flat: Vec::new(),
            children_weight: vec![0],
            postorder: vec![NodeId(0)],
            postorder_pos: vec![0],
            subtree_size: vec![1],
            depth: vec![0],
            height: 0,
            root: NodeId(0),
        }
    }

    /// Rebuilds every derived array (children weights, postorder, positions,
    /// subtree sizes, depths) from the structural arrays in O(n).
    ///
    /// Doubles as the acyclicity check: a parent structure with a cycle
    /// leaves the cycle's nodes unreachable from the root, so the DFS
    /// postorder comes up short and the lowest-index unreached node is
    /// reported — the same node the old walk-to-root check blamed.
    fn recompute_derived(&mut self) -> Result<(), TreeError> {
        let n = self.len();
        self.children_weight.clear();
        self.children_weight.resize(n, 0);
        for i in 0..n {
            self.children_weight[i] = self
                .children(NodeId::from_index(i))
                .iter()
                .map(|&c| self.weights[c.index()])
                .sum();
        }

        // Iterative DFS postorder from the root, children in stored order.
        self.postorder.clear();
        self.postorder.reserve(n);
        let mut stack: Vec<(NodeId, u32)> = Vec::with_capacity(64);
        stack.push((self.root, 0));
        while let Some((node, child_idx)) = stack.pop() {
            let kids = self.children(node);
            if (child_idx as usize) < kids.len() {
                let child = kids[child_idx as usize];
                stack.push((node, child_idx + 1));
                stack.push((child, 0));
            } else {
                self.postorder.push(node);
            }
        }
        if self.postorder.len() != n {
            // Some node never reaches the root by parent pointers.
            let mut reached = vec![false; n];
            for &node in &self.postorder {
                reached[node.index()] = true;
            }
            let lowest = (0..n)
                .find(|&i| !reached[i])
                .map(NodeId::from_index)
                .unwrap_or(self.root);
            return Err(TreeError::Cycle(lowest));
        }

        self.postorder_pos.clear();
        self.postorder_pos.resize(n, 0);
        for (pos, &node) in self.postorder.iter().enumerate() {
            self.postorder_pos[node.index()] = pos as u32;
        }

        // Subtree sizes bottom-up over the postorder (children first).
        self.subtree_size.clear();
        self.subtree_size.resize(n, 0);
        for &node in &self.postorder {
            let mut size = 1u32;
            for &c in self.children(node) {
                size += self.subtree_size[c.index()];
            }
            self.subtree_size[node.index()] = size;
        }

        // Depths top-down over the reversed postorder (parents first).
        self.depth.clear();
        self.depth.resize(n, 0);
        let mut height = 0u32;
        for &node in self.postorder.iter().rev() {
            let d = match self.parent(node) {
                Some(p) => self.depth[p.index()] + 1,
                None => 0,
            };
            self.depth[node.index()] = d;
            height = height.max(d);
        }
        self.height = height;
        Ok(())
    }

    /// Number of nodes in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the tree has no nodes (never the case for a built tree).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The size `w_i` of node `i`'s output datum.
    // lint: no_alloc
    #[inline]
    pub fn weight(&self, node: NodeId) -> u64 {
        self.weights[node.index()]
    }

    /// Mutable access to a node weight (used by generators and tests).
    /// Keeps the precomputed children-weight of the parent in sync.
    pub fn set_weight(&mut self, node: NodeId, weight: u64) {
        let old = self.weights[node.index()];
        self.weights[node.index()] = weight;
        if let Some(p) = self.parent(node) {
            self.children_weight[p.index()] = self.children_weight[p.index()] - old + weight;
        }
    }

    /// The parent of `node`, or `None` for the root.
    // lint: no_alloc
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let raw = self.parent[node.index()];
        if raw == NO_PARENT {
            None
        } else {
            Some(NodeId(raw))
        }
    }

    /// The children of `node`: a contiguous slice of the CSR child arena.
    // lint: no_alloc
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children_flat[self.child_range(node)]
    }

    /// The range of `node`'s children inside [`Tree::children_flat`].
    // lint: no_alloc
    #[inline]
    pub fn child_range(&self, node: NodeId) -> std::ops::Range<usize> {
        let i = node.index();
        self.child_start[i] as usize..self.child_start[i + 1] as usize
    }

    /// The concatenated child lists of all nodes (CSR payload); index it
    /// with [`Tree::child_range`]. Useful for schedulers that reorder
    /// children in a flat scratch copy instead of per-node `Vec`s.
    // lint: no_alloc
    #[inline]
    pub fn children_flat(&self) -> &[NodeId] {
        &self.children_flat
    }

    /// `true` if `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        let i = node.index();
        self.child_start[i] == self.child_start[i + 1]
    }

    /// Iterator over all node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from_index)
    }

    /// All leaves of the tree.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.is_leaf(n)).collect()
    }

    /// Sum of the children output sizes of `node` (precomputed: O(1)).
    // lint: no_alloc
    #[inline]
    pub fn children_weight(&self, node: NodeId) -> u64 {
        self.children_weight[node.index()]
    }

    /// Memory needed to execute `node` in isolation:
    /// `w̄_i = max(w_i, Σ_{j child of i} w_j)` (paper, Section 3.1).
    // lint: no_alloc
    #[inline]
    pub fn execution_weight(&self, node: NodeId) -> u64 {
        self.weight(node).max(self.children_weight(node))
    }

    /// The minimum memory bound for which the tree can be executed at all
    /// (with unlimited I/O): `LB = max_i w̄_i` (paper, Section 6.1).
    pub fn min_feasible_memory(&self) -> u64 {
        self.node_ids()
            .map(|n| self.execution_weight(n))
            .max()
            .unwrap_or(0)
    }

    /// Sum of all node weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Maximum node weight.
    pub fn max_weight(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Number of nodes in the subtree rooted at `node` (including `node`);
    /// precomputed, O(1).
    // lint: no_alloc
    #[inline]
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.subtree_size[node.index()] as usize
    }

    /// The nodes of the subtree rooted at `node`, in postorder: every node
    /// appears after all of its children.
    ///
    /// A slice of the precomputed whole-tree postorder (subtrees are
    /// contiguous in it, ending at their root) — no allocation, no
    /// traversal.
    // lint: no_alloc
    #[inline]
    pub fn subtree_postorder(&self, node: NodeId) -> &[NodeId] {
        let end = self.postorder_pos[node.index()] as usize + 1;
        let start = end - self.subtree_size[node.index()] as usize;
        &self.postorder[start..end]
    }

    /// The nodes of the subtree rooted at `node`, in DFS preorder.
    ///
    /// Allocates the result; prefer [`Tree::subtree_postorder`] (a slice of
    /// the precomputed arena) when the order within the subtree is
    /// topological-first anyway.
    pub fn subtree_nodes(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.subtree_size(node));
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// Postorder over the whole tree (children before parents); precomputed,
    /// returned as a slice of the arena.
    // lint: no_alloc
    #[inline]
    pub fn postorder(&self) -> &[NodeId] {
        &self.postorder
    }

    /// Position of `node` in the precomputed whole-tree [`Tree::postorder`].
    // lint: no_alloc
    #[inline]
    pub fn postorder_position(&self, node: NodeId) -> usize {
        self.postorder_pos[node.index()] as usize
    }

    /// Depth of `node` (the root has depth 0); precomputed, O(1).
    // lint: no_alloc
    #[inline]
    pub fn depth(&self, node: NodeId) -> usize {
        self.depth[node.index()] as usize
    }

    /// Height of the tree: the maximum depth over all nodes; precomputed,
    /// O(1).
    #[inline]
    pub fn height(&self) -> usize {
        self.height as usize
    }

    /// `true` iff all nodes have output size exactly 1 (a *homogeneous* tree
    /// in the sense of Section 4.2 of the paper).
    pub fn is_homogeneous(&self) -> bool {
        self.weights.iter().all(|&w| w == 1)
    }

    /// Adds a new node above `node`: the new node takes `node`'s place as a
    /// child of `node`'s parent (or becomes the root), and `node` becomes its
    /// only child. Returns the new node's id.
    ///
    /// This is the structural primitive behind node expansion
    /// (see [`crate::expand`]). The CSR arena is patched in place (the new
    /// node's single-child list goes at the tail; the parent's child slot is
    /// overwritten) and the derived traversal arrays are rebuilt in O(n).
    pub fn splice_above(&mut self, node: NodeId, weight: u64) -> NodeId {
        let new = NodeId::from_index(self.len());
        let old_parent = self.parent[node.index()];
        self.weights.push(weight);
        self.parent.push(old_parent);
        self.parent[node.index()] = new.0;
        // The new node's child list is [node], appended at the arena tail.
        self.children_flat.push(node);
        self.child_start.push(
            u32::try_from(self.children_flat.len())
                // lint: allow(L001, children_flat holds at most one entry per u32-indexed node)
                .expect("child arena exceeds u32 offsets"),
        );
        if old_parent == NO_PARENT {
            self.root = new;
        } else {
            let range = self.child_range(NodeId(old_parent));
            let slot = self.children_flat[range.clone()]
                .iter()
                .position(|&c| c == node)
                // lint: allow(L001, parent/child links are a Tree construction invariant)
                .expect("parent/child links out of sync");
            self.children_flat[range.start + slot] = new;
        }
        self.recompute_derived()
            // lint: allow(L001, splicing one node into an acyclic tree cannot create a cycle)
            .expect("splice_above preserves acyclicity");
        new
    }

    /// Validates the internal consistency of the tree (used in tests and by
    /// deserialization call sites).
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.is_empty() {
            return Err(TreeError::Empty);
        }
        let n = self.len();
        debug_assert_eq!(self.parent.len(), n);
        debug_assert_eq!(self.child_start.len(), n + 1);
        let mut seen_as_child = vec![false; n];
        for node in self.node_ids() {
            if let Some(p) = self.parent(node) {
                if p.index() >= n {
                    return Err(TreeError::UnknownNode(p));
                }
                if !self.children(p).contains(&node) {
                    return Err(TreeError::UnknownNode(node));
                }
            }
            for &c in self.children(node) {
                if c.index() >= n {
                    return Err(TreeError::UnknownNode(c));
                }
                if self.parent(c) != Some(node) {
                    return Err(TreeError::UnknownNode(c));
                }
                // A node listed twice (under one parent or several) would be
                // consumed twice by the simulator.
                if seen_as_child[c.index()] {
                    return Err(TreeError::DuplicateNode(c));
                }
                seen_as_child[c.index()] = true;
            }
        }
        if self.parent(self.root).is_some() {
            return Err(TreeError::NoRoot);
        }
        self.check_acyclic()
    }

    /// Every node must reach the root by following parent pointers: walk the
    /// children from the root and require full coverage (O(n), iterative).
    fn check_acyclic(&self) -> Result<(), TreeError> {
        let n = self.len();
        let mut reached = vec![false; n];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(node) = stack.pop() {
            if reached[node.index()] {
                continue;
            }
            reached[node.index()] = true;
            count += 1;
            stack.extend(self.children(node).iter().copied());
        }
        if count == n {
            Ok(())
        } else {
            let lowest = (0..n)
                .find(|&i| !reached[i])
                .map(NodeId::from_index)
                .unwrap_or(self.root);
            Err(TreeError::Cycle(lowest))
        }
    }
}

/// Incremental builder for [`Tree`] values: the only construction path into
/// the frozen arena besides [`Tree::from_parents`] (which it delegates to).
///
/// ```
/// use oocts_tree::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// let root = b.add_root(4);
/// let left = b.add_child(root, 2);
/// let _leaf = b.add_child(left, 7);
/// let _right = b.add_child(root, 3);
/// let tree = b.build().unwrap();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.weight(root), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TreeBuilder {
    weights: Vec<u64>,
    parents: Vec<Option<usize>>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        TreeBuilder {
            weights: Vec::with_capacity(n),
            parents: Vec::with_capacity(n),
        }
    }

    /// Adds the root node. Must be called exactly once.
    pub fn add_root(&mut self, weight: u64) -> NodeId {
        self.push(weight, None)
    }

    /// Adds a child of `parent` with the given output size.
    pub fn add_child(&mut self, parent: NodeId, weight: u64) -> NodeId {
        self.push(weight, Some(parent.index()))
    }

    fn push(&mut self, weight: u64, parent: Option<usize>) -> NodeId {
        let id = NodeId::from_index(self.weights.len());
        self.weights.push(weight);
        self.parents.push(parent);
        id
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Finalizes the frozen arena tree.
    pub fn build(self) -> Result<Tree, TreeError> {
        Tree::from_parents(&self.weights, &self.parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // root(5) with children a(3) and b(2); a has leaf c(4).
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        b.add_child(r, 2);
        b.build().unwrap()
    }

    #[test]
    fn validate_rejects_corrupted_trees() {
        // The public constructors refuse these shapes, so corrupt the
        // private arena fields directly: validate() is the last line of
        // defense for future in-place mutation code.
        // sample(): children_flat = [1, 3, 2] with child_start = [0,2,3,3,3].

        // A two-cycle in the parent/children links: 0 <-> 1 (and node 2's
        // slot in 1's children overwritten by 0).
        let mut t = sample();
        t.parent[0] = 1;
        t.children_flat[2] = NodeId(0);
        assert!(matches!(
            t.validate(),
            Err(TreeError::NoRoot | TreeError::Cycle(_) | TreeError::UnknownNode(_))
        ));

        // The same node listed as a child twice (node 3's slot under the
        // root overwritten by a second 1).
        let mut t = sample();
        t.children_flat[1] = NodeId(1);
        assert!(matches!(
            t.validate(),
            Err(TreeError::DuplicateNode(NodeId(1)) | TreeError::UnknownNode(_))
        ));

        // A children list referencing a node outside the tree.
        let mut t = sample();
        t.children_flat[1] = NodeId(99);
        assert!(matches!(t.validate(), Err(TreeError::UnknownNode(_))));

        // A child whose parent link points elsewhere.
        let mut t = sample();
        t.parent[3] = 1;
        assert!(t.validate().is_err());

        // An empty tree.
        let t = Tree {
            weights: Vec::new(),
            parent: Vec::new(),
            child_start: vec![0],
            children_flat: Vec::new(),
            children_weight: Vec::new(),
            postorder: Vec::new(),
            postorder_pos: Vec::new(),
            subtree_size: Vec::new(),
            depth: Vec::new(),
            height: 0,
            root: NodeId(0),
        };
        assert_eq!(t.validate(), Err(TreeError::Empty));
    }

    #[test]
    fn builder_and_accessors() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.weight(NodeId(0)), 5);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(0)));
        assert_eq!(t.leaves(), vec![NodeId(2), NodeId(3)]);
        assert_eq!(t.total_weight(), 14);
        assert_eq!(t.max_weight(), 5);
        assert_eq!(t.height(), 2);
        assert_eq!(t.depth(NodeId(2)), 2);
        t.validate().unwrap();
    }

    #[test]
    fn csr_layout_is_contiguous_and_consistent() {
        let t = sample();
        // children_flat concatenates the child lists in node-index order.
        assert_eq!(t.children_flat(), &[NodeId(1), NodeId(3), NodeId(2)]);
        assert_eq!(t.child_range(NodeId(0)), 0..2);
        assert_eq!(t.child_range(NodeId(1)), 2..3);
        assert_eq!(t.child_range(NodeId(2)), 3..3);
        // children() is exactly the child_range slice of children_flat.
        for n in t.node_ids() {
            assert_eq!(t.children(n), &t.children_flat()[t.child_range(n)]);
        }
        // Precomputed children weights match a recomputation.
        for n in t.node_ids() {
            let direct: u64 = t.children(n).iter().map(|&c| t.weight(c)).sum();
            assert_eq!(t.children_weight(n), direct);
        }
    }

    #[test]
    fn set_weight_keeps_children_weight_in_sync() {
        let mut t = sample();
        assert_eq!(t.children_weight(NodeId(0)), 5);
        t.set_weight(NodeId(1), 10);
        assert_eq!(t.weight(NodeId(1)), 10);
        assert_eq!(t.children_weight(NodeId(0)), 12);
        t.set_weight(NodeId(1), 1);
        assert_eq!(t.children_weight(NodeId(0)), 3);
        // Re-weighting the root touches no parent.
        t.set_weight(NodeId(0), 9);
        assert_eq!(t.weight(NodeId(0)), 9);
    }

    #[test]
    fn execution_weights() {
        let t = sample();
        // root: max(5, 3 + 2) = 5 ; a: max(3, 4) = 4 ; leaf c: 4 ; leaf b: 2.
        assert_eq!(t.execution_weight(NodeId(0)), 5);
        assert_eq!(t.execution_weight(NodeId(1)), 4);
        assert_eq!(t.execution_weight(NodeId(2)), 4);
        assert_eq!(t.execution_weight(NodeId(3)), 2);
        assert_eq!(t.min_feasible_memory(), 5);
    }

    #[test]
    fn postorder_is_topological() {
        let t = sample();
        let po = t.postorder();
        assert_eq!(po.len(), t.len());
        let pos: std::collections::HashMap<_, _> =
            po.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in t.node_ids() {
            assert_eq!(pos[&n], t.postorder_position(n));
            if let Some(p) = t.parent(n) {
                assert!(pos[&n] < pos[&p]);
            }
        }
    }

    #[test]
    fn from_parents_detects_errors() {
        assert_eq!(Tree::from_parents(&[], &[]), Err(TreeError::Empty));
        assert!(matches!(
            Tree::from_parents(&[1, 1], &[None, None]),
            Err(TreeError::MultipleRoots(_, _))
        ));
        assert!(matches!(
            Tree::from_parents(&[1, 1], &[Some(1), Some(0)]),
            Err(TreeError::NoRoot) | Err(TreeError::Cycle(_))
        ));
        assert!(matches!(
            Tree::from_parents(&[1], &[Some(5)]),
            Err(TreeError::UnknownNode(_))
        ));
        // A cycle hanging off a valid rooted part: nodes 1 <-> 2 never reach
        // the root; the lowest-index cycle node is blamed.
        assert_eq!(
            Tree::from_parents(&[1, 1, 1], &[None, Some(2), Some(1)]),
            Err(TreeError::Cycle(NodeId(1)))
        );
    }

    #[test]
    fn splice_above_keeps_structure() {
        let mut t = sample();
        let a = NodeId(1);
        let new = t.splice_above(a, 99);
        t.validate().unwrap();
        assert_eq!(t.weight(new), 99);
        assert_eq!(t.parent(a), Some(new));
        assert_eq!(t.parent(new), Some(NodeId(0)));
        assert!(t.children(NodeId(0)).contains(&new));
        assert!(!t.children(NodeId(0)).contains(&a));
        // The new node keeps a's old slot, so sibling order is preserved.
        assert_eq!(t.children(NodeId(0)), &[new, NodeId(3)]);
        // Derived arrays were rebuilt: the subtree below `new` grew by one.
        assert_eq!(t.subtree_size(new), 3);
        assert_eq!(t.depth(NodeId(2)), 3);
        assert_eq!(t.height(), 3);
        assert_eq!(t.children_weight(NodeId(0)), 99 + 2);
    }

    #[test]
    fn splice_above_root_changes_root() {
        let mut t = sample();
        let old_root = t.root();
        let new = t.splice_above(old_root, 1);
        t.validate().unwrap();
        assert_eq!(t.root(), new);
        assert_eq!(t.parent(old_root), Some(new));
        assert_eq!(t.postorder().last(), Some(&new));
    }

    #[test]
    fn homogeneous_detection() {
        let t = sample();
        assert!(!t.is_homogeneous());
        let h = Tree::from_parents(&[1, 1, 1], &[None, Some(0), Some(0)]).unwrap();
        assert!(h.is_homogeneous());
    }

    #[test]
    fn subtree_queries() {
        let t = sample();
        assert_eq!(t.subtree_size(NodeId(1)), 2);
        assert_eq!(t.subtree_size(t.root()), 4);
        let po = t.subtree_postorder(NodeId(1));
        assert_eq!(po, &[NodeId(2), NodeId(1)]);
        // The whole-tree postorder is itself the root's subtree slice.
        assert_eq!(t.subtree_postorder(t.root()), t.postorder());
        // Preorder subtree listing still starts at the subtree root.
        let pre = t.subtree_nodes(NodeId(1));
        assert_eq!(pre[0], NodeId(1));
        assert_eq!(pre.len(), 2);
    }

    #[test]
    fn deep_chain_builds_without_quadratic_blowup() {
        // A 200k-deep chain: O(n) construction and O(1) depth queries; the
        // old walk-to-root acyclicity check would take O(n^2) here.
        let n = 200_000usize;
        let weights = vec![1u64; n];
        let parents: Vec<Option<usize>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let t = Tree::from_parents(&weights, &parents).unwrap();
        assert_eq!(t.height(), n - 1);
        assert_eq!(t.depth(NodeId::from_index(n - 1)), n - 1);
        assert_eq!(t.subtree_size(t.root()), n);
        assert_eq!(t.postorder().first(), Some(&NodeId::from_index(n - 1)));
        t.validate().unwrap();
    }
}
