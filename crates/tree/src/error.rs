//! Error types shared by the tree substrate.

use std::fmt;

use crate::tree::NodeId;

/// Errors produced while building, validating or simulating task trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// A node references a parent that does not exist.
    UnknownNode(NodeId),
    /// More than one node has no parent.
    MultipleRoots(NodeId, NodeId),
    /// No node without a parent was found (the parent relation has a cycle).
    NoRoot,
    /// The parent relation contains a cycle involving this node.
    Cycle(NodeId),
    /// A schedule is not a topological order of the nodes it contains.
    NotTopological(NodeId),
    /// A schedule contains a node whose child is missing from the schedule.
    MissingChild {
        /// The scheduled node.
        node: NodeId,
        /// The child that is not part of the schedule.
        child: NodeId,
    },
    /// A schedule contains the same node twice.
    DuplicateNode(NodeId),
    /// The memory bound is too small to execute this task at all
    /// (`M < w̄_i`); no amount of I/O can make the traversal feasible.
    InsufficientMemory {
        /// The offending node.
        node: NodeId,
        /// Memory required to execute the node (`w̄_i`).
        required: u64,
        /// Available memory `M`.
        available: u64,
    },
    /// An I/O function assigns a node more I/O than the size of its output.
    IoExceedsWeight {
        /// The offending node.
        node: NodeId,
        /// Requested I/O volume `τ(i)`.
        io: u64,
        /// Output size `w_i`.
        weight: u64,
    },
    /// A traversal `(σ, τ)` exceeds the memory bound at some step.
    MemoryExceeded {
        /// The node being executed when the bound was exceeded.
        node: NodeId,
        /// Memory in use at that step.
        used: u64,
        /// Available memory `M`.
        available: u64,
    },
    /// A solve report is inconsistent with the instance it reports on
    /// (a reported quantity does not match its recomputation).
    ReportMismatch {
        /// Name of the mismatched quantity.
        field: &'static str,
        /// The reported value.
        reported: u64,
        /// The recomputed value.
        actual: u64,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree has no nodes"),
            TreeError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            TreeError::MultipleRoots(a, b) => {
                write!(f, "multiple roots: {a:?} and {b:?}")
            }
            TreeError::NoRoot => write!(f, "no root found (cyclic parent relation)"),
            TreeError::Cycle(n) => write!(f, "cycle in parent relation at {n:?}"),
            TreeError::NotTopological(n) => {
                write!(f, "schedule is not topological at node {n:?}")
            }
            TreeError::MissingChild { node, child } => {
                write!(f, "schedule contains {node:?} but not its child {child:?}")
            }
            TreeError::DuplicateNode(n) => write!(f, "schedule contains {n:?} twice"),
            TreeError::InsufficientMemory {
                node,
                required,
                available,
            } => write!(
                f,
                "node {node:?} needs {required} memory units but only {available} are available"
            ),
            TreeError::IoExceedsWeight { node, io, weight } => write!(
                f,
                "I/O function writes {io} units of node {node:?} whose output is only {weight}"
            ),
            TreeError::MemoryExceeded {
                node,
                used,
                available,
            } => write!(
                f,
                "traversal uses {used} memory units at node {node:?} but only {available} are available"
            ),
            TreeError::ReportMismatch {
                field,
                reported,
                actual,
            } => write!(
                f,
                "solve report is inconsistent: {field} reported as {reported}, recomputed as {actual}"
            ),
        }
    }
}

impl std::error::Error for TreeError {}
