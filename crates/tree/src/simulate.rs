//! Memory and I/O simulation of schedules.
//!
//! Two simulators are provided:
//!
//! * [`peak_memory`] / [`memory_profile`] — the *in-core* profiler: how much
//!   main memory a schedule needs when no I/O is allowed;
//! * [`fif_io`] — the *out-of-core* simulator: given a memory bound `M`, run
//!   the schedule and perform I/O with the **Furthest-in-the-Future** (FiF)
//!   eviction policy, which by Theorem 1 of the paper produces an I/O function
//!   `τ` of minimum total volume for that schedule.
//!
//! Every scheduling algorithm in the workspace returns only a schedule `σ`;
//! the I/O volume charged to it is always the volume reported by [`fif_io`],
//! which keeps comparisons between heuristics fair and matches the paper's
//! methodology.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::TreeError;
use crate::schedule::Schedule;
use crate::tree::{NodeId, Tree};

/// Memory usage of one scheduled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStep {
    /// The executed node.
    pub node: NodeId,
    /// Memory in use while the node executes (other active data + `w̄_i`).
    pub peak_during: u64,
    /// Memory in use right after the node completes (active data only).
    pub resident_after: u64,
}

/// The in-core memory profile of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryProfile {
    steps: Vec<ProfileStep>,
}

impl MemoryProfile {
    /// Per-step memory usage, in schedule order.
    pub fn steps(&self) -> &[ProfileStep] {
        &self.steps
    }

    /// The peak memory of the schedule: the maximum over all steps of the
    /// memory in use during execution.
    pub fn peak(&self) -> u64 {
        self.steps.iter().map(|s| s.peak_during).max().unwrap_or(0)
    }

    /// Memory resident after the last scheduled step (the output of the last
    /// node plus any still-active data).
    pub fn final_resident(&self) -> u64 {
        self.steps.last().map(|s| s.resident_after).unwrap_or(0)
    }
}

/// Computes the in-core memory profile of `schedule` on `tree`.
///
/// Fails if the schedule is not a valid (partial) traversal of the tree.
pub fn memory_profile(tree: &Tree, schedule: &Schedule) -> Result<MemoryProfile, TreeError> {
    schedule.validate(tree)?;
    let mut resident = 0u64;
    let mut steps = Vec::with_capacity(schedule.len());
    for node in schedule.iter() {
        let cw = tree.children_weight(node);
        let w = tree.weight(node);
        let peak_during = resident + w.saturating_sub(cw);
        resident = resident - cw + w;
        steps.push(ProfileStep {
            node,
            peak_during,
            resident_after: resident,
        });
    }
    Ok(MemoryProfile { steps })
}

/// The in-core peak memory of `schedule` on `tree` (paper: the MinMem
/// objective evaluated on one schedule).
pub fn peak_memory(tree: &Tree, schedule: &Schedule) -> Result<u64, TreeError> {
    Ok(memory_profile(tree, schedule)?.peak())
}

/// Result of an out-of-core (FiF) simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoResult {
    /// Total volume of I/O (units written to disk): `Σ_i τ(i)`.
    pub total_io: u64,
    /// The induced I/O function `τ`, indexed by node id. `τ(i) = 0` for nodes
    /// that are not part of the schedule.
    pub tau: Vec<u64>,
    /// Peak in-core memory the schedule would need with an unlimited memory
    /// (useful to decide whether any I/O was unavoidable).
    pub peak_in_core: u64,
}

impl IoResult {
    /// The paper's performance metric for an out-of-core execution:
    /// `(M + IO) / M` (Section 6.2). A schedule without I/O scores 1.0.
    pub fn performance(&self, memory: u64) -> f64 {
        assert!(memory > 0, "memory bound must be positive");
        (memory + self.total_io) as f64 / memory as f64
    }
}

/// Reusable buffers for [`fif_io_with`].
///
/// The FiF simulator needs four working arrays plus a heap; callers that
/// replay many schedules (the RecExpand expansion loop, benchmarks, the
/// golden corpus) allocate one `FifScratch` and amortize every buffer across
/// runs. Returned `τ` vectors can be handed back via [`FifScratch::recycle`]
/// so even the output buffer rotates through a pool.
#[derive(Debug, Default)]
pub struct FifScratch {
    in_mem: Vec<u64>,
    active: Vec<bool>,
    positions: Vec<usize>,
    heap: BinaryHeap<(usize, Reverse<u32>)>,
    tau_pool: Vec<Vec<u64>>,
}

impl FifScratch {
    /// Creates an empty scratch space; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a `τ` buffer (from a previous [`IoResult`]) to the pool so
    /// the next simulation reuses its capacity.
    pub fn recycle(&mut self, mut tau: Vec<u64>) {
        tau.clear();
        self.tau_pool.push(tau);
    }
}

/// Runs `schedule` on `tree` under memory bound `memory`, performing I/O with
/// the Furthest-in-the-Future policy, and returns the I/O volume and the
/// induced I/O function `τ`.
///
/// By Theorem 1 of the paper this is an I/O-optimal `τ` for the given
/// schedule, so the returned volume is "the" I/O cost of the schedule.
///
/// Fails if the schedule is invalid or if some node needs more than `memory`
/// units on its own (`w̄_i > M`), in which case no traversal exists.
pub fn fif_io(tree: &Tree, schedule: &Schedule, memory: u64) -> Result<IoResult, TreeError> {
    schedule.validate(tree)?;
    let mut scratch = FifScratch::new();
    fif_io_with(tree, schedule, memory, &mut scratch)
}

/// Scratch-reusing variant of [`fif_io`]: the inner loop of the simulator,
/// allocation-free once `scratch` has warmed up.
///
/// The caller must pass a schedule that is valid for `tree` (checked only as
/// a debug assertion here); [`fif_io`] is the validating wrapper.
// lint: no_alloc
pub fn fif_io_with(
    tree: &Tree,
    schedule: &Schedule,
    memory: u64,
    scratch: &mut FifScratch,
) -> Result<IoResult, TreeError> {
    debug_assert!(
        schedule.validate(tree).is_ok(), // lint: allow(L006, debug-only validation, compiled out of release hot paths)
        "fif_io_with needs a valid schedule"
    );
    schedule.positions_into(tree, &mut scratch.positions);
    let positions = &scratch.positions;

    // in_mem[i] = units of node i's output currently in main memory
    // (meaningful only while i is active).
    scratch.in_mem.clear();
    scratch.in_mem.resize(tree.len(), 0);
    scratch.active.clear();
    scratch.active.resize(tree.len(), false);
    let in_mem = &mut scratch.in_mem;
    let active = &mut scratch.active;
    let mut tau = scratch.tau_pool.pop().unwrap_or_default();
    tau.resize(tree.len(), 0);
    let mut total_io = 0u64;
    let mut resident = 0u64; // Σ in_mem over active nodes
    let mut peak_in_core = 0u64;
    let mut in_core_resident = 0u64; // resident if no I/O were ever done

    // Max-heap of active nodes keyed by the step at which their parent (the
    // consumer of their data) executes; the node needed furthest in the
    // future sits on top. Entries are lazily invalidated.
    scratch.heap.clear();
    let heap = &mut scratch.heap;

    for (step, node) in schedule.iter().enumerate() {
        let w = tree.weight(node);
        let cw = tree.children_weight(node);
        let wbar = w.max(cw);
        if wbar > memory {
            return Err(TreeError::InsufficientMemory {
                node,
                required: wbar,
                available: memory,
            });
        }

        // In-core accounting (for `peak_in_core`).
        peak_in_core = peak_in_core.max(in_core_resident + w.saturating_sub(cw));
        in_core_resident = in_core_resident - cw + w;

        // Units of the children currently evicted; they must be read back
        // before the node can execute. Reads are not counted as I/O but the
        // space they occupy is part of w̄_i.
        let children_in_mem: u64 = tree.children(node).iter().map(|&c| in_mem[c.index()]).sum();
        let others_resident = resident - children_in_mem;

        // Evict non-children active data, furthest-in-the-future first, until
        // the node fits.
        let mut to_evict = (others_resident + wbar).saturating_sub(memory);
        while to_evict > 0 {
            let (par_pos, Reverse(raw)) = heap
                .pop()
                // lint: allow(L001, to_evict > 0 implies some non-child active data is resident, so the heap holds a live entry)
                .expect("eviction needed but no active data to evict");
            let victim = NodeId(raw);
            let stale = !active[victim.index()]
                || in_mem[victim.index()] == 0
                || tree.parent(victim) == Some(node)
                || par_pos != parent_position(tree, positions, victim);
            if stale {
                continue;
            }
            let amount = in_mem[victim.index()].min(to_evict);
            in_mem[victim.index()] -= amount;
            resident -= amount;
            tau[victim.index()] += amount;
            total_io = total_io.saturating_add(amount);
            to_evict -= amount;
            if in_mem[victim.index()] > 0 {
                heap.push((par_pos, Reverse(victim.0))); // lint: allow(L003, re-push into the scratch heap: capacity amortized across runs)
            }
        }

        // Read children back (no I/O counted), consume them, produce the
        // node's output fully in memory.
        for &c in tree.children(node) {
            debug_assert!(active[c.index()]);
            resident -= in_mem[c.index()];
            in_mem[c.index()] = 0;
            active[c.index()] = false;
        }
        active[node.index()] = true;
        in_mem[node.index()] = w;
        resident = resident.saturating_add(w);
        // lint: allow(L003, push into the scratch heap: capacity amortized across runs)
        heap.push((parent_position(tree, positions, node), Reverse(node.0)));

        debug_assert!(
            resident <= memory || resident - w <= memory.saturating_sub(wbar),
            "resident data exceeds the memory bound after step {step}"
        );
    }

    // Invariant layer: every test that reaches the simulator doubles as an
    // invariant test in debug builds.
    // lint: allow(L006, debug-only validation, compiled out of release hot paths)
    debug_assert!(tree.validate().is_ok(), "fif_io ran on a malformed tree");
    debug_assert_eq!(
        total_io,
        tau.iter().sum::<u64>(),
        "total I/O must equal the sum of the induced τ"
    );
    Ok(IoResult {
        total_io,
        tau,
        peak_in_core,
    })
}

// lint: no_alloc
#[inline]
fn parent_position(tree: &Tree, positions: &[usize], node: NodeId) -> usize {
    match tree.parent(node) {
        Some(p) => positions[p.index()],
        // The subtree root's output is needed "after the end" of the
        // schedule: furthest in the future of all.
        None => usize::MAX,
    }
}

/// Checks that `(schedule, tau)` is a *valid traversal* of `tree` under
/// memory bound `memory`, following the three conditions of Section 3.1, and
/// returns its total I/O volume.
pub fn check_traversal(
    tree: &Tree,
    schedule: &Schedule,
    tau: &[u64],
    memory: u64,
) -> Result<u64, TreeError> {
    schedule.validate(tree)?;
    assert_eq!(tau.len(), tree.len(), "tau must be indexed by node id");
    for node in tree.node_ids() {
        if tau[node.index()] > tree.weight(node) {
            return Err(TreeError::IoExceedsWeight {
                node,
                io: tau[node.index()],
                weight: tree.weight(node),
            });
        }
    }
    // resident = Σ over active nodes of (w_k − τ(k)); active means produced
    // and not yet consumed by the parent.
    let mut resident = 0u64;
    let mut active = vec![false; tree.len()];
    for node in schedule.iter() {
        let w = tree.weight(node);
        let cw = tree.children_weight(node);
        let wbar = w.max(cw);
        // Children contribute w_k − τ(k) to the resident set right now, but
        // during the execution of `node` they must be entirely in memory, so
        // the memory in use is (resident − Σ_children (w_k − τ(k))) + w̄_i.
        let children_resident: u64 = tree
            .children(node)
            .iter()
            .map(|&c| tree.weight(c) - tau[c.index()])
            .sum();
        let used = resident - children_resident + wbar;
        if used > memory {
            return Err(TreeError::MemoryExceeded {
                node,
                used,
                available: memory,
            });
        }
        for &c in tree.children(node) {
            debug_assert!(active[c.index()]);
            active[c.index()] = false;
        }
        resident -= children_resident;
        active[node.index()] = true;
        resident += w - tau[node.index()];
    }
    Ok(tau.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    /// root(5) <- a(3) <- c(4) ; root <- b(2)
    fn sample() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.add_root(5);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        b.add_child(r, 2);
        b.build().unwrap()
    }

    #[test]
    fn profile_of_postorder() {
        let t = sample();
        let s = Schedule::postorder(&t);
        // postorder = [c, a, b, root]
        let p = memory_profile(&t, &s).unwrap();
        let peaks: Vec<u64> = p.steps().iter().map(|s| s.peak_during).collect();
        // c: 4 ; a: 4 (c's 4 in memory, output 3 <= 4) ; b: 3 + 2 = 5 ;
        // root: max(5, 3+2) = 5.
        assert_eq!(peaks, vec![4, 4, 5, 5]);
        assert_eq!(p.peak(), 5);
        assert_eq!(p.final_resident(), 5);
        assert_eq!(peak_memory(&t, &s).unwrap(), 5);
    }

    #[test]
    fn fif_no_io_when_memory_large() {
        let t = sample();
        let s = Schedule::postorder(&t);
        let r = fif_io(&t, &s, 100).unwrap();
        assert_eq!(r.total_io, 0);
        assert_eq!(r.peak_in_core, 5);
        assert!((r.performance(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fif_exact_memory_no_io() {
        let t = sample();
        let s = Schedule::postorder(&t);
        let r = fif_io(&t, &s, 5).unwrap();
        assert_eq!(r.total_io, 0);
    }

    #[test]
    fn fif_io_counted_when_memory_tight() {
        let t = sample();
        let s = Schedule::postorder(&t);
        // M = 4: executing b (w=2) with a's output (3) resident needs 5 > 4,
        // so 1 unit of a is written; executing root needs a and b entirely in
        // memory: 5 > 4 is infeasible? No: w̄_root = 5 > M = 4, infeasible.
        assert!(matches!(
            fif_io(&t, &s, 4),
            Err(TreeError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn fif_evicts_furthest_in_future() {
        // root(3) <- mid(2) <- leaf(4), and root <- leaf2(1).
        // postorder: leaf(4), mid(2), leaf2(1), root(3).
        let mut b = TreeBuilder::new();
        let r = b.add_root(3);
        let mid = b.add_child(r, 2);
        let leaf = b.add_child(mid, 4);
        b.add_child(r, 1);
        let t = b.build().unwrap();
        let s = Schedule::postorder(&t);
        // With M = 4: executing mid holds leaf's 4 units (w̄ = 4, fits with
        // nothing else active). Executing leaf2 (w = 1) with mid's 2 units
        // resident fits (3 ≤ 4). The root needs mid + leaf2 = 3 ≤ 4. No I/O.
        let res = fif_io(&t, &s, 4).unwrap();
        assert_eq!(res.total_io, 0);
        // With M = 3: executing mid still needs w̄ = 4 > 3 → infeasible.
        assert!(fif_io(&t, &s, 3).is_err());
        // Sanity: leaf weight irrelevant to eviction order here, but tau must
        // stay all-zero in the feasible run.
        assert!(res.tau.iter().all(|&x| x == 0));
        assert_eq!(tree_leaf_check(&t, leaf), 4);
    }

    fn tree_leaf_check(t: &Tree, leaf: NodeId) -> u64 {
        t.weight(leaf)
    }

    #[test]
    fn fif_partial_eviction_and_tau() {
        // root(2) <- a(3), root <- b(3); chain under a: a <- a1(4).
        // postorder [a1, a, b, root], M = 6.
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(2);
        let a = bld.add_child(r, 3);
        bld.add_child(a, 4);
        bld.add_child(r, 3);
        let t = bld.build().unwrap();
        let s = Schedule::postorder(&t);
        assert_eq!(peak_memory(&t, &s).unwrap(), 6);
        let res = fif_io(&t, &s, 6).unwrap();
        assert_eq!(res.total_io, 0);

        // M = 5: executing b (w=3) with a (3) resident → evict 1 unit of a;
        // then the root needs a and b entirely in memory: w̄_root = 6 > 5
        // → infeasible.
        assert!(fif_io(&t, &s, 5).is_err());
    }

    #[test]
    fn fif_counts_sibling_eviction() {
        // root(1) with two chains: a(2) <- la(6) and b(2) <- lb(6).
        // Postorder [la, a, lb, b, root].
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 2);
        bld.add_child(a, 6);
        let b = bld.add_child(r, 2);
        bld.add_child(b, 6);
        let t = bld.build().unwrap();
        let s = Schedule::postorder(&t);
        // Peak of the postorder is 8 (producing lb while a's 2 units are
        // active), so M = 8 needs no I/O.
        assert_eq!(peak_memory(&t, &s).unwrap(), 8);
        let res = fif_io(&t, &s, 8).unwrap();
        assert_eq!(res.total_io, 0);
        // M = 7: producing lb (6 units) with a's 2 units active exceeds the
        // bound by 1, so exactly one unit of a is written out (and read back
        // for the root). All other steps fit.
        let res7 = fif_io(&t, &s, 7).unwrap();
        assert_eq!(res7.total_io, 1);
        assert_eq!(res7.tau[a.index()], 1);
        assert_eq!(res7.tau.iter().sum::<u64>(), 1);
        // The traversal (σ, FiF τ) must be valid under M = 7.
        assert_eq!(check_traversal(&t, &s, &res7.tau, 7).unwrap(), 1);
        // And invalid if we pretend no I/O happened.
        assert!(check_traversal(&t, &s, &vec![0; t.len()], 7).is_err());
    }

    #[test]
    fn check_traversal_rejects_overcommitted_tau() {
        let t = sample();
        let s = Schedule::postorder(&t);
        let mut tau = vec![0u64; t.len()];
        tau[2] = 100; // exceeds w = 4
        assert!(matches!(
            check_traversal(&t, &s, &tau, 10),
            Err(TreeError::IoExceedsWeight { .. })
        ));
    }

    #[test]
    fn check_traversal_detects_memory_violation() {
        let t = sample();
        let s = Schedule::postorder(&t);
        let tau = vec![0u64; t.len()];
        assert!(matches!(
            check_traversal(&t, &s, &tau, 4),
            Err(TreeError::MemoryExceeded { .. })
        ));
        assert_eq!(check_traversal(&t, &s, &tau, 5).unwrap(), 0);
    }

    #[test]
    fn subtree_schedule_simulation() {
        let t = sample();
        let s = Schedule::new(vec![NodeId(2), NodeId(1)]);
        let p = memory_profile(&t, &s).unwrap();
        assert_eq!(p.peak(), 4);
        let r = fif_io(&t, &s, 4).unwrap();
        assert_eq!(r.total_io, 0);
    }
}
