//! Multi-threaded experiment runner.
//!
//! Evaluates a set of algorithms over a dataset of instances, one memory
//! bound at a time, and collects per-instance I/O volumes and performances.
//! Instances are distributed over worker threads through a crossbeam channel
//! (each instance is independent, so this is embarrassingly parallel); the
//! per-instance work itself stays sequential, exactly like the paper's
//! simulations.

use crossbeam::channel;
use parking_lot::Mutex;

use oocts_core::algorithms::Algorithm;
use oocts_tree::Tree;

use crate::bounds::{MemoryBound, MemoryBounds};
use crate::metric::performance;
use crate::profile::PerformanceProfile;

/// Configuration of one experiment (one dataset × one memory bound).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The algorithms to compare.
    pub algorithms: Vec<Algorithm>,
    /// Which of the paper's memory bounds to use.
    pub bound: MemoryBound,
    /// Number of worker threads (0 = one per available CPU).
    pub threads: usize,
    /// Skip instances whose optimal in-core peak equals the structural lower
    /// bound (no I/O is ever needed on them); the paper filters the TREES
    /// dataset this way.
    pub filter_interesting: bool,
}

impl ExperimentConfig {
    /// The paper's SYNTH configuration (four algorithms) at the given bound.
    pub fn synth(bound: MemoryBound) -> Self {
        ExperimentConfig {
            algorithms: Algorithm::SYNTH_SET.to_vec(),
            bound,
            threads: 0,
            filter_interesting: false,
        }
    }

    /// The paper's TREES configuration (three algorithms, filtered) at the
    /// given bound.
    pub fn trees(bound: MemoryBound) -> Self {
        ExperimentConfig {
            algorithms: Algorithm::TREES_SET.to_vec(),
            bound,
            threads: 0,
            filter_interesting: true,
        }
    }
}

/// Results of one algorithm set on one instance.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance name.
    pub name: String,
    /// Number of tasks of the instance.
    pub nodes: usize,
    /// The instance's memory bounds.
    pub bounds: MemoryBounds,
    /// The concrete memory value used.
    pub memory: u64,
    /// I/O volume of every algorithm, in the order of the configuration.
    pub io_volumes: Vec<u64>,
    /// Performance `(M + IO)/M` of every algorithm.
    pub performances: Vec<f64>,
}

impl InstanceResult {
    /// `true` if at least two algorithms obtained different I/O volumes — the
    /// restriction used in the right-hand plot of Figure 5.
    pub fn algorithms_differ(&self) -> bool {
        self.io_volumes.windows(2).any(|w| w[0] != w[1])
    }
}

/// The collected results of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// The algorithms compared (column order of the per-instance vectors).
    pub algorithms: Vec<Algorithm>,
    /// The memory bound used.
    pub bound: MemoryBound,
    /// One entry per (kept) instance.
    pub results: Vec<InstanceResult>,
}

impl ExperimentResults {
    /// Builds the Dolan–Moré performance profile of these results.
    pub fn profile(&self) -> PerformanceProfile {
        let names = self.algorithms.iter().map(|a| a.name().to_string()).collect();
        let mut perfs = vec![Vec::with_capacity(self.results.len()); self.algorithms.len()];
        for r in &self.results {
            for (a, &p) in r.performances.iter().enumerate() {
                perfs[a].push(p);
            }
        }
        PerformanceProfile::from_performances(names, perfs)
    }

    /// The subset of instances on which the algorithms do not all obtain the
    /// same I/O volume (right-hand plots of Figures 5, 9, 11).
    pub fn restricted_to_differing(&self) -> ExperimentResults {
        ExperimentResults {
            algorithms: self.algorithms.clone(),
            bound: self.bound,
            results: self
                .results
                .iter()
                .filter(|r| r.algorithms_differ())
                .cloned()
                .collect(),
        }
    }

    /// Per-instance CSV (one row per instance, one I/O column per algorithm).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("instance,nodes,lb,peak,memory");
        for a in &self.algorithms {
            out.push_str(&format!(",io_{}", a.name()));
        }
        out.push('\n');
        for r in &self.results {
            out.push_str(&format!(
                "{},{},{},{},{}",
                r.name, r.nodes, r.bounds.lower_bound, r.bounds.peak_incore, r.memory
            ));
            for io in &r.io_volumes {
                out.push_str(&format!(",{io}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs every algorithm of the configuration on every instance and collects
/// the results. Instance order is preserved.
pub fn run_experiment(instances: &[(String, Tree)], config: &ExperimentConfig) -> ExperimentResults {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.threads
    };

    let results: Mutex<Vec<Option<InstanceResult>>> = Mutex::new(vec![None; instances.len()]);
    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..instances.len() {
        tx.send(i).expect("channel open");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let rx = rx.clone();
            let results = &results;
            let config = &config;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let (name, tree) = &instances[i];
                    if let Some(r) = evaluate_instance(name, tree, config) {
                        results.lock()[i] = Some(r);
                    }
                }
            });
        }
    });

    ExperimentResults {
        algorithms: config.algorithms.clone(),
        bound: config.bound,
        results: results.into_inner().into_iter().flatten().collect(),
    }
}

fn evaluate_instance(name: &str, tree: &Tree, config: &ExperimentConfig) -> Option<InstanceResult> {
    let bounds = MemoryBounds::of(tree);
    if config.filter_interesting && !bounds.is_interesting() {
        return None;
    }
    let memory = bounds.memory(config.bound);
    let mut io_volumes = Vec::with_capacity(config.algorithms.len());
    let mut performances = Vec::with_capacity(config.algorithms.len());
    for algo in &config.algorithms {
        let res = algo
            .run(tree, memory)
            .expect("memory bound is feasible by construction");
        io_volumes.push(res.io_volume);
        performances.push(performance(memory, res.io_volume));
    }
    Some(InstanceResult {
        name: name.to_string(),
        nodes: tree.len(),
        bounds,
        memory,
        io_volumes,
        performances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::TreeBuilder;

    fn instance(seed: u64) -> (String, Tree) {
        // Small deterministic trees with varying weights.
        let mut b = TreeBuilder::new();
        let r = b.add_root(1 + seed % 3);
        let a = b.add_child(r, 2 + seed % 5);
        b.add_child(a, 6 + seed % 4);
        let c = b.add_child(r, 2);
        b.add_child(c, 5 + seed % 7);
        (format!("inst-{seed}"), b.build().unwrap())
    }

    #[test]
    fn runner_covers_all_instances_in_order() {
        let instances: Vec<_> = (0..16).map(instance).collect();
        let config = ExperimentConfig {
            algorithms: Algorithm::TREES_SET.to_vec(),
            bound: MemoryBound::Middle,
            threads: 4,
            filter_interesting: false,
        };
        let res = run_experiment(&instances, &config);
        assert_eq!(res.results.len(), 16);
        for (i, r) in res.results.iter().enumerate() {
            assert_eq!(r.name, format!("inst-{i}"));
            assert_eq!(r.io_volumes.len(), 3);
        }
        // Deterministic across runs (and thread counts).
        let res1 = run_experiment(&instances, &ExperimentConfig { threads: 1, ..config.clone() });
        for (a, b) in res.results.iter().zip(&res1.results) {
            assert_eq!(a.io_volumes, b.io_volumes);
        }
    }

    #[test]
    fn filtering_drops_uninteresting_instances() {
        // A chain has peak == LB: always filtered.
        let mut b = TreeBuilder::new();
        let r = b.add_root(3);
        let x = b.add_child(r, 4);
        b.add_child(x, 5);
        let chain = ("chain".to_string(), b.build().unwrap());
        let interesting = instance(1);
        let config = ExperimentConfig {
            algorithms: vec![Algorithm::PostOrderMinIo],
            bound: MemoryBound::Middle,
            threads: 1,
            filter_interesting: true,
        };
        let res = run_experiment(&[chain, interesting], &config);
        assert_eq!(res.results.len(), 1);
        assert_eq!(res.results[0].name, "inst-1");
    }

    #[test]
    fn profile_and_csv_are_consistent() {
        let instances: Vec<_> = (0..8).map(instance).collect();
        let config = ExperimentConfig::synth(MemoryBound::Middle);
        let res = run_experiment(&instances, &config);
        let profile = res.profile();
        assert_eq!(profile.instances(), res.results.len());
        assert_eq!(profile.algorithms().len(), 4);
        let csv = res.to_csv();
        assert_eq!(csv.lines().count(), res.results.len() + 1);
        // The restriction keeps only instances where algorithms differ.
        let diff = res.restricted_to_differing();
        for r in &diff.results {
            assert!(r.algorithms_differ());
        }
    }
}
