//! Multi-threaded experiment runner.
//!
//! Evaluates a set of [`Scheduler`]s over a dataset of instances, one memory
//! bound at a time, and collects per-instance I/O volumes and performances.
//! Execution is delegated to the work-stealing [`crate::engine`]:
//! the experiment matrix is decomposed into (instance × scheduler) cells,
//! distributed over per-worker deques, and re-assembled into deterministic
//! instance order — see the module docs of [`crate::engine`] for the full
//! protocol. Each cell stays sequential inside, exactly like the paper's
//! simulations.
//!
//! The runner is generic over the strategy set: anything implementing
//! [`Scheduler`] — built-in or user-defined, typically obtained from
//! [`oocts_core::registry::SchedulerRegistry`] — flows through
//! [`run_experiment`], the Dolan–Moré profiles and the CSV export under its
//! registered name.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use oocts_core::scheduler::{synth_schedulers, trees_schedulers, Scheduler};
use oocts_tree::{Tree, TreeError};

use crate::bounds::{MemoryBound, MemoryBounds};
use crate::engine::{self, EngineStats, Granularity};
use crate::profile::PerformanceProfile;

/// Configuration of one experiment (one dataset × one memory bound).
#[derive(Clone)]
pub struct ExperimentConfig {
    /// The scheduling strategies to compare.
    pub schedulers: Vec<Arc<dyn Scheduler>>,
    /// Which of the paper's memory bounds to use.
    pub bound: MemoryBound,
    /// Number of worker threads (0 = one per available CPU).
    pub threads: usize,
    /// Skip instances whose optimal in-core peak equals the structural lower
    /// bound (no I/O is ever needed on them); the paper filters the TREES
    /// dataset this way.
    pub filter_interesting: bool,
    /// How the engine decomposes the experiment matrix into work items
    /// (cell granularity by default; instance granularity reproduces the
    /// pre-engine sharding for comparisons).
    pub granularity: Granularity,
}

impl ExperimentConfig {
    /// A configuration comparing the given strategies at the given bound.
    pub fn new(schedulers: Vec<Arc<dyn Scheduler>>, bound: MemoryBound) -> Self {
        ExperimentConfig {
            schedulers,
            bound,
            threads: 0,
            filter_interesting: false,
            granularity: Granularity::Cell,
        }
    }

    /// The paper's SYNTH configuration (four strategies) at the given bound.
    pub fn synth(bound: MemoryBound) -> Self {
        ExperimentConfig::new(synth_schedulers(), bound)
    }

    /// The paper's TREES configuration (three strategies, filtered) at the
    /// given bound.
    pub fn trees(bound: MemoryBound) -> Self {
        ExperimentConfig {
            filter_interesting: true,
            ..ExperimentConfig::new(trees_schedulers(), bound)
        }
    }

    /// The names of the configured strategies, in column order.
    pub fn scheduler_names(&self) -> Vec<String> {
        self.schedulers.iter().map(|s| s.name()).collect()
    }
}

impl std::fmt::Debug for ExperimentConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentConfig")
            .field("schedulers", &self.scheduler_names())
            .field("bound", &self.bound)
            .field("threads", &self.threads)
            .field("filter_interesting", &self.filter_interesting)
            .field("granularity", &self.granularity)
            .finish()
    }
}

/// Results of one strategy set on one instance.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance name.
    pub name: String,
    /// Number of tasks of the instance.
    pub nodes: usize,
    /// The instance's memory bounds.
    pub bounds: MemoryBounds,
    /// The concrete memory value used.
    pub memory: u64,
    /// I/O volume of every strategy, in the order of the configuration.
    pub io_volumes: Vec<u64>,
    /// Performance `(M + IO)/M` of every strategy.
    pub performances: Vec<f64>,
    /// In-core peak of every strategy's schedule.
    pub peak_memories: Vec<u64>,
    /// Scheduling wall-time of every strategy on this instance (the
    /// [`oocts_core::scheduler::SolveReport::wall_time`] of each cell).
    /// Non-deterministic; the CSV export and all regression comparisons
    /// deliberately exclude it.
    pub wall_times: Vec<Duration>,
    /// Engine-measured wall-time of every *cell* — scheduling plus schedule
    /// replay and validation, everything the worker spent on the
    /// (instance × scheduler) pair. Non-deterministic, excluded from the
    /// CSV export like [`wall_times`](Self::wall_times).
    pub cell_times: Vec<Duration>,
}

impl InstanceResult {
    /// `true` if at least two strategies obtained different I/O volumes — the
    /// restriction used in the right-hand plot of Figure 5.
    pub fn algorithms_differ(&self) -> bool {
        self.io_volumes.windows(2).any(|w| w[0] != w[1])
    }

    /// This instance's CSV row (RFC-4180-quoted, newline-terminated) — one
    /// line of [`ExperimentResults::to_csv`]. Streaming consumers emit
    /// [`csv_header`] once and then one row per
    /// [`run_experiment_streaming`] callback; the concatenation is
    /// byte-identical to the batch export.
    pub fn csv_row(&self) -> String {
        let mut out = String::with_capacity(self.name.len() + 8 * 12 + self.io_volumes.len() * 12);
        push_csv_cell(&mut out, &self.name);
        let _ = write!(
            out,
            ",{},{},{},{}",
            self.nodes, self.bounds.lower_bound, self.bounds.peak_incore, self.memory
        );
        for io in &self.io_volumes {
            let _ = write!(out, ",{io}");
        }
        out.push('\n');
        out
    }
}

/// The CSV header line (newline-terminated) for the given scheduler-name
/// columns, RFC-4180-quoted like the rows of
/// [`InstanceResult::csv_row`].
pub fn csv_header(scheduler_names: &[String]) -> String {
    let mut out =
        String::with_capacity(32 + scheduler_names.iter().map(|n| n.len() + 4).sum::<usize>());
    out.push_str("instance,nodes,lb,peak,memory");
    for name in scheduler_names {
        out.push(',');
        // Quote the whole `io_<name>` cell: a quote opening after the
        // `io_` prefix would be literal per RFC 4180.
        push_csv_cell(&mut out, &format!("io_{name}"));
    }
    out.push('\n');
    out
}

/// A failure inside [`run_experiment`], pinned to the cell that produced it.
///
/// The runner abandons the remaining cells on the first error; this type
/// records *which* (instance, scheduler) cell failed so a failure deep in a
/// thousand-instance matrix is diagnosable without a re-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError {
    /// Name of the instance whose evaluation failed.
    pub instance: String,
    /// Name of the scheduler that failed on it.
    pub scheduler: String,
    /// The underlying failure.
    pub source: TreeError,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduler {} failed on instance {:?}: {}",
            self.scheduler, self.instance, self.source
        )
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The collected results of an experiment.
#[derive(Clone)]
pub struct ExperimentResults {
    /// The strategies compared (column order of the per-instance vectors).
    pub schedulers: Vec<Arc<dyn Scheduler>>,
    /// The memory bound used.
    pub bound: MemoryBound,
    /// One entry per (kept) instance.
    pub results: Vec<InstanceResult>,
    /// Execution statistics of the engine run that produced these results
    /// (threads, per-worker steal/execute counters, wall-clock). `None` on
    /// results assembled outside the engine (e.g. by deserialization).
    pub engine: Option<EngineStats>,
}

impl std::fmt::Debug for ExperimentResults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentResults")
            .field("schedulers", &self.scheduler_names())
            .field("bound", &self.bound)
            .field("results", &self.results)
            .field("engine", &self.engine)
            .finish()
    }
}

/// Quotes one CSV cell per RFC 4180: cells containing a comma, a double
/// quote, or a line break are wrapped in double quotes, with inner quotes
/// doubled. Plain cells are appended as-is.
fn push_csv_cell(out: &mut String, cell: &str) {
    if cell.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

impl ExperimentResults {
    /// The names of the compared strategies, in column order.
    pub fn scheduler_names(&self) -> Vec<String> {
        self.schedulers.iter().map(|s| s.name()).collect()
    }

    /// Builds the Dolan–Moré performance profile of these results.
    pub fn profile(&self) -> PerformanceProfile {
        let names = self.scheduler_names();
        let mut perfs = vec![Vec::with_capacity(self.results.len()); self.schedulers.len()];
        for r in &self.results {
            for (a, &p) in r.performances.iter().enumerate() {
                perfs[a].push(p);
            }
        }
        PerformanceProfile::from_performances(names, perfs)
    }

    /// The subset of instances on which the strategies do not all obtain the
    /// same I/O volume (right-hand plots of Figures 5, 9, 11). Column order
    /// is preserved.
    pub fn restricted_to_differing(&self) -> ExperimentResults {
        ExperimentResults {
            schedulers: self.schedulers.clone(),
            bound: self.bound,
            results: self
                .results
                .iter()
                .filter(|r| r.algorithms_differ())
                .cloned()
                .collect(),
            engine: self.engine.clone(),
        }
    }

    /// Total I/O volume of strategy column `a` over all kept instances.
    pub fn total_io(&self, a: usize) -> u64 {
        self.results.iter().map(|r| r.io_volumes[a]).sum()
    }

    /// Mean performance of strategy column `a` over all kept instances
    /// (`NaN` on an empty result set).
    pub fn mean_performance(&self, a: usize) -> f64 {
        let sum: f64 = self.results.iter().map(|r| r.performances[a]).sum();
        sum / self.results.len() as f64
    }

    /// Largest in-core peak reported by strategy column `a`.
    pub fn max_peak(&self, a: usize) -> u64 {
        self.results
            .iter()
            .map(|r| r.peak_memories[a])
            .max()
            .unwrap_or(0)
    }

    /// Total scheduling wall-time of strategy column `a` (sum of the
    /// per-instance [`oocts_core::scheduler::SolveReport::wall_time`]s).
    pub fn total_schedule_time(&self, a: usize) -> Duration {
        self.results.iter().map(|r| r.wall_times[a]).sum()
    }

    /// Total engine-measured cell wall-time of strategy column `a` (sum of
    /// the per-instance [`InstanceResult::cell_times`] — the full
    /// schedule-and-replay cost, not just the scheduling part).
    pub fn total_cell_time(&self, a: usize) -> Duration {
        self.results.iter().map(|r| r.cell_times[a]).sum()
    }

    /// Per-instance CSV (one row per instance, one I/O column per strategy),
    /// RFC-4180-quoted where needed. Byte-identical to streaming
    /// [`csv_header`] + [`InstanceResult::csv_row`] per row.
    pub fn to_csv(&self) -> String {
        let mut out = csv_header(&self.scheduler_names());
        for r in &self.results {
            out.push_str(&r.csv_row());
        }
        out
    }
}

/// Runs every strategy of the configuration on every instance and collects
/// the results. Instance order is preserved.
///
/// # Errors
/// Returns the error of the lowest-indexed failing cell, naming the
/// (instance, scheduler) pair; the remaining work is abandoned as soon as
/// any worker records an error. The paper's memory bounds are feasible by
/// construction, so an error indicates a misconfigured instance or a buggy
/// strategy.
pub fn run_experiment(
    instances: &[(String, Tree)],
    config: &ExperimentConfig,
) -> Result<ExperimentResults, ExperimentError> {
    run_experiment_streaming(instances, config, |_| {})
}

/// Like [`run_experiment`], but additionally hands every completed row to
/// `on_row` — in deterministic instance order — as soon as its instance
/// finishes, typically long before the whole grid does. This is how the
/// figure binaries stream CSV rows to disk while large instances are still
/// being solved.
///
/// Rows observed by `on_row` before an error surfaces are valid results of
/// their instances; on error, the partial stream simply ends early.
///
/// # Errors
/// Exactly like [`run_experiment`]: the lowest-indexed failing cell wins.
pub fn run_experiment_streaming(
    instances: &[(String, Tree)],
    config: &ExperimentConfig,
    on_row: impl FnMut(&InstanceResult),
) -> Result<ExperimentResults, ExperimentError> {
    let (results, stats) = engine::run(instances, config, on_row)?;
    Ok(ExperimentResults {
        schedulers: config.schedulers.clone(),
        bound: config.bound,
        results,
        engine: Some(stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_core::scheduler::PostOrderMinIo;
    use oocts_tree::{Schedule, TreeBuilder, TreeError};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn instance(seed: u64) -> (String, Tree) {
        // Small deterministic trees with varying weights.
        let mut b = TreeBuilder::new();
        let r = b.add_root(1 + seed % 3);
        let a = b.add_child(r, 2 + seed % 5);
        b.add_child(a, 6 + seed % 4);
        let c = b.add_child(r, 2);
        b.add_child(c, 5 + seed % 7);
        (format!("inst-{seed}"), b.build().unwrap())
    }

    #[test]
    fn runner_covers_all_instances_in_order() {
        let instances: Vec<_> = (0..16).map(instance).collect();
        let config = ExperimentConfig {
            threads: 4,
            ..ExperimentConfig::new(trees_schedulers(), MemoryBound::Middle)
        };
        let res = run_experiment(&instances, &config).expect("feasible bounds");
        assert_eq!(res.results.len(), 16);
        for (i, r) in res.results.iter().enumerate() {
            assert_eq!(r.name, format!("inst-{i}"));
            assert_eq!(r.io_volumes.len(), 3);
        }
        // Deterministic across runs (and thread counts).
        let res1 = run_experiment(
            &instances,
            &ExperimentConfig {
                threads: 1,
                ..config.clone()
            },
        )
        .expect("feasible bounds");
        for (a, b) in res.results.iter().zip(&res1.results) {
            assert_eq!(a.io_volumes, b.io_volumes);
        }
    }

    #[test]
    fn filtering_drops_uninteresting_instances() {
        // A chain has peak == LB: always filtered.
        let mut b = TreeBuilder::new();
        let r = b.add_root(3);
        let x = b.add_child(r, 4);
        b.add_child(x, 5);
        let chain = ("chain".to_string(), b.build().unwrap());
        let interesting = instance(1);
        let config = ExperimentConfig {
            threads: 1,
            filter_interesting: true,
            ..ExperimentConfig::new(vec![Arc::new(PostOrderMinIo)], MemoryBound::Middle)
        };
        let res = run_experiment(&[chain, interesting], &config).expect("feasible bounds");
        assert_eq!(res.results.len(), 1);
        assert_eq!(res.results[0].name, "inst-1");
    }

    #[test]
    fn profile_and_csv_are_consistent() {
        let instances: Vec<_> = (0..8).map(instance).collect();
        let config = ExperimentConfig::synth(MemoryBound::Middle);
        let res = run_experiment(&instances, &config).expect("feasible bounds");
        let profile = res.profile();
        assert_eq!(profile.instances(), res.results.len());
        assert_eq!(profile.algorithms().len(), 4);
        let csv = res.to_csv();
        assert_eq!(csv.lines().count(), res.results.len() + 1);
        // The restriction keeps only instances where algorithms differ.
        let diff = res.restricted_to_differing();
        for r in &diff.results {
            assert!(r.algorithms_differ());
        }
    }

    #[test]
    fn csv_quotes_instance_names_per_rfc4180() {
        let (_, tree) = instance(3);
        let instances = vec![
            ("plain".to_string(), tree.clone()),
            ("with,comma".to_string(), tree.clone()),
            ("with \"quotes\"".to_string(), tree.clone()),
            ("both,\"of\",them".to_string(), tree),
        ];
        let config = ExperimentConfig {
            threads: 1,
            ..ExperimentConfig::new(vec![Arc::new(PostOrderMinIo)], MemoryBound::Middle)
        };
        let csv = run_experiment(&instances, &config)
            .expect("feasible bounds")
            .to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("plain,"));
        assert!(lines[2].starts_with("\"with,comma\","));
        assert!(lines[3].starts_with("\"with \"\"quotes\"\"\","));
        assert!(lines[4].starts_with("\"both,\"\"of\"\",them\","));
        // Every row still has the same number of (parsed) columns: a quoted
        // cell counts as one even though it contains commas.
        for line in &lines[1..] {
            let mut cols = 0;
            let mut in_quotes = false;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => cols += 1,
                    _ => {}
                }
            }
            assert_eq!(cols, 5, "bad column count in {line:?}");
        }
    }

    /// A scheduler that always fails, to exercise error propagation.
    #[derive(Debug)]
    struct AlwaysFails;

    impl Scheduler for AlwaysFails {
        fn name(&self) -> String {
            "AlwaysFails".to_string()
        }

        fn schedule(&self, _tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            Err(TreeError::Empty)
        }
    }

    #[test]
    fn scheduler_errors_propagate_out_of_the_runner() {
        let instances: Vec<_> = (0..4).map(instance).collect();
        for threads in [1, 4] {
            let config = ExperimentConfig {
                threads,
                ..ExperimentConfig::new(vec![Arc::new(AlwaysFails)], MemoryBound::Middle)
            };
            let err = run_experiment(&instances, &config).unwrap_err();
            assert_eq!(err.source, TreeError::Empty);
            assert_eq!(err.scheduler, "AlwaysFails");
            // The lowest-indexed failing instance wins, whatever the thread
            // interleaving.
            assert_eq!(err.instance, "inst-0");
        }
    }

    /// A scheduler that fails on exactly one instance (by node count), to
    /// inject an error in the middle of a concurrent matrix.
    #[derive(Debug)]
    struct FailsOn {
        nodes: usize,
    }

    impl Scheduler for FailsOn {
        fn name(&self) -> String {
            format!("FailsOn(nodes={})", self.nodes)
        }

        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            if tree.len() == self.nodes {
                Err(TreeError::NotTopological(tree.root()))
            } else {
                Ok(Schedule::postorder(tree))
            }
        }
    }

    #[test]
    fn concurrent_error_names_the_failing_instance() {
        // 32 healthy instances, one poisoned mid-matrix: only inst-poison
        // has 6 nodes. Every worker thread races past it; the error must
        // still name that exact (instance, scheduler) cell.
        let mut instances: Vec<_> = (0..32).map(instance).collect();
        let mut b = TreeBuilder::new();
        let r = b.add_root(2);
        let a = b.add_child(r, 3);
        b.add_child(a, 4);
        let c = b.add_child(r, 1);
        let d = b.add_child(c, 5);
        b.add_child(d, 2);
        instances.insert(17, ("inst-poison".to_string(), b.build().unwrap()));

        for threads in [2, 8] {
            let config = ExperimentConfig {
                threads,
                ..ExperimentConfig::new(
                    vec![Arc::new(PostOrderMinIo), Arc::new(FailsOn { nodes: 6 })],
                    MemoryBound::Middle,
                )
            };
            let err = run_experiment(&instances, &config).unwrap_err();
            assert_eq!(err.instance, "inst-poison", "threads = {threads}");
            assert_eq!(err.scheduler, "FailsOn(nodes=6)");
            assert!(matches!(err.source, TreeError::NotTopological(_)));
            let rendered = err.to_string();
            assert!(rendered.contains("inst-poison"), "{rendered}");
            assert!(rendered.contains("FailsOn"), "{rendered}");
        }
    }

    /// Schedulers for the mid-instance-abort test below. On the big
    /// instance, `GateFirst` blocks until the poison instance has failed
    /// (plus a grace period for the worker loop to raise the cancellation
    /// flag); on the small poison instance it fails immediately. `CountSecond`
    /// records whether it was ever invoked on the big instance — it must not
    /// be, because the runner checks the cancellation flag *between*
    /// scheduler cells.
    #[derive(Debug)]
    struct GateFirst {
        poisoned: Arc<AtomicBool>,
        big_nodes: usize,
    }

    impl Scheduler for GateFirst {
        fn name(&self) -> String {
            "GateFirst".to_string()
        }

        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            if tree.len() == self.big_nodes {
                // Wait (bounded) for the poison instance to fail on the
                // other worker, then give its worker loop time to store the
                // cancellation flag.
                let started = std::time::Instant::now();
                while !self.poisoned.load(Ordering::Acquire) {
                    assert!(
                        started.elapsed() < Duration::from_secs(10),
                        "poison instance never failed; is the runner still parallel?"
                    );
                    std::thread::yield_now();
                }
                std::thread::sleep(Duration::from_millis(200));
                Ok(Schedule::postorder(tree))
            } else {
                self.poisoned.store(true, Ordering::Release);
                Err(TreeError::Empty)
            }
        }
    }

    #[derive(Debug)]
    struct CountSecond {
        ran_on_big: Arc<AtomicBool>,
        big_nodes: usize,
    }

    impl Scheduler for CountSecond {
        fn name(&self) -> String {
            "CountSecond".to_string()
        }

        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            if tree.len() == self.big_nodes {
                self.ran_on_big.store(true, Ordering::Release);
            }
            Ok(Schedule::postorder(tree))
        }
    }

    #[test]
    fn cancellation_aborts_mid_instance_between_scheduler_cells() {
        // Instance 0 is "big" (9 nodes), instance 1 is the poison (5 nodes).
        // With two workers, the big instance's first cell blocks until the
        // poison instance has failed; by the time it returns, the
        // cancellation flag is up and the second scheduler must never run
        // on the big instance.
        let mut b = TreeBuilder::new();
        let r = b.add_root(1);
        let mut prev = r;
        for w in 2..10u64 {
            prev = b.add_child(prev, w);
        }
        let big = ("big".to_string(), b.build().unwrap());
        assert_eq!(big.1.len(), 9);
        let small = instance(0);
        assert_eq!(small.1.len(), 5);

        let poisoned = Arc::new(AtomicBool::new(false));
        let ran_on_big = Arc::new(AtomicBool::new(false));
        let config = ExperimentConfig {
            threads: 2,
            ..ExperimentConfig::new(
                vec![
                    Arc::new(GateFirst {
                        poisoned: Arc::clone(&poisoned),
                        big_nodes: 9,
                    }),
                    Arc::new(CountSecond {
                        ran_on_big: Arc::clone(&ran_on_big),
                        big_nodes: 9,
                    }),
                ],
                MemoryBound::Middle,
            )
        };
        let err = run_experiment(&[big, small], &config).unwrap_err();
        assert_eq!(err.instance, "inst-0");
        assert_eq!(err.scheduler, "GateFirst");
        assert!(
            !ran_on_big.load(Ordering::Acquire),
            "the second scheduler cell of the big instance ran after the \
             poison error; cancellation must abort mid-instance"
        );
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let instances: Vec<_> = (0..24).map(instance).collect();
        let config = ExperimentConfig::synth(MemoryBound::Middle);
        let run = |threads: usize| {
            run_experiment(
                &instances,
                &ExperimentConfig {
                    threads,
                    ..config.clone()
                },
            )
            .expect("feasible bounds")
        };
        let single = run(1);
        let parallel = run(8);
        assert_eq!(single.results.len(), parallel.results.len());
        for (a, b) in single.results.iter().zip(&parallel.results) {
            // Everything except wall-clock time is identical, order included.
            assert_eq!(a.name, b.name);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.bounds, b.bounds);
            assert_eq!(a.memory, b.memory);
            assert_eq!(a.io_volumes, b.io_volumes);
            assert_eq!(a.performances, b.performances);
            assert_eq!(a.peak_memories, b.peak_memories);
        }
        // And the CSV export is byte-identical.
        assert_eq!(single.to_csv(), parallel.to_csv());
    }

    #[test]
    fn per_cell_measurements_are_plumbed_through() {
        let instances: Vec<_> = (0..6).map(instance).collect();
        let config = ExperimentConfig {
            threads: 2,
            ..ExperimentConfig::new(trees_schedulers(), MemoryBound::Middle)
        };
        let res = run_experiment(&instances, &config).expect("feasible bounds");
        for r in &res.results {
            assert_eq!(r.peak_memories.len(), 3);
            assert_eq!(r.wall_times.len(), 3);
            // A schedule can never run below the structural lower bound.
            for &peak in &r.peak_memories {
                assert!(peak >= r.bounds.lower_bound);
            }
        }
        for a in 0..3 {
            assert_eq!(
                res.total_io(a),
                res.results.iter().map(|r| r.io_volumes[a]).sum::<u64>()
            );
            assert!(res.mean_performance(a) >= 1.0);
            assert!(res.max_peak(a) >= res.results[0].bounds.lower_bound);
            // Summed wall-time is finite and consistent with the cells.
            let total = res.total_schedule_time(a);
            assert_eq!(
                total,
                res.results
                    .iter()
                    .map(|r| r.wall_times[a])
                    .sum::<std::time::Duration>()
            );
        }
    }

    /// A user-defined scheduler: plain postorder, defined outside oocts-core.
    #[derive(Debug)]
    struct PlainPostorder;

    impl Scheduler for PlainPostorder {
        fn name(&self) -> String {
            "PlainPostorder".to_string()
        }

        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            Ok(Schedule::postorder(tree))
        }
    }

    /// A scheduler whose name needs quoting (any two-parameter spec renders
    /// a `", "` in its canonical name).
    #[derive(Debug)]
    struct CommaName;

    impl Scheduler for CommaName {
        fn name(&self) -> String {
            "Tuned(a=1, b=2)".to_string()
        }

        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            Ok(Schedule::postorder(tree))
        }
    }

    #[test]
    fn csv_quotes_whole_header_cells_for_comma_names() {
        let instances = vec![instance(2)];
        let config = ExperimentConfig {
            threads: 1,
            ..ExperimentConfig::new(vec![Arc::new(CommaName)], MemoryBound::Middle)
        };
        let csv = run_experiment(&instances, &config)
            .expect("feasible bounds")
            .to_csv();
        let header = csv.lines().next().unwrap();
        // The quote must open at the start of the cell, prefix included.
        assert!(
            header.ends_with(",\"io_Tuned(a=1, b=2)\""),
            "bad header: {header}"
        );
    }

    #[test]
    fn custom_scheduler_flows_through_runner_profile_and_csv() {
        let instances: Vec<_> = (0..6).map(instance).collect();
        let mut config = ExperimentConfig::synth(MemoryBound::Middle);
        config.schedulers.push(Arc::new(PlainPostorder));
        let res = run_experiment(&instances, &config).expect("feasible bounds");
        assert_eq!(res.scheduler_names().last().unwrap(), "PlainPostorder");
        for r in &res.results {
            assert_eq!(r.io_volumes.len(), 5);
        }
        let profile = res.profile();
        assert!(profile.algorithms().contains(&"PlainPostorder".to_string()));
        let csv = res.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(",io_PlainPostorder"));
    }

    #[test]
    fn restricted_to_differing_preserves_column_order() {
        let instances: Vec<_> = (0..12).map(instance).collect();
        let config = ExperimentConfig::synth(MemoryBound::LowerBound);
        let res = run_experiment(&instances, &config).expect("feasible bounds");
        let names = res.scheduler_names();
        let diff = res.restricted_to_differing();
        assert_eq!(diff.scheduler_names(), names, "column order must survive");
        // Per-instance columns still line up with the (unchanged) headers.
        for r in &diff.results {
            let original = res.results.iter().find(|o| o.name == r.name).unwrap();
            assert_eq!(r.io_volumes, original.io_volumes);
            assert_eq!(r.performances, original.performances);
        }
    }
}
