//! Per-instance memory bounds (paper, Section 6.1 and Appendix B).

use oocts_minmem::opt_min_mem_peak;
use oocts_tree::Tree;

/// The three memory bounds the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryBound {
    /// `M1 = LB`: the minimum memory for which the tree can be executed at
    /// all (Appendix B, Figures 8 and 9).
    LowerBound,
    /// `M = (LB + Peak_incore − 1) / 2`: the middle of the interesting range
    /// (Section 6, Figures 4 and 5).
    Middle,
    /// `M2 = Peak_incore − 1`: the largest memory for which some I/O is still
    /// required (Appendix B, Figures 10 and 11).
    BelowPeak,
}

impl MemoryBound {
    /// All three bounds, in the paper's order of presentation.
    pub const ALL: [MemoryBound; 3] = [
        MemoryBound::Middle,
        MemoryBound::LowerBound,
        MemoryBound::BelowPeak,
    ];

    /// Short name used in reports and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            MemoryBound::LowerBound => "M1=LB",
            MemoryBound::Middle => "Mmid",
            MemoryBound::BelowPeak => "M2=Peak-1",
        }
    }
}

impl std::fmt::Display for MemoryBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The memory bounds of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBounds {
    /// `LB = max_i w̄_i`: minimal memory to process every single task.
    pub lower_bound: u64,
    /// `Peak_incore`: the optimal in-core peak memory (OptMinMem).
    pub peak_incore: u64,
}

impl MemoryBounds {
    /// Computes both bounds for a tree.
    pub fn of(tree: &Tree) -> Self {
        MemoryBounds {
            lower_bound: tree.min_feasible_memory(),
            peak_incore: opt_min_mem_peak(tree),
        }
    }

    /// `true` if some I/O is unavoidable for at least one memory bound, i.e.
    /// `Peak_incore > LB`. The paper keeps only such instances in the TREES
    /// dataset (133 of 329 trees).
    pub fn is_interesting(&self) -> bool {
        self.peak_incore > self.lower_bound
    }

    /// The concrete memory value of one of the paper's bounds.
    ///
    /// All three collapse to `LB` when `Peak_incore = LB` (then no I/O is
    /// ever needed — such instances are filtered out of the experiments).
    pub fn memory(&self, bound: MemoryBound) -> u64 {
        match bound {
            MemoryBound::LowerBound => self.lower_bound,
            MemoryBound::Middle => {
                // M = (LB + Peak − 1) / 2, clamped to the feasible range.
                ((self.lower_bound + self.peak_incore.saturating_sub(1)) / 2).max(self.lower_bound)
            }
            MemoryBound::BelowPeak => self.peak_incore.saturating_sub(1).max(self.lower_bound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocts_tree::TreeBuilder;

    fn sample() -> Tree {
        // root(1) with two chains a(2) <- la(6) and b(2) <- lb(6):
        // LB = 6 (the leaves), Peak_incore = 8.
        let mut bld = TreeBuilder::new();
        let r = bld.add_root(1);
        let a = bld.add_child(r, 2);
        bld.add_child(a, 6);
        let b = bld.add_child(r, 2);
        bld.add_child(b, 6);
        bld.build().unwrap()
    }

    #[test]
    fn bounds_of_sample() {
        let b = MemoryBounds::of(&sample());
        assert_eq!(b.lower_bound, 6);
        assert_eq!(b.peak_incore, 8);
        assert!(b.is_interesting());
        assert_eq!(b.memory(MemoryBound::LowerBound), 6);
        assert_eq!(b.memory(MemoryBound::Middle), 6); // (6 + 7) / 2 = 6
        assert_eq!(b.memory(MemoryBound::BelowPeak), 7);
    }

    #[test]
    fn uninteresting_instance_collapses() {
        let t = Tree::singleton(5);
        let b = MemoryBounds::of(&t);
        assert_eq!(b.lower_bound, 5);
        assert_eq!(b.peak_incore, 5);
        assert!(!b.is_interesting());
        for bound in MemoryBound::ALL {
            assert_eq!(b.memory(bound), 5);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MemoryBound::Middle.name(), "Mmid");
        assert_eq!(format!("{}", MemoryBound::LowerBound), "M1=LB");
    }
}
