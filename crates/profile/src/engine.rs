//! Cell-granularity work-stealing execution engine.
//!
//! The experimental grid of the paper is embarrassingly parallel: every
//! **(instance × scheduler)** pair — a *cell* — is an independent solve.
//! This module executes that grid on a pool of workers with per-worker
//! work-stealing deques ([`crossbeam::deque`]):
//!
//! * **Decomposition.** Each instance contributes one *prep* task (memory
//!   bounds + the interestingness filter) which, once executed, fans out
//!   into one *solve* task per scheduler. Prep runs on whichever worker
//!   claims it; the solve cells land on that worker's own deque, where its
//!   LIFO pop keeps them cache-hot — and where any idle worker can steal
//!   them. A one-instance straggler therefore occupies at most
//!   `schedulers.len()` workers instead of pinning a single one, which is
//!   what kills the load imbalance of instance-granularity sharding.
//! * **Seeding order.** Initial work is ordered largest-subtree-first: the
//!   biggest instance of the grid starts *first*, so its cells overlap with
//!   all the small ones instead of starting last and dragging the tail.
//!   Each worker is seeded with one of the largest instances directly; the
//!   remainder waits in the global [`Injector`] (FIFO, so workers drain it
//!   in descending size order).
//! * **Results.** Every finished cell is written into a pre-sized slot
//!   array (one [`OnceLock`] per cell) — no global results mutex anywhere
//!   on the hot path. The worker that completes the *last* cell of an
//!   instance sends the assembled row through a **bounded** channel; the
//!   caller's thread re-orders the (at most `threads`-deep out-of-order
//!   window of) arrivals and hands rows to the streaming sink in
//!   deterministic instance order while the grid is still running.
//! * **Cancellation.** The first failing cell stores its error in its slot
//!   and raises a single [`AtomicBool`]; every worker checks the flag
//!   between cells — mid-instance, not merely at the next instance
//!   boundary — and drains out. After the join, the lowest-indexed
//!   recorded error is reported, independent of thread scheduling.
//!
//! [`run_experiment`](crate::runner::run_experiment) runs entirely on this
//! engine; per-worker steal/execute counters and the wall-clock of the run
//! surface as [`EngineStats`] on
//! [`ExperimentResults`](crate::runner::ExperimentResults).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::bounds::MemoryBounds;
use crate::metric::performance;
use crate::runner::{ExperimentConfig, ExperimentError, InstanceResult};

/// How the engine decomposes an experiment into work items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Granularity {
    /// One work item per **(instance × scheduler)** cell (the default):
    /// a large instance is solved by up to `schedulers.len()` workers
    /// concurrently.
    #[default]
    Cell,
    /// One work item per instance, every scheduler running sequentially on
    /// the claiming worker — the pre-engine sharding, kept for regression
    /// comparisons (`BENCH_pr10_before`) and as a baseline in tests. Output
    /// is byte-identical to [`Granularity::Cell`].
    Instance,
}

/// Counters of one worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed (solve cells plus prep tasks).
    pub executed: u64,
    /// Tasks acquired by stealing from another worker's deque.
    pub stolen: u64,
    /// Tasks acquired from the global injector queue.
    pub injected: u64,
}

/// Execution statistics of one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// The decomposition that was used.
    pub granularity: Granularity,
    /// Number of worker threads of the run.
    pub threads: usize,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Scheduler cells executed (prep tasks excluded).
    pub cells: u64,
    /// Wall-clock of the whole run, seeding and join included. The only
    /// machine-dependent field next to the per-cell wall-times.
    pub elapsed: Duration,
}

impl EngineStats {
    /// Total tasks executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Total tasks acquired by stealing from a peer's deque.
    pub fn total_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Total tasks acquired from the global injector.
    pub fn total_injected(&self) -> u64 {
        self.workers.iter().map(|w| w.injected).sum()
    }
}

/// One work item. `Prep` computes an instance's bounds and fans out its
/// solve cells; `Solve` runs one scheduler on one prepared instance (the
/// memory value travels in the task, so solving never has to look the prep
/// result back up); `Whole` is the instance-granularity fallback (prep +
/// every scheduler, inline).
#[derive(Debug, Clone, Copy)]
enum Task {
    Prep(usize),
    Solve {
        instance: usize,
        alg: usize,
        memory: u64,
    },
    Whole(usize),
}

/// Where a worker got its current task from.
enum Source {
    Local,
    Injected,
    Stolen,
}

/// The deterministic measurements of one finished cell.
struct CellDone {
    io_volume: u64,
    performance: f64,
    peak_memory: u64,
    /// `SolveReport::wall_time`: scheduling only.
    schedule_wall: Duration,
    /// Engine-measured wall-clock of the whole cell (scheduling + FiF
    /// replay + validation).
    cell_wall: Duration,
}

type CellSlot = OnceLock<Result<CellDone, ExperimentError>>;

/// Everything the workers share. All hot-path state is atomic or
/// write-once; nothing here is behind a mutex.
struct Shared<'a> {
    instances: &'a [(String, oocts_tree::Tree)],
    config: &'a ExperimentConfig,
    /// Number of scheduler columns.
    algs: usize,
    /// Per-instance prep outcome: `None` once prep ran and the instance was
    /// filtered out, `Some((bounds, memory))` otherwise.
    prep: Vec<OnceLock<Option<(MemoryBounds, u64)>>>,
    /// Pre-sized cell slots, indexed `instance * algs + scheduler`.
    cells: Vec<CellSlot>,
    /// Per-instance outstanding task count; the worker that drops it to
    /// zero assembles and emits the row.
    remaining: Vec<AtomicUsize>,
    /// Globally outstanding tasks; workers exit when it reaches zero.
    pending: AtomicUsize,
    /// Raised by the first failing cell; checked between cells.
    cancelled: AtomicBool,
    /// Solve cells executed (for [`EngineStats::cells`]).
    cells_run: AtomicUsize,
    /// Overflow seed work, drained in descending instance size.
    injector: Injector<Task>,
}

/// Runs the experiment grid and returns the ordered kept rows plus the
/// engine counters. `on_row` observes every row, in instance order, as soon
/// as its instance completes — typically long before the grid finishes.
pub(crate) fn run(
    instances: &[(String, oocts_tree::Tree)],
    config: &ExperimentConfig,
    mut on_row: impl FnMut(&InstanceResult),
) -> Result<(Vec<InstanceResult>, EngineStats), ExperimentError> {
    let started = Instant::now();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.threads
    }
    .max(1);

    let n = instances.len();
    let algs = config.schedulers.len();
    let shared = Shared {
        instances,
        config,
        algs,
        prep: (0..n).map(|_| OnceLock::new()).collect(),
        cells: (0..n * algs).map(|_| OnceLock::new()).collect(),
        remaining: (0..n).map(|_| AtomicUsize::new(1)).collect(),
        pending: AtomicUsize::new(n),
        cancelled: AtomicBool::new(false),
        cells_run: AtomicUsize::new(0),
        injector: Injector::new(),
    };

    // Initial work, largest subtree first: the straggler candidates start
    // before anything else. Ties break on instance index, so seeding is
    // deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(instances[i].1.len()), i));

    let locals: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Task>> = locals.iter().map(Worker::stealer).collect();
    for (rank, &i) in order.iter().enumerate() {
        let task = match config.granularity {
            Granularity::Cell => Task::Prep(i),
            Granularity::Instance => Task::Whole(i),
        };
        // One seed per worker deque; the rest queues in the injector in
        // descending size order.
        if rank < threads {
            locals[rank].push(task);
        } else {
            shared.injector.push(task);
        }
    }

    // The streaming channel: bounded, so workers slow down rather than run
    // away from a slow consumer.
    let (tx, rx) = channel::bounded::<(usize, Option<InstanceResult>)>(2 * threads);

    let mut results = Vec::with_capacity(n);
    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(id, local)| {
                let shared = &shared;
                let stealers = &stealers;
                let tx = tx.clone();
                scope.spawn(move || worker_loop(id, local, stealers, shared, &tx))
            })
            .collect();
        drop(tx);

        // Consume rows as instances complete. Workers may finish instances
        // slightly out of order (the window is at most one in-flight
        // instance per worker); a small reorder buffer restores the
        // deterministic instance order for the sink.
        let mut next = 0usize;
        let mut buffer: BTreeMap<usize, Option<InstanceResult>> = BTreeMap::new();
        while let Ok((i, row)) = rx.recv() {
            buffer.insert(i, row);
            while let Some(row) = buffer.remove(&next) {
                if let Some(r) = row {
                    on_row(&r);
                    results.push(r);
                }
                next += 1;
            }
        }

        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    if shared.cancelled.load(Ordering::Acquire) {
        // The lowest-indexed recorded error wins, whatever the thread
        // interleaving was.
        for slot in shared.cells {
            if let Some(Err(e)) = slot.into_inner() {
                return Err(e);
            }
        }
    }
    let stats = EngineStats {
        granularity: config.granularity,
        threads,
        workers: worker_stats,
        cells: shared.cells_run.load(Ordering::Acquire) as u64,
        elapsed: started.elapsed(),
    };
    Ok((results, stats))
}

/// One worker: pop local work, fall back to the injector, then steal from
/// peers; park briefly when everything is dry. Exits when the grid is done
/// or a cell failed.
fn worker_loop(
    id: usize,
    local: Worker<Task>,
    stealers: &[Stealer<Task>],
    shared: &Shared<'_>,
    tx: &channel::Sender<(usize, Option<InstanceResult>)>,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut dry_polls = 0u32;
    loop {
        if shared.cancelled.load(Ordering::Acquire) || shared.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        let task = match local.pop() {
            Some(task) => Some((task, Source::Local)),
            None => acquire_task(id, &local, stealers, shared),
        };
        match task {
            Some((task, source)) => {
                dry_polls = 0;
                stats.executed += 1;
                match source {
                    Source::Local => {}
                    Source::Injected => stats.injected += 1,
                    Source::Stolen => stats.stolen += 1,
                }
                execute(task, &local, shared, tx);
            }
            None => {
                // Nothing anywhere: another worker is still producing (or
                // the run is about to end). Yield first, then back off to a
                // short sleep so an idle pool does not spin at 100% while a
                // straggler finishes.
                dry_polls += 1;
                if dry_polls < 32 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }
    stats
}

/// Acquires work for an empty worker: global injector first (descending
/// instance size), then peers round-robin starting after `id`. Bounded
/// retries on [`Steal::Retry`] keep the attempt non-blocking.
// lint: no_alloc
fn acquire_task(
    id: usize,
    local: &Worker<Task>,
    stealers: &[Stealer<Task>],
    shared: &Shared<'_>,
) -> Option<(Task, Source)> {
    for _ in 0..8 {
        match shared.injector.steal() {
            Steal::Success(task) => return Some((task, Source::Injected)),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    let n = stealers.len();
    for d in 1..n {
        let victim = &stealers[(id + d) % n];
        for _ in 0..4 {
            match victim.steal_batch_and_pop(local) {
                Steal::Success(task) => return Some((task, Source::Stolen)),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn execute(
    task: Task,
    local: &Worker<Task>,
    shared: &Shared<'_>,
    tx: &channel::Sender<(usize, Option<InstanceResult>)>,
) {
    match task {
        Task::Prep(i) => {
            if let Some(memory) = prep_instance(i, shared) {
                shared.remaining[i].fetch_add(shared.algs, Ordering::AcqRel);
                shared.pending.fetch_add(shared.algs, Ordering::AcqRel);
                // Pushed in reverse so the owner's LIFO pop runs the cells
                // in scheduler order; thieves steal from the other end.
                for alg in (0..shared.algs).rev() {
                    local.push(Task::Solve {
                        instance: i,
                        alg,
                        memory,
                    });
                }
            }
            finish_task(i, shared, tx);
        }
        Task::Solve {
            instance,
            alg,
            memory,
        } => {
            if solve_cell(instance, alg, memory, shared) {
                finish_task(instance, shared, tx);
            }
        }
        Task::Whole(i) => {
            if let Some(memory) = prep_instance(i, shared) {
                for a in 0..shared.algs {
                    // The cancellation contract holds at instance
                    // granularity too: check between scheduler cells.
                    if shared.cancelled.load(Ordering::Acquire) {
                        return;
                    }
                    if !solve_cell(i, a, memory, shared) {
                        return;
                    }
                }
            }
            finish_task(i, shared, tx);
        }
    }
}

/// Computes one instance's bounds and memory, recording them in the prep
/// slot; returns the memory value, or `None` if the interestingness filter
/// drops the instance.
fn prep_instance(i: usize, shared: &Shared<'_>) -> Option<u64> {
    let (_, tree) = &shared.instances[i];
    let bounds = MemoryBounds::of(tree);
    let kept = !shared.config.filter_interesting || bounds.is_interesting();
    let memory = bounds.memory(shared.config.bound);
    let _ = shared.prep[i].set(kept.then_some((bounds, memory)));
    kept.then_some(memory)
}

/// Runs one scheduler cell and records it in its slot. Returns `false` on
/// error, after raising the cancellation flag.
fn solve_cell(i: usize, a: usize, memory: u64, shared: &Shared<'_>) -> bool {
    let cell_started = Instant::now();
    let (name, tree) = &shared.instances[i];
    let scheduler = &shared.config.schedulers[a];
    match scheduler.solve(tree, memory) {
        Ok(report) => {
            let done = CellDone {
                io_volume: report.io_volume,
                performance: performance(memory, report.io_volume),
                peak_memory: report.peak_memory,
                schedule_wall: report.wall_time,
                cell_wall: cell_started.elapsed(),
            };
            let _ = shared.cells[i * shared.algs + a].set(Ok(done));
            shared.cells_run.fetch_add(1, Ordering::AcqRel);
            true
        }
        Err(source) => {
            let _ = shared.cells[i * shared.algs + a].set(Err(ExperimentError {
                instance: name.clone(),
                scheduler: scheduler.name(),
                source,
            }));
            shared.cancelled.store(true, Ordering::Release);
            false
        }
    }
}

/// Marks one task of instance `i` finished. The worker that finishes the
/// instance's *last* task assembles its row from the cell slots and streams
/// it out; every path then decrements the global pending count.
fn finish_task(
    i: usize,
    shared: &Shared<'_>,
    tx: &channel::Sender<(usize, Option<InstanceResult>)>,
) {
    if shared.remaining[i].fetch_sub(1, Ordering::AcqRel) == 1 {
        let row = assemble_row(i, shared);
        // Send failure means the consumer is gone, which only happens on
        // teardown; the run result no longer matters then.
        let _ = tx.send((i, row));
    }
    shared.pending.fetch_sub(1, Ordering::AcqRel);
}

/// Builds the [`InstanceResult`] of a completed instance (`None` if the
/// filter dropped it). Only called once per instance, by the worker that
/// finished its last cell.
fn assemble_row(i: usize, shared: &Shared<'_>) -> Option<InstanceResult> {
    let (bounds, memory) = shared.prep[i].get().copied().flatten()?;
    let (name, tree) = &shared.instances[i];
    let mut io_volumes = Vec::with_capacity(shared.algs);
    let mut performances = Vec::with_capacity(shared.algs);
    let mut peak_memories = Vec::with_capacity(shared.algs);
    let mut wall_times = Vec::with_capacity(shared.algs);
    let mut cell_times = Vec::with_capacity(shared.algs);
    for a in 0..shared.algs {
        // An instance only completes once every cell succeeded, so each
        // slot is filled; `?` (dropping the row) is the benign way out
        // should that invariant ever break.
        let done = shared.cells[i * shared.algs + a].get()?.as_ref().ok()?;
        io_volumes.push(done.io_volume);
        performances.push(done.performance);
        peak_memories.push(done.peak_memory);
        wall_times.push(done.schedule_wall);
        cell_times.push(done.cell_wall);
    }
    Some(InstanceResult {
        name: name.clone(),
        nodes: tree.len(),
        bounds,
        memory,
        io_volumes,
        performances,
        peak_memories,
        wall_times,
        cell_times,
    })
}
