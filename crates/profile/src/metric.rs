//! The paper's performance metric (Section 6.2).
//!
//! Performing 10 I/Os does not have the same significance when the memory
//! holds 10 slots or 1000 slots, so the paper normalizes the I/O volume by
//! the memory bound: a schedule performing `k` I/Os with memory `M` scores
//! `(M + k)/M` — 1.0 for an I/O-free execution, 2.0 when a full memory's
//! worth of data is written.

/// The paper's performance of an execution that performed `io_volume` I/Os
/// under memory bound `memory`.
///
/// # Panics
/// Panics if `memory` is zero.
pub fn performance(memory: u64, io_volume: u64) -> f64 {
    assert!(memory > 0, "memory bound must be positive");
    (memory + io_volume) as f64 / memory as f64
}

/// Relative overhead of a performance value with respect to the best
/// observed performance on the same instance (both ≥ 1): this is the x-axis
/// of the paper's performance profiles, expressed as a fraction (0.05 = 5 %).
pub fn overhead(performance: f64, best: f64) -> f64 {
    debug_assert!(performance >= 1.0 && best >= 1.0);
    debug_assert!(performance >= best - 1e-12);
    performance / best - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_values() {
        assert!((performance(10, 0) - 1.0).abs() < 1e-12);
        assert!((performance(10, 10) - 2.0).abs() < 1e-12);
        assert!((performance(1000, 10) - 1.01).abs() < 1e-12);
    }

    #[test]
    fn overhead_values() {
        assert!((overhead(1.0, 1.0) - 0.0).abs() < 1e-12);
        assert!((overhead(1.5, 1.0) - 0.5).abs() < 1e-12);
        assert!((overhead(2.2, 2.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "memory bound must be positive")]
    fn zero_memory_rejected() {
        performance(0, 1);
    }
}
