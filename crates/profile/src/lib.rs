//! # oocts-profile — evaluation harness
//!
//! Everything needed to reproduce the experimental section of the paper
//! (Section 6 and Appendix B):
//!
//! * [`bounds`] — per-instance memory bounds: the structural lower bound
//!   `LB = max_i w̄_i`, the optimal in-core peak, and the three memory
//!   bounds used by the paper (`M1 = LB`, `M_mid = (LB + Peak − 1)/2`,
//!   `M2 = Peak − 1`);
//! * [`metric`] — the paper's performance metric `(M + IO)/M`;
//! * [`profile`] — Dolan–Moré performance profiles (cumulative distribution
//!   of the overhead with respect to the best algorithm on each instance),
//!   with CSV and ASCII rendering;
//! * [`engine`] — the cell-granularity work-stealing execution engine that
//!   schedules (instance × scheduler) cells over per-worker deques;
//! * [`runner`] — the experiment runner front-end: configuration, result
//!   tables, CSV export, all executed on the engine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod bounds;
pub mod engine;
pub mod metric;
pub mod profile;
pub mod runner;

pub use bounds::{MemoryBound, MemoryBounds};
pub use engine::{EngineStats, Granularity, WorkerStats};
pub use metric::performance;
pub use profile::PerformanceProfile;
pub use runner::{
    csv_header, run_experiment, run_experiment_streaming, ExperimentConfig, ExperimentError,
    ExperimentResults, InstanceResult,
};
