//! Dolan–Moré performance profiles (the plots of Figures 4, 5, 8–11).
//!
//! For every instance, every algorithm's performance is compared with the
//! best performance observed on that instance; the profile of an algorithm
//! maps an overhead threshold `τ` to the fraction of instances on which the
//! algorithm is within `τ` of the best. Higher curves are better.

use std::collections::BTreeMap;

use crate::metric::overhead;

/// A performance profile for a set of algorithms over a common instance set.
#[derive(Debug, Clone)]
pub struct PerformanceProfile {
    algorithms: Vec<String>,
    /// `overheads[a][i]` = overhead of algorithm `a` on instance `i`
    /// (fraction, 0.0 = best on that instance).
    overheads: Vec<Vec<f64>>,
    instances: usize,
}

impl PerformanceProfile {
    /// Builds a profile from a per-algorithm vector of performances.
    ///
    /// `performances[a][i]` is the performance (≥ 1.0, lower is better) of
    /// algorithm `a` on instance `i`; all algorithms must cover the same
    /// instances.
    pub fn from_performances(
        algorithms: Vec<String>,
        performances: Vec<Vec<f64>>,
    ) -> PerformanceProfile {
        assert_eq!(algorithms.len(), performances.len());
        assert!(!performances.is_empty(), "at least one algorithm required");
        let instances = performances[0].len();
        assert!(
            performances.iter().all(|p| p.len() == instances),
            "all algorithms must cover the same instances"
        );
        let mut overheads = vec![vec![0.0; instances]; algorithms.len()];
        for i in 0..instances {
            let best = performances
                .iter()
                .map(|p| p[i])
                .fold(f64::INFINITY, f64::min);
            for (a, perf) in performances.iter().enumerate() {
                overheads[a][i] = overhead(perf[i], best);
            }
        }
        PerformanceProfile {
            algorithms,
            overheads,
            instances,
        }
    }

    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// The algorithm names, in the order used by the other accessors.
    pub fn algorithms(&self) -> &[String] {
        &self.algorithms
    }

    /// Fraction of instances on which `algorithm` has an overhead of at most
    /// `threshold` (a fraction, e.g. `0.05` for 5 %).
    pub fn fraction_within(&self, algorithm: usize, threshold: f64) -> f64 {
        if self.instances == 0 {
            return 1.0;
        }
        let count = self.overheads[algorithm]
            .iter()
            .filter(|&&o| o <= threshold + 1e-12)
            .count();
        count as f64 / self.instances as f64
    }

    /// The profile curve of `algorithm` evaluated on the given thresholds.
    pub fn curve(&self, algorithm: usize, thresholds: &[f64]) -> Vec<f64> {
        thresholds
            .iter()
            .map(|&t| self.fraction_within(algorithm, t))
            .collect()
    }

    /// The distinct overhead values observed (useful to build exact step
    /// curves); always starts at 0.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut set = BTreeMap::new();
        set.insert(0u64, 0.0f64);
        for row in &self.overheads {
            for &o in row {
                // Quantize to 1e-9 to deduplicate float noise.
                set.insert((o * 1e9).round() as u64, o);
            }
        }
        set.into_values().collect()
    }

    /// Renders the profile as CSV: one row per threshold, one column per
    /// algorithm (the format consumed by the plots in EXPERIMENTS.md).
    pub fn to_csv(&self, thresholds: &[f64]) -> String {
        let mut out = String::from("overhead_percent");
        for a in &self.algorithms {
            out.push(',');
            out.push_str(a);
        }
        out.push('\n');
        for &t in thresholds {
            out.push_str(&format!("{:.2}", t * 100.0));
            for a in 0..self.algorithms.len() {
                out.push_str(&format!(",{:.4}", self.fraction_within(a, t)));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a compact ASCII table of the profile at the given thresholds —
    /// the textual stand-in for the paper's figures.
    pub fn to_ascii(&self, thresholds: &[f64]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<18}", "overhead <="));
        for &t in thresholds {
            out.push_str(&format!("{:>9.1}%", t * 100.0));
        }
        out.push('\n');
        for (a, name) in self.algorithms.iter().enumerate() {
            out.push_str(&format!("{name:<18}"));
            for &t in thresholds {
                out.push_str(&format!("{:>10.3}", self.fraction_within(a, t)));
            }
            out.push('\n');
        }
        out
    }

    /// Mean overhead of an algorithm over all instances (an aggregate used in
    /// EXPERIMENTS.md alongside the profiles).
    pub fn mean_overhead(&self, algorithm: usize) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        self.overheads[algorithm].iter().sum::<f64>() / self.instances as f64
    }

    /// Fraction of instances on which the algorithm is (one of) the best.
    pub fn win_rate(&self, algorithm: usize) -> f64 {
        self.fraction_within(algorithm, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerformanceProfile {
        // 3 instances, 2 algorithms.
        // inst:        0     1     2
        // A:          1.0   1.2   2.0
        // B:          1.1   1.2   1.0
        PerformanceProfile::from_performances(
            vec!["A".into(), "B".into()],
            vec![vec![1.0, 1.2, 2.0], vec![1.1, 1.2, 1.0]],
        )
    }

    #[test]
    fn win_rates_and_fractions() {
        let p = sample();
        assert_eq!(p.instances(), 3);
        // A is best on instances 0 and 1 (tie), B on 1 and 2.
        assert!((p.win_rate(0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((p.win_rate(1) - 2.0 / 3.0).abs() < 1e-9);
        // Within 10%: A covers instances 0, 1 (overhead 0) but not 2 (100%).
        assert!((p.fraction_within(0, 0.10) - 2.0 / 3.0).abs() < 1e-9);
        assert!((p.fraction_within(1, 0.10) - 1.0).abs() < 1e-9);
        // Within 100%: everything.
        assert!((p.fraction_within(0, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curves_are_monotone() {
        let p = sample();
        let thresholds = [0.0, 0.05, 0.1, 0.5, 1.0, 2.0];
        for a in 0..2 {
            let curve = p.curve(a, &thresholds);
            for w in curve.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_and_ascii_render() {
        let p = sample();
        let csv = p.to_csv(&[0.0, 0.1]);
        assert!(csv.starts_with("overhead_percent,A,B"));
        assert_eq!(csv.lines().count(), 3);
        let ascii = p.to_ascii(&[0.0, 0.1]);
        assert!(ascii.contains('A'));
        assert!(ascii.contains("0.667"));
    }

    #[test]
    fn breakpoints_contain_zero_and_extremes() {
        let p = sample();
        let bp = p.breakpoints();
        assert!((bp[0] - 0.0).abs() < 1e-12);
        assert!(bp.iter().any(|&b| (b - 1.0).abs() < 1e-9)); // A's 100% overhead on inst 2
    }

    #[test]
    fn mean_overhead_values() {
        let p = sample();
        // A overheads: 0, 0, 1.0 → mean 1/3; B: 0.1, 0, 0 → mean 0.0333…
        assert!((p.mean_overhead(0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((p.mean_overhead(1) - 0.1 / 3.0).abs() < 1e-9);
    }
}
