//! Property tests of the `ExperimentResults::to_csv` export: instance names
//! containing commas, quotes, CR/LF and other hostile characters must
//! round-trip losslessly under RFC-4180 quoting.

use std::sync::Arc;

use oocts_core::scheduler::{PostOrderMinIo, Scheduler};
use oocts_profile::bounds::MemoryBound;
use oocts_profile::runner::{run_experiment, ExperimentConfig};
use oocts_tree::{Tree, TreeBuilder};
use proptest::prelude::*;

/// The character palette names are drawn from: every RFC-4180 special
/// character, plus benign ASCII and a multi-byte code point.
const PALETTE: [char; 12] = ['a', 'Z', '7', ',', '"', '\n', '\r', ' ', '-', '_', '.', 'é'];

/// A random instance name of length `0..=10` over [`PALETTE`].
fn name_strategy() -> impl Strategy<Value = String> {
    (0usize..=10).prop_flat_map(|len| {
        proptest::collection::vec(0usize..PALETTE.len(), len)
            .prop_map(|indices| indices.into_iter().map(|i| PALETTE[i]).collect())
    })
}

/// `1..=6` random hostile names.
fn names_strategy() -> impl Strategy<Value = Vec<String>> {
    (1usize..=6).prop_flat_map(|n| proptest::collection::vec(name_strategy(), n))
}

fn tiny_tree() -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.add_root(3);
    b.add_child(root, 2);
    b.build().unwrap()
}

/// A strict RFC-4180 reader: `"`-quoted cells with `""` escapes, `,` cell
/// separators, `\n` record separators. Panics on malformed input — a
/// malformed export *is* the bug this suite hunts.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut cell = String::new();
    let mut cell_started = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push(c);
            }
        } else {
            match c {
                '"' if !cell_started => {
                    in_quotes = true;
                    cell_started = true;
                }
                '"' => panic!("stray quote inside an unquoted cell"),
                ',' => {
                    record.push(std::mem::take(&mut cell));
                    cell_started = false;
                }
                '\n' => {
                    record.push(std::mem::take(&mut cell));
                    records.push(std::mem::take(&mut record));
                    cell_started = false;
                }
                '\r' => panic!("unquoted CR in the export"),
                other => {
                    cell.push(other);
                    cell_started = true;
                }
            }
        }
    }
    assert!(!in_quotes, "unterminated quoted cell");
    assert!(
        !cell_started && cell.is_empty() && record.is_empty(),
        "the export must end with a newline"
    );
    records
}

/// The quoting rule of `to_csv`, reapplied cell-by-cell: serializing the
/// parsed table must reproduce the export byte-identically.
fn write_csv(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        for (i, cell) in record.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if cell.contains(['"', ',', '\n', '\r']) {
                out.push('"');
                for c in cell.chars() {
                    if c == '"' {
                        out.push('"');
                    }
                    out.push(c);
                }
                out.push('"');
            } else {
                out.push_str(cell);
            }
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hostile instance names survive a CSV round-trip unchanged, and the
    /// export re-serializes byte-identically.
    #[test]
    fn hostile_names_round_trip_under_rfc4180(names in names_strategy()) {
        let instances: Vec<(String, Tree)> =
            names.iter().map(|n| (n.clone(), tiny_tree())).collect();
        let schedulers: Vec<Arc<dyn Scheduler>> = vec![Arc::new(PostOrderMinIo)];
        let mut config = ExperimentConfig::new(schedulers, MemoryBound::Middle);
        config.threads = 1;
        let results = run_experiment(&instances, &config).unwrap();

        let csv = results.to_csv();
        let records = parse_csv(&csv);

        // One header plus one record per instance, all of equal width.
        prop_assert_eq!(records.len(), names.len() + 1);
        let width = records[0].len();
        for record in &records {
            prop_assert_eq!(record.len(), width);
        }
        // The first column reproduces every name losslessly, in order.
        for (record, name) in records[1..].iter().zip(&names) {
            prop_assert_eq!(&record[0], name);
        }
        // And re-serializing the parsed table reproduces the bytes.
        prop_assert_eq!(write_csv(&records), csv);
    }
}
