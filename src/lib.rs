//! # OOCTS — Out-Of-core Task-Tree Scheduling
//!
//! Umbrella crate re-exporting the whole OOCTS workspace, a reproduction of
//! *Minimizing I/Os in Out-of-Core Task Tree Scheduling*
//! (L. Marchal, S. McCauley, B. Simon, F. Vivien — INRIA RR-9025 / IPPS 2017).
//!
//! The workspace implements:
//!
//! * the task-tree model, schedules, and the Furthest-in-the-Future (FiF)
//!   out-of-core simulator ([`tree`]);
//! * peak-memory minimizing traversals — Liu's optimal algorithm and the best
//!   postorder ([`minmem`]);
//! * the paper's I/O-minimizing strategies — `PostOrderMinIO`,
//!   `OptMinMem`+FiF, `RecExpand` and `FullRecExpand` — behind the open
//!   [`core::scheduler::Scheduler`] trait and its name-based
//!   [`core::registry::SchedulerRegistry`], plus the homogeneous tree theory
//!   and brute-force oracles ([`core`]);
//! * a sparse-matrix multifrontal substrate producing realistic elimination /
//!   assembly trees ([`sparse`]);
//! * tree generators and the paper's datasets ([`gen`]);
//! * the evaluation harness: performance metric, Dolan–Moré performance
//!   profiles and a parallel experiment runner driving any `dyn Scheduler`
//!   ([`profile`]).
//!
//! ## Quickstart
//!
//! ```
//! use oocts::prelude::*;
//!
//! // Build a small task tree: the root consumes two subtrees.
//! let mut b = TreeBuilder::new();
//! let root = b.add_root(4);
//! let a = b.add_child(root, 8);
//! b.add_child(a, 2);
//! b.add_child(root, 10);
//! let tree = b.build().unwrap();
//!
//! // How much memory would an in-core execution need?
//! let (schedule, peak) = opt_min_mem(&tree);
//! assert!(peak >= tree.min_feasible_memory());
//!
//! // Execute out-of-core with less memory and count the I/O volume.
//! let m = tree.min_feasible_memory();
//! let io = fif_io(&tree, &schedule, m).unwrap();
//! assert!(io.total_io <= tree.total_weight());
//!
//! // Every strategy implements the `Scheduler` trait; `solve` charges the
//! // FiF I/O and reports it together with peak memory and wall-time. The
//! // paper's heuristics usually do better than OptMinMem + FiF:
//! let report = RecExpand::default().solve(&tree, m).unwrap();
//! assert!(report.io_volume <= io.total_io);
//!
//! // Strategies — parameterized ones included — also resolve by name:
//! let registry = SchedulerRegistry::with_builtins();
//! let tuned = registry.get("RecExpand(max_rounds=4)").unwrap();
//! assert!(tuned.solve(&tree, m).unwrap().io_volume <= io.total_io);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use oocts_core as core;
pub use oocts_gen as gen;
pub use oocts_minmem as minmem;
pub use oocts_profile as profile;
pub use oocts_sparse as sparse;
pub use oocts_tree as tree;

/// Convenient glob-import of the most used items of the workspace.
pub mod prelude {
    #[allow(deprecated)]
    pub use oocts_core::algorithms::{Algorithm, AlgorithmResult};
    pub use oocts_core::homogeneous;
    pub use oocts_core::postorder::post_order_min_io;
    pub use oocts_core::recexpand::{full_rec_expand, rec_expand};
    pub use oocts_core::registry::{SchedulerError, SchedulerRegistry, SchedulerSpec};
    pub use oocts_core::scheduler::{
        builtin_schedulers, synth_schedulers, trees_schedulers, ExpansionStats, FullRecExpand,
        OptMinMem, PostOrderMinIo, PostOrderMinMem, RandomPostOrder, RecExpand, Scheduler,
        SolveReport,
    };
    pub use oocts_minmem::{opt_min_mem, post_order_min_mem};
    pub use oocts_profile::bounds::MemoryBounds;
    pub use oocts_profile::engine::{EngineStats, Granularity, WorkerStats};
    pub use oocts_profile::profile::PerformanceProfile;
    pub use oocts_profile::runner::{
        csv_header, run_experiment, run_experiment_streaming, ExperimentConfig, ExperimentError,
        ExperimentResults, InstanceResult,
    };
    pub use oocts_tree::{fif_io, peak_memory, NodeId, Schedule, Tree, TreeBuilder};
}
