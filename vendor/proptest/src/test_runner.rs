//! Configuration and deterministic RNG for the stub test runner.

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xoshiro256\*\* generator used to sample strategies.
///
/// Seeded from the test name, so every run of a given property test sees
/// the same sequence of cases — failures reproduce without a persistence
/// file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash, splitmix64 key
    /// expansion).
    pub fn from_test_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(hash)
    }

    /// Seeds the generator from a 64-bit value.
    pub fn from_seed(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        TestRng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1]`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
