//! The `Strategy` trait and the combinators/primitive strategies the
//! workspace's property tests rely on.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for sampling random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: a strategy only knows how to
/// sample (no shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from every sampled value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_uint_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range_strategies!(u64, usize, u32);

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad f64 range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "bad f64 range"
        );
        self.start + rng.unit_f64() * (self.end - self.start) * 0.999_999_999
    }
}

/// A `Vec` of strategies samples element-wise (proptest's
/// "collection of strategies is a strategy" behaviour).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_compose() {
        let strat = (1usize..=4)
            .prop_flat_map(|n| crate::collection::vec(0u64..10, n))
            .prop_map(|v| v.len());
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let n = strat.sample(&mut rng);
            assert!((1..=4).contains(&n));
        }
    }

    #[test]
    fn boxed_and_vec_of_strategies() {
        let parents: Vec<BoxedStrategy<usize>> = (0..5usize)
            .map(|i| {
                if i == 0 {
                    Just(0usize).boxed()
                } else {
                    (0..i).boxed()
                }
            })
            .collect();
        let mut rng = TestRng::from_seed(9);
        let sampled = parents.sample(&mut rng);
        assert_eq!(sampled.len(), 5);
        for (i, &p) in sampled.iter().enumerate() {
            assert!(i == 0 && p == 0 || p < i);
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..1000 {
            let x = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }
}
