//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! strategies for integer/float ranges, tuples, `Vec`s of strategies and
//! [`collection::vec`], plus [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! RNG seeded from the test name (so CI failures reproduce exactly), and
//! there is **no shrinking** — a failing case panics with the assertion
//! message of the raw sample.

pub mod strategy;
pub mod test_runner;

/// Sized-collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of exactly `len` elements drawn from
    /// `element`. (Real proptest accepts a size range; the workspace always
    /// passes an exact length.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times and
/// runs the body on every sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_test_name(stringify!($name));
                for _case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Asserts a condition inside a property test (alias of `assert!`; without
/// shrinking there is no failure-persistence machinery to hook into).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test (alias of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
