//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as inert
//! markers (no value is ever serialized at runtime), so both derives expand
//! to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
