//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s infallible API: `lock()`
//! returns a guard directly. Poisoning is ignored (a panicking worker
//! already aborts the test or experiment that owns the data).

use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`'s infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
