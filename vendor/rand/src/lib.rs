//! Offline stand-in for the `rand` crate.
//!
//! Implements the small surface the workspace uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256\*\* seeded through splitmix64),
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over integer
//! ranges. Sampling quality is more than adequate for the synthetic-tree
//! generators; identical seeds produce identical streams on every platform.

/// Core random-number source: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range-sampling extension, mirroring `rand::Rng::random_range`.
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u64, usize, u32);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.random_range(3u64..=17);
            assert!((3..=17).contains(&x));
            assert_eq!(x, b.random_range(3u64..=17));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7);
            a.random_range(0usize..1000) != c.random_range(0usize..1000)
        });
        assert!(differs);
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[rng.random_range(0usize..2)] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
