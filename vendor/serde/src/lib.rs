//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive macro) that
//! the workspace attaches to its data structures. The marker traits carry no
//! methods; actual (de)serialization goes through the [`value`] module, a
//! minimal `serde_json::Value`-like document model (ordered objects, compact
//! and pretty writers, a strict parser) that the `BENCH_*.json` emitter and
//! the report serialization helpers build on.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
