//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive macro) that
//! the workspace attaches to its data structures. No serialization is ever
//! performed at runtime, so the traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
