//! A self-describing JSON value tree: the workspace's offline stand-in for
//! `serde_json::Value`.
//!
//! The OOCTS workspace serializes benchmark snapshots (`BENCH_*.json`) and
//! report payloads as JSON; with crates.io unreachable, this module provides
//! the minimal value model those call sites need:
//!
//! * [`Value`] — null / bool / number / string / array / object, with
//!   objects preserving **insertion order** so that emitted documents are
//!   byte-deterministic;
//! * [`Value::render`] / the [`std::fmt::Display`] impl — a compact
//!   RFC 8259 writer (escaped strings, lossless `u64`/`i64`, shortest-form
//!   `f64`);
//! * [`Value::parse`] — a strict recursive-descent parser for the same
//!   grammar, used by snapshot validators and round-trip tests.
//!
//! Unlike real serde there is no data-model abstraction: producers build
//! `Value` trees by hand and consumers pattern-match them.

use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (serialized losslessly).
    U64(u64),
    /// A negative integer (serialized losslessly).
    I64(i64),
    /// A finite floating-point number. Non-finite values render as `null`,
    /// like `serde_json` does.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; entries keep their insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; no-op on other variants.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Object(entries) = self {
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
    }

    /// Chaining form of [`Value::set`], for building literals.
    #[must_use]
    pub fn with(mut self, key: &str, value: Value) -> Value {
        self.set(key, value);
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, accepting any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). Identical to the
    /// [`fmt::Display`] output.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Renders the value as indented JSON (two spaces per level, one entry
    /// per line) — the format of the committed `BENCH_*.json` snapshots.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.render()),
        }
    }

    /// Parses a JSON document. The whole input must be consumed (trailing
    /// whitespace excepted); on failure the error carries the byte offset.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes `s` as a JSON string literal (quoted, escaped).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) if x.is_finite() => {
                // `{}` on f64 is shortest-round-trip; force a fractional
                // part so the value parses back into the F64 variant.
                let s = format!("{x}");
                if s.contains(['.', 'e', 'E']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            Value::F64(_) => f.write_str("null"),
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_json_string(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(key.len() + 2);
                    write_json_string(&mut buf, key);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON parse failure: what went wrong, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if fractional {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.error("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}
