//! Work-stealing deques: `Worker`, `Stealer` and `Injector`, mirroring the
//! `crossbeam-deque` API surface the OOCTS execution engine consumes.
//!
//! # Design: a locked deque, not a Chase–Lev deque
//!
//! The real `crossbeam-deque` implements the Chase–Lev dynamic circular
//! work-stealing deque, whose lock-freedom fundamentally relies on `unsafe`
//! code: the owner and thieves race on a shared ring buffer of possibly
//! uninitialized slots, reconciled with fenced atomic top/bottom indices
//! and epoch-based buffer reclamation. None of that is expressible under
//! `#![forbid(unsafe_code)]`, which this vendor tree keeps (and the
//! workspace linter checks).
//!
//! This stand-in therefore keeps the Chase–Lev *topology* and *discipline*
//! — one deque per worker, the owner pushes and pops at the back (LIFO, so
//! freshly spawned cells stay cache-hot), thieves steal from the front
//! (FIFO, so they grab the oldest and typically largest work) — but
//! synchronizes each deque with a plain [`std::sync::Mutex`] around a
//! `VecDeque`. Two properties keep the lock cheap where it matters:
//!
//! * the owner's `push`/`pop` critical sections are a handful of pointer
//!   moves, and the deque is uncontended unless a thief is actively
//!   stealing;
//! * thieves use [`Mutex::try_lock`] and report [`Steal::Retry`] instead of
//!   blocking, exactly like a failed CAS in the lock-free original — a
//!   thief never holds up the owner for longer than one queue operation.
//!
//! For the coarse work items the engine schedules (one full scheduler run
//! per cell, microseconds to seconds each), the lock is far below the
//! noise floor; if the environment ever gains crates.io access, swapping
//! in the real `crossbeam-deque` is a drop-in change (see vendor/README).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError, TryLockError};

/// The outcome of one steal attempt, as in `crossbeam-deque`.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was (observed) empty; nothing was stolen.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race (here: the lock was contended) and should be
    /// retried.
    Retry,
}

impl<T> Steal<T> {
    /// `true` for [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// `true` for [`Steal::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// `true` for [`Steal::Retry`].
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Unwraps [`Steal::Success`], `None` otherwise.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// The owner's end of one work-stealing deque.
///
/// The owner pushes and pops at the *back* (LIFO); [`Stealer`]s created
/// with [`Worker::stealer`] take from the *front* (FIFO).
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty deque whose owner pops in LIFO order (the only
    /// flavour the engine uses; `crossbeam-deque` also offers FIFO
    /// workers).
    pub fn new_lifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task at the back of the deque.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Pops the most recently pushed task (LIFO), if any.
    pub fn pop(&self) -> Option<T> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
    }

    /// Number of tasks currently in the deque.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` if the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates a [`Stealer`] over this deque. Stealers are cheap to clone
    /// and `Send`, so every other worker can hold one.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new_lifo()
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").finish_non_exhaustive()
    }
}

/// A thief's handle over some [`Worker`]'s deque: steals the *oldest* task.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Attempts to steal the task at the front of the deque. Never blocks:
    /// if the owner (or another thief) holds the lock, reports
    /// [`Steal::Retry`] like a failed CAS would in the lock-free original.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.try_lock() {
            Ok(mut queue) => match queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
            Err(TryLockError::Poisoned(poisoned)) => match poisoned.into_inner().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
        }
    }

    /// Steals roughly half of the victim's tasks into `dest` (front first,
    /// preserving their order) and pops one of them for immediate
    /// execution, as `crossbeam-deque`'s `steal_batch_and_pop` does.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut batch = match self.inner.try_lock() {
            Ok(mut queue) => {
                let take = queue.len().div_ceil(2);
                if take == 0 {
                    return Steal::Empty;
                }
                queue.drain(..take).collect::<VecDeque<T>>()
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                let mut queue = poisoned.into_inner();
                let take = queue.len().div_ceil(2);
                if take == 0 {
                    return Steal::Empty;
                }
                queue.drain(..take).collect::<VecDeque<T>>()
            }
            Err(TryLockError::WouldBlock) => return Steal::Retry,
        };
        // The *oldest* stolen task runs now; the rest go to the thief's own
        // deque back-to-front so its LIFO pop yields them oldest-first too.
        let first = batch.pop_front();
        if !batch.is_empty() {
            let mut dest_queue = dest
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for task in batch {
                dest_queue.push_back(task);
            }
        }
        match first {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer").finish_non_exhaustive()
    }
}

/// A global FIFO injector queue, the entry point for work that does not
/// belong to any worker yet (the engine seeds it with the initial cells,
/// largest first).
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task at the back of the global queue.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Attempts to steal the oldest task from the global queue; never
    /// blocks ([`Steal::Retry`] under contention).
    pub fn steal(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Ok(mut queue) => match queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
            Err(TryLockError::Poisoned(poisoned)) => match poisoned.into_inner().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
        }
    }

    /// `true` if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let worker = Worker::new_lifo();
        let stealer = worker.stealer();
        for i in 0..4 {
            worker.push(i);
        }
        assert_eq!(worker.len(), 4);
        // Thief takes the oldest…
        assert_eq!(stealer.steal(), Steal::Success(0));
        // …owner the newest.
        assert_eq!(worker.pop(), Some(3));
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn batch_steal_moves_half_and_pops_the_oldest() {
        let victim = Worker::new_lifo();
        let thief = Worker::new_lifo();
        for i in 0..7 {
            victim.push(i);
        }
        // ceil(7/2) = 4 stolen: 0 runs now, 1..=3 land on the thief.
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(victim.len(), 3);
        assert_eq!(thief.len(), 3);
        // The thief's LIFO pop sees them newest-first (3, 2, 1): acceptable
        // — they are all "old" work from the victim's perspective.
        assert_eq!(thief.pop(), Some(3));
        // An empty victim reports Empty, not Success.
        let empty = Worker::<i32>::new_lifo();
        assert_eq!(empty.stealer().steal_batch_and_pop(&thief), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo_and_shared() {
        let injector = Injector::new();
        for i in 0..10 {
            injector.push(i);
        }
        assert_eq!(injector.len(), 10);
        let drained: Vec<i32> = std::iter::from_fn(|| injector.steal().success()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(injector.is_empty());
    }

    #[test]
    fn concurrent_workers_consume_every_task_exactly_once() {
        const TASKS: usize = 10_000;
        const WORKERS: usize = 4;
        let injector = Injector::new();
        for i in 0..TASKS {
            injector.push(i);
        }
        let workers: Vec<Worker<usize>> = (0..WORKERS).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();

        let sum: usize = std::thread::scope(|scope| {
            workers
                .iter()
                .enumerate()
                .map(|(id, local)| {
                    let injector = &injector;
                    let stealers = &stealers;
                    scope.spawn(move || {
                        let mut sum = 0;
                        let mut dry = 0;
                        while dry < 100 {
                            let task = local.pop().or_else(|| {
                                // Injector first, then peers round-robin.
                                injector.steal_success_or(|| {
                                    (1..WORKERS).find_map(|d| {
                                        stealers[(id + d) % WORKERS].steal().success()
                                    })
                                })
                            });
                            match task {
                                Some(t) => {
                                    sum += t;
                                    dry = 0;
                                    // Re-distribute some work so stealing
                                    // genuinely happens.
                                    if t % 7 == 0 && t > 0 {
                                        local.push(t - 1);
                                        sum -= t - 1;
                                    }
                                }
                                None => {
                                    dry += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        sum
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(sum, TASKS * (TASKS - 1) / 2);
    }

    impl<T> Injector<T> {
        /// Test helper: steal from the injector, falling back to `f` on
        /// empty/contended.
        fn steal_success_or(&self, f: impl Fn() -> Option<T>) -> Option<T> {
            loop {
                match self.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => return f(),
                    Steal::Retry => continue,
                }
            }
        }
    }
}
