//! Offline stand-in for `crossbeam`.
//!
//! Provides [`channel::unbounded`] and [`channel::bounded`], the
//! multi-producer multi-consumer channels the experiment engine uses for
//! streaming results, plus [`deque`], the work-stealing
//! `Worker`/`Stealer`/`Injector` trio the engine schedules cells with.
//! All of it is built on mutex-protected `VecDeque`s plus condition
//! variables — no `unsafe` anywhere (see the [`deque`] module docs for why
//! the real Chase–Lev deque is out of reach without it).

#![forbid(unsafe_code)]

pub mod deque;

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// `None` for unbounded channels; bounded senders block while the
        /// queue holds `cap` items.
        cap: Option<usize>,
        vacancy: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel; cloneable, so multiple
    /// workers can drain the same queue.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel of capacity `cap` (at least 1):
    /// [`Sender::send`] blocks while the queue is full, providing
    /// backpressure — a slow consumer throttles the producers instead of
    /// letting results pile up in memory.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap,
            vacancy: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`. Unbounded channels never block; bounded ones
        /// block while full. A bounded send to a channel whose receivers
        /// are all gone would otherwise deadlock, so it is not detected
        /// here — the engine's protocol drops the senders first.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = self.inner.cap {
                while queue.len() >= cap {
                    queue = self
                        .inner
                        .vacancy
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty and
        /// at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    // A bounded sender may be blocked on a full queue.
                    self.inner.vacancy.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn drains_in_order_then_disconnects() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_channel_applies_backpressure_and_stays_in_order() {
        let (tx, rx) = channel::bounded(2);
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let counter = std::sync::Arc::clone(&produced);
            scope.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            });
            // The producer cannot run ahead by more than the capacity.
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
                let ahead = produced.load(std::sync::atomic::Ordering::SeqCst);
                assert!(ahead <= i + 1 + 2 + 1, "producer ran {ahead} ahead of {i}");
            }
        });
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn multiple_workers_consume_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut sum = 0;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(total, 100 * 99 / 2);
    }
}
