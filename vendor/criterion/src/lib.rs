//! Offline stand-in for `criterion`.
//!
//! Implements the macro/builder surface the workspace benches use and
//! reports simple wall-clock timings (best / mean over a handful of
//! samples) to stdout. There is no statistical analysis, HTML report or
//! baseline comparison — this is a smoke-benchmark harness for offline
//! environments.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier, used like criterion's own.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement: Duration::from_millis(300),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.default_sample_size, self.default_measurement);
        f(&mut bencher);
        bencher.report(&id.label);
        self
    }
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation (recorded but only echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub does a single warm-up run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total time spent sampling one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Keep smoke runs fast even when callers ask for long measurements.
        self.measurement = d.min(Duration::from_secs(1));
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput (echoed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
        }
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.measurement);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement: Duration) -> Self {
        Bencher {
            sample_size,
            measurement,
            samples: Vec::new(),
        }
    }

    /// Times `routine`: one warm-up call, then up to `sample_size` timed
    /// calls bounded by the measurement budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let best = self.samples.iter().min().expect("nonempty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "  {label}: best {best:?}, mean {mean:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags (`--bench`, filters) passed by cargo.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
