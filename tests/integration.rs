//! Cross-crate integration tests: the full pipelines of the paper, from
//! instance generation (synthetic or multifrontal) through scheduling to the
//! evaluation harness, all driven through the `Scheduler` trait API.

use std::sync::Arc;

use oocts::prelude::*;
use oocts_core::brute_force_min_io;
use oocts_gen::dataset::{synth_dataset, trees_dataset, DatasetConfig};
use oocts_gen::paper;
use oocts_gen::random_binary_tree;
use oocts_profile::bounds::{MemoryBound, MemoryBounds};
use oocts_sparse::ordering::nested_dissection_2d;
use oocts_sparse::{assembly_tree, grid_laplacian_2d, AssemblyOptions};
use oocts_tree::{fif_io, TreeError};

/// The full multifrontal pipeline: matrix → ordering → assembly tree →
/// out-of-core schedules, with the expected dominance relations.
#[test]
fn multifrontal_pipeline_end_to_end() {
    let side = 24;
    let pattern = grid_laplacian_2d(side, side, false);
    let permuted = pattern.permute(&nested_dissection_2d(side, side));
    let tree = assembly_tree(&permuted, AssemblyOptions::default()).unwrap();
    tree.validate().unwrap();

    let bounds = MemoryBounds::of(&tree);
    assert!(bounds.peak_incore >= bounds.lower_bound);
    let memory = bounds.memory(MemoryBound::Middle);

    let mut ios = Vec::new();
    for scheduler in trees_schedulers() {
        let report = scheduler.solve(&tree, memory).unwrap();
        report.schedule.validate(&tree).unwrap();
        ios.push((scheduler, report.io_volume));
    }
    // Every strategy is feasible, and the measured I/O is consistent with a
    // re-simulation of its schedule.
    for (scheduler, io) in &ios {
        let schedule = scheduler.schedule(&tree, memory).unwrap();
        assert_eq!(fif_io(&tree, &schedule, memory).unwrap().total_io, *io);
    }
    // At the in-core peak no strategy needs any I/O.
    for scheduler in trees_schedulers() {
        assert_eq!(
            scheduler
                .solve(&tree, bounds.peak_incore)
                .unwrap()
                .io_volume,
            0
        );
    }
}

/// The SYNTH pipeline at a reduced scale, through the parallel runner and the
/// performance-profile machinery.
#[test]
fn synth_experiment_end_to_end() {
    let cfg = DatasetConfig {
        synth_instances: 8,
        synth_nodes: 400,
        trees_scale: 1,
        seed: 11,
    };
    let instances: Vec<_> = synth_dataset(&cfg)
        .into_iter()
        .map(|i| (i.name, i.tree))
        .collect();
    let results = run_experiment(&instances, &ExperimentConfig::synth(MemoryBound::Middle))
        .expect("feasible bounds");
    assert_eq!(results.results.len(), 8);
    let profile = results.profile();
    // RecExpand and FullRecExpand should (essentially) never lose to
    // OptMinMem; allow no exception on this small deterministic set.
    let idx = |name: &str| profile.algorithms().iter().position(|a| a == name).unwrap();
    let re = idx("RecExpand");
    let mm = idx("OptMinMem");
    for r in &results.results {
        assert!(
            r.io_volumes[re] <= r.io_volumes[mm],
            "RecExpand lost to OptMinMem on {}",
            r.name
        );
    }
    // The profile curve of every algorithm reaches 1.0 for a large threshold.
    for a in 0..profile.algorithms().len() {
        assert!((profile.fraction_within(a, 1e6) - 1.0).abs() < 1e-12);
    }
}

/// The TREES dataset builder, the paper's filtering rule, and the runner.
#[test]
fn trees_experiment_end_to_end() {
    let cfg = DatasetConfig::quick();
    let instances: Vec<_> = trees_dataset(&cfg)
        .into_iter()
        .map(|i| (i.name, i.tree))
        .collect();
    assert!(!instances.is_empty());
    let mut config = ExperimentConfig::trees(MemoryBound::Middle);
    config.threads = 1;
    let results = run_experiment(&instances, &config).expect("feasible bounds");
    // Filtering keeps only instances where I/O can actually be forced.
    assert!(results.results.len() <= instances.len());
    for r in &results.results {
        assert!(r.bounds.peak_incore > r.bounds.lower_bound);
    }
    // The restricted view only keeps instances where heuristics differ, in
    // the same column order.
    let differing = results.restricted_to_differing();
    assert!(differing.results.len() <= results.results.len());
    assert_eq!(differing.scheduler_names(), results.scheduler_names());
}

/// A scheduler defined entirely outside `oocts-core` runs through
/// `run_experiment`, appears in the performance profile and the CSV under
/// its registered name, and its column tracks its own `solve` reports.
#[test]
fn user_defined_scheduler_end_to_end() {
    /// Visits children heaviest-subtree-last; no relation to any built-in.
    #[derive(Debug)]
    struct HeaviestLast;

    impl Scheduler for HeaviestLast {
        fn name(&self) -> String {
            "HeaviestLast".to_string()
        }

        fn schedule(&self, tree: &Tree, _memory: u64) -> Result<Schedule, TreeError> {
            fn subtree_weight(tree: &Tree, node: NodeId) -> u64 {
                tree.weight(node)
                    + tree
                        .children(node)
                        .iter()
                        .map(|&c| subtree_weight(tree, c))
                        .sum::<u64>()
            }
            fn emit(tree: &Tree, node: NodeId, order: &mut Vec<NodeId>) {
                let mut children = tree.children(node).to_vec();
                children.sort_by_key(|&c| subtree_weight(tree, c));
                for c in children {
                    emit(tree, c, order);
                }
                order.push(node);
            }
            let mut order = Vec::with_capacity(tree.len());
            emit(tree, tree.root(), &mut order);
            Ok(Schedule::new(order))
        }
    }

    let mut registry = SchedulerRegistry::with_builtins();
    registry.register(Arc::new(HeaviestLast)).unwrap();

    let cfg = DatasetConfig {
        synth_instances: 6,
        synth_nodes: 300,
        trees_scale: 1,
        seed: 23,
    };
    let instances: Vec<_> = synth_dataset(&cfg)
        .into_iter()
        .map(|i| (i.name, i.tree))
        .collect();

    let schedulers: Vec<Arc<dyn Scheduler>> = ["RecExpand", "HeaviestLast"]
        .iter()
        .map(|n| registry.get(n).unwrap())
        .collect();
    let config = ExperimentConfig::new(schedulers, MemoryBound::Middle);
    let results = run_experiment(&instances, &config).expect("feasible bounds");

    assert_eq!(results.results.len(), instances.len());
    assert_eq!(results.scheduler_names(), ["RecExpand", "HeaviestLast"]);

    // The profile knows the custom strategy by its registered name.
    let profile = results.profile();
    let col = profile
        .algorithms()
        .iter()
        .position(|a| a == "HeaviestLast")
        .expect("custom scheduler in the profile");
    assert!((profile.fraction_within(col, 1e9) - 1.0).abs() < 1e-12);

    // So does the CSV header, and the column matches direct solve() calls.
    let csv = results.to_csv();
    assert!(csv.lines().next().unwrap().ends_with(",io_HeaviestLast"));
    let custom = registry.get("HeaviestLast").unwrap();
    for ((name, tree), row) in instances.iter().zip(&results.results) {
        assert_eq!(&row.name, name);
        let expected = custom.solve(tree, row.memory).unwrap().io_volume;
        assert_eq!(row.io_volumes[1], expected);
    }
}

/// Regression: the five pre-0.2 `Algorithm` strategies produce bit-identical
/// I/O volumes through the trait API on the Figure 6 tree and a SYNTH
/// sample. Expected values were captured by running the closed enum before
/// the `Scheduler` redesign (PR 3).
#[test]
fn builtin_io_volumes_match_pre_refactor_enum() {
    let registry = SchedulerRegistry::with_builtins();
    let names = [
        "PostOrderMinIO",
        "OptMinMem",
        "RecExpand",
        "FullRecExpand",
        "PostOrderMinMem",
    ];
    let solve_all = |tree: &Tree, memory: u64| -> Vec<u64> {
        names
            .iter()
            .map(|n| {
                registry
                    .get(n)
                    .unwrap()
                    .solve(tree, memory)
                    .unwrap()
                    .io_volume
            })
            .collect()
    };

    assert_eq!(
        solve_all(&paper::fig6(), paper::FIG6_MEMORY),
        [4, 4, 3, 3, 4]
    );

    let cfg = DatasetConfig {
        synth_instances: 4,
        synth_nodes: 300,
        trees_scale: 1,
        seed: 2017,
    };
    let expected: [[u64; 5]; 4] = [
        [145, 17, 17, 17, 259],
        [150, 2, 2, 2, 156],
        [166, 2, 2, 2, 179],
        [134, 13, 13, 13, 134],
    ];
    for (inst, expected) in synth_dataset(&cfg).iter().zip(expected) {
        let memory = MemoryBounds::of(&inst.tree).memory(MemoryBound::Middle);
        assert_eq!(
            solve_all(&inst.tree, memory),
            expected,
            "I/O volumes changed on {}",
            inst.name
        );
    }

    // The deprecated shim reports the very same volumes.
    #[allow(deprecated)]
    for (algo, expected) in Algorithm::ALL.iter().zip([4u64, 4, 3, 3, 4]) {
        let res = algo.run(&paper::fig6(), paper::FIG6_MEMORY).unwrap();
        assert_eq!(res.io_volume, expected, "{algo} shim drifted");
    }
}

/// Paper examples reproduced through the public API (Appendix A).
#[test]
fn appendix_examples_through_public_api() {
    let fig6 = paper::fig6();
    let (_, opt6) = brute_force_min_io(&fig6, paper::FIG6_MEMORY).unwrap();
    assert_eq!(opt6, 3);
    assert_eq!(
        FullRecExpand
            .solve(&fig6, paper::FIG6_MEMORY)
            .unwrap()
            .io_volume,
        3,
        "FullRecExpand is optimal on Figure 6"
    );
    assert_eq!(
        OptMinMem
            .solve(&fig6, paper::FIG6_MEMORY)
            .unwrap()
            .io_volume,
        4,
        "OptMinMem pays 4 I/Os on Figure 6"
    );

    let fig7 = paper::fig7();
    let (_, opt7) = brute_force_min_io(&fig7, paper::FIG7_MEMORY).unwrap();
    assert_eq!(opt7, 3);
    assert_eq!(
        PostOrderMinIo
            .solve(&fig7, paper::FIG7_MEMORY)
            .unwrap()
            .io_volume,
        3,
        "PostOrderMinIO is optimal on Figure 7"
    );
    assert!(
        FullRecExpand
            .solve(&fig7, paper::FIG7_MEMORY)
            .unwrap()
            .io_volume
            > 3,
        "FullRecExpand cannot be optimal on Figure 7"
    );
}

/// The counterexample families show the unbounded competitive ratios claimed
/// in Sections 4.3 and 4.4.
#[test]
fn counterexample_ratios_grow() {
    // Figure 2(a): postorder I/O grows linearly with the number of leaves
    // while the reference stays at 1.
    let m = 32;
    let mut previous = 0;
    for levels in [0usize, 4, 8] {
        let (tree, reference) = paper::fig2a_family(levels, m);
        let reference_io = fif_io(&tree, &reference, m).unwrap().total_io;
        assert_eq!(reference_io, 1);
        let po = PostOrderMinIo.solve(&tree, m).unwrap().io_volume;
        assert!(po > previous, "postorder I/O must keep growing");
        assert!(po >= (levels as u64 + 1) * (m / 2 - 1));
        previous = po;
    }
    // Figure 2(c): OptMinMem I/O grows quadratically in k while the reference
    // grows linearly.
    for k in [4u64, 8, 16] {
        let (tree, reference, memory) = paper::fig2c_family(k);
        let reference_io = fif_io(&tree, &reference, memory).unwrap().total_io;
        assert_eq!(reference_io, 2 * k);
        let mm = OptMinMem.solve(&tree, memory).unwrap().io_volume;
        assert!(
            mm >= k * k / 2,
            "OptMinMem should pay Θ(k²) I/Os, got {mm} for k = {k}"
        );
    }
}

/// Homogeneous random trees: Theorem 4 through the public API.
#[test]
fn homogeneous_theorem4_through_public_api() {
    for seed in 0..5u64 {
        let tree = random_binary_tree(200, 1..=1, seed);
        let labels = homogeneous::labels(&tree, 3).unwrap();
        let w_t = labels.total_io();
        let po = PostOrderMinIo.solve(&tree, 3).unwrap().io_volume;
        assert_eq!(po, w_t, "PostOrderMinIO achieves W(T) on homogeneous trees");
        let others: [Arc<dyn Scheduler>; 2] = [Arc::new(OptMinMem), Arc::new(RecExpand::default())];
        for scheduler in others {
            assert!(scheduler.solve(&tree, 3).unwrap().io_volume >= w_t);
        }
    }
}

/// Library quickstart from the README, kept compiling and correct.
#[test]
fn readme_quickstart() {
    let mut b = TreeBuilder::new();
    let root = b.add_root(4);
    let a = b.add_child(root, 8);
    b.add_child(a, 2);
    b.add_child(root, 10);
    let tree = b.build().unwrap();

    let (schedule, peak) = opt_min_mem(&tree);
    assert_eq!(peak_memory(&tree, &schedule).unwrap(), peak);

    let m = tree.min_feasible_memory();
    let io = fif_io(&tree, &schedule, m).unwrap();
    let report = RecExpand::default().solve(&tree, m).unwrap();
    assert!(report.io_volume <= io.total_io);

    let registry = SchedulerRegistry::with_builtins();
    let tuned = registry.get("RecExpand(max_rounds=4)").unwrap();
    assert!(tuned.solve(&tree, m).unwrap().io_volume <= io.total_io);
}
