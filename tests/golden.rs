//! Golden regression suite: replays the persisted corpus of `tests/corpus/`
//! and checks the schedulers still report exactly the committed numbers.
//!
//! Three layers of byte-level strictness:
//!
//! 1. every committed `*.tree` snapshot round-trips **byte-identically**
//!    through the `oocts-corpus v1` parser/formatter;
//! 2. replaying every (instance, scheduler) cell of `golden.tsv` through
//!    [`run_experiment`] — i.e. through the work-stealing execution engine
//!    at cell granularity — reproduces the committed file byte-identically,
//!    at 1 thread *and* at 4 threads;
//! 3. the CSV export of the replay is byte-identical across thread counts
//!    *and* across shardings (cell vs. instance granularity).
//!
//! Regenerate the corpus (only when a behavioural change is intended) with
//! `cargo run --release -p oocts-bench --bin bench -- --emit-corpus
//! tests/corpus` and review the diff.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use oocts::gen::corpus::{
    format_golden, format_instance, load_dir, parse_golden, parse_instance, GoldenRecord,
};
use oocts::prelude::*;
use oocts::profile::bounds::MemoryBound;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn tree_snapshots_round_trip_byte_identically() {
    let dir = corpus_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|ext| ext != "tree") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let instance = parse_instance(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        // The instance name matches the file stem, so `load_dir` order is
        // reproducible from names alone.
        assert_eq!(
            Some(instance.name.as_str()),
            path.file_stem().and_then(|s| s.to_str()),
            "name/file mismatch for {}",
            path.display()
        );
        instance.tree.validate().unwrap();
        let reformatted = format_instance(&instance.name, &instance.tree).unwrap();
        assert_eq!(
            reformatted,
            text,
            "{} is not in canonical form",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 8,
        "expected the committed corpus, found {checked}"
    );
}

/// Replays the whole corpus through `run_experiment` with the given thread
/// count and sharding, and returns the results plus the replayed golden
/// records keyed by (instance, scheduler). The default sharding exercises
/// the work-stealing engine at **cell** granularity.
fn replay(
    threads: usize,
    granularity: Granularity,
) -> (ExperimentResults, HashMap<(String, String), GoldenRecord>) {
    let instances = load_dir(&corpus_dir()).expect("corpus loads");
    assert!(!instances.is_empty());
    let named: Vec<(String, Tree)> = instances.into_iter().map(|i| (i.name, i.tree)).collect();

    let registry = SchedulerRegistry::with_builtins();
    let schedulers = registry
        .get_list("PostOrderMinIO,OptMinMem,RecExpand,FullRecExpand,PostOrderMinMem,RandomPostOrder(seed=0)")
        .unwrap();
    let mut config = ExperimentConfig::new(schedulers, MemoryBound::Middle);
    config.threads = threads;
    config.granularity = granularity;
    let results = run_experiment(&named, &config).expect("the corpus is feasible at Middle");

    // The run went through the execution engine with the requested sharding.
    let stats = results.engine.as_ref().expect("the engine reports stats");
    assert_eq!(stats.granularity, granularity);
    assert_eq!(stats.threads, threads);

    let names = results.scheduler_names();
    let mut cells = HashMap::new();
    for res in &results.results {
        for (a, scheduler) in names.iter().enumerate() {
            cells.insert(
                (res.name.clone(), scheduler.clone()),
                GoldenRecord {
                    instance: res.name.clone(),
                    scheduler: scheduler.clone(),
                    memory: res.memory,
                    io_volume: res.io_volumes[a],
                    peak_memory: res.peak_memories[a],
                },
            );
        }
    }
    (results, cells)
}

#[test]
fn golden_replay_is_byte_identical_at_one_and_four_threads() {
    let committed = std::fs::read_to_string(corpus_dir().join("golden.tsv")).unwrap();
    let expected = parse_golden(&committed).unwrap();
    assert!(!expected.is_empty());

    let (single, single_cells) = replay(1, Granularity::Cell);
    let (parallel, parallel_cells) = replay(4, Granularity::Cell);

    for cells in [&single_cells, &parallel_cells] {
        // Every committed cell was replayed, and nothing extra: the corpus
        // and the scheduler set line up exactly.
        assert_eq!(cells.len(), expected.len());
        // Rebuilding golden.tsv in the committed order reproduces the
        // committed bytes exactly.
        let replayed: Vec<GoldenRecord> = expected
            .iter()
            .map(|r| {
                cells
                    .get(&(r.instance.clone(), r.scheduler.clone()))
                    .unwrap_or_else(|| panic!("{}/{} was not replayed", r.instance, r.scheduler))
                    .clone()
            })
            .collect();
        assert_eq!(
            format_golden(&replayed),
            committed,
            "replay diverges from the committed golden.tsv"
        );
    }

    // And the two replays agree with each other down to the CSV bytes.
    assert_eq!(single.to_csv(), parallel.to_csv());

    // Instance-granularity sharding (the pre-engine decomposition) is just
    // as invisible in the output.
    let (whole, _) = replay(4, Granularity::Instance);
    assert_eq!(whole.to_csv(), parallel.to_csv());
}

/// Replays the corpus through the *direct* solver entry points — Liu's
/// OptMinMem, PostOrderMinIO and RecExpand/FullRecExpand on the arena tree,
/// bypassing the registry and the parallel runner entirely — and checks each
/// cell bit-for-bit against `golden.tsv`. This pins the arena refactor: the
/// flat CSR layout and the scratch-space hot paths must reproduce the exact
/// committed I/O volumes and peaks.
#[test]
fn direct_solvers_reproduce_golden_cells_on_the_arena() {
    use oocts::minmem::post_order_min_mem;

    let committed = std::fs::read_to_string(corpus_dir().join("golden.tsv")).unwrap();
    let expected = parse_golden(&committed).unwrap();
    let cells: HashMap<(String, String), &GoldenRecord> = expected
        .iter()
        .map(|r| ((r.instance.clone(), r.scheduler.clone()), r))
        .collect();

    let check = |tree: &Tree, name: &str, instance: &str, schedule: &Schedule, m: u64| {
        let io = fif_io(tree, schedule, m).unwrap().total_io;
        let peak = peak_memory(tree, schedule).unwrap();
        let golden = cells
            .get(&(instance.to_string(), name.to_string()))
            .unwrap_or_else(|| panic!("{instance}/{name} missing from golden.tsv"));
        assert_eq!(
            (io, peak),
            (golden.io_volume, golden.peak_memory),
            "{instance}/{name} diverges from golden.tsv"
        );
    };

    let mut checked = 0;
    for inst in load_dir(&corpus_dir()).unwrap() {
        // The memory bound is part of the committed record; every scheduler
        // of one instance ran under the same bound.
        let m = expected
            .iter()
            .find(|r| r.instance == inst.name)
            .map(|r| r.memory)
            .unwrap_or_else(|| panic!("{} missing from golden.tsv", inst.name));

        let (s, _) = opt_min_mem(&inst.tree);
        check(&inst.tree, "OptMinMem", &inst.name, &s, m);
        let (s, _) = post_order_min_io(&inst.tree, m);
        check(&inst.tree, "PostOrderMinIO", &inst.name, &s, m);
        let (s, _) = post_order_min_mem(&inst.tree);
        check(&inst.tree, "PostOrderMinMem", &inst.name, &s, m);
        let out = rec_expand(&inst.tree, m).unwrap();
        check(&inst.tree, "RecExpand", &inst.name, &out.schedule, m);
        let out = full_rec_expand(&inst.tree, m).unwrap();
        check(&inst.tree, "FullRecExpand", &inst.name, &out.schedule, m);
        checked += 1;
    }
    assert!(
        checked >= 8,
        "expected the committed corpus, found {checked}"
    );
}

/// Brute-force-gated equivalence on small random trees: the exhaustive
/// oracles bound every heuristic, and Liu's algorithm is *exactly* optimal
/// for peak memory. Small sizes keep the factorial oracles tractable.
#[test]
fn solvers_agree_with_brute_force_on_small_trees() {
    use oocts::gen::random::uniform_attachment_tree;
    use oocts::minmem::brute_force_min_peak;
    use oocts_core::brute_force_min_io;

    for seed in 0..24u64 {
        let n = 2 + (seed % 7) as usize; // 2..=8 nodes
        let tree = uniform_attachment_tree(n, 1..=9, 0xA11CE + seed);
        let (s_opt, peak_opt) = opt_min_mem(&tree);
        let (_, peak_best) = brute_force_min_peak(&tree);
        assert_eq!(peak_opt, peak_best, "Liu must be optimal (seed {seed})");

        // Middle bound, as in the golden corpus: (LB + Peak) / 2, clamped
        // to feasibility.
        let m = tree
            .min_feasible_memory()
            .max((tree.min_feasible_memory() + peak_opt) / 2);
        let (_, io_best) = brute_force_min_io(&tree, m).unwrap();

        let heuristics: Vec<(&str, Schedule)> = vec![
            ("OptMinMem", s_opt),
            ("PostOrderMinIO", post_order_min_io(&tree, m).0),
            ("RecExpand", rec_expand(&tree, m).unwrap().schedule),
            ("FullRecExpand", full_rec_expand(&tree, m).unwrap().schedule),
        ];
        for (name, schedule) in &heuristics {
            schedule.validate(&tree).unwrap();
            let io = fif_io(&tree, schedule, m).unwrap().total_io;
            assert!(
                io >= io_best,
                "{name} beat the exhaustive optimum on seed {seed}: {io} < {io_best}"
            );
        }
    }
}
