//! Straggler regression suite for the cell-granularity execution engine.
//!
//! The grid is the engine's worst case for instance-granularity sharding:
//! one huge instance (a 2^18-node complete binary tree, as in the stress
//! suite) plus 63 tiny ones. Under instance sharding the huge instance pins
//! a single worker for its *entire* scheduler row; cell sharding spreads
//! the row's cells over the pool, so the critical path shrinks from the sum
//! of the row to its slowest cell.
//!
//! The wall-clock comparison is only meaningful with real parallel
//! hardware, so it is `#[ignore]`d (CI runs it in release, like the stress
//! suite) and additionally skips itself on hosts with fewer than four
//! available CPUs:
//!
//! ```text
//! cargo test --release --test straggler -- --ignored --nocapture
//! ```
//!
//! The cheap structural checks (steal counters, cell accounting,
//! sharding-independent results) run everywhere, single-core included.

use std::time::Duration;

use oocts::gen::random::{complete_kary, uniform_attachment_tree};
use oocts::prelude::*;
use oocts::profile::bounds::MemoryBound;

/// The comparable-cost scheduler row (`IMBAL_SCHEDULERS` of the bench
/// matrix): `RecExpand` is excluded because its superlinear cost on the
/// huge instance would make the row a single-cell critical path that no
/// cell-level balancing can split.
const ROW: &str = "PostOrderMinIO,OptMinMem,PostOrderMinMem";

/// One huge complete binary tree plus `tiny_count` small random trees.
fn straggler_instances(huge_height: usize, tiny_count: usize) -> Vec<(String, Tree)> {
    let mut huge = complete_kary(2, huge_height, 1);
    // Depth-dependent weights, as in the stress suite: heavier towards the
    // leaves so postorder and optimal traversals genuinely differ.
    for node in huge.node_ids().collect::<Vec<_>>() {
        let w = 1 + (huge.depth(node) as u64) * 3 + (node.index() as u64 % 5);
        huge.set_weight(node, w);
    }
    let mut instances = vec![("straggler-huge".to_string(), huge)];
    for k in 0..tiny_count as u64 {
        instances.push((
            format!("straggler-tiny-{k:02}"),
            uniform_attachment_tree(120, 1..=9, 0x57A6 + k),
        ));
    }
    instances
}

/// Runs the grid once and returns the engine's own wall-clock and stats.
fn timed_run(
    instances: &[(String, Tree)],
    granularity: Granularity,
    threads: usize,
) -> (Duration, EngineStats, ExperimentResults) {
    let registry = SchedulerRegistry::with_builtins();
    let mut config = ExperimentConfig::new(registry.get_list(ROW).unwrap(), MemoryBound::Middle);
    config.threads = threads;
    config.granularity = granularity;
    let results = run_experiment(instances, &config).expect("Middle bound is feasible");
    let stats = results.engine.clone().expect("the engine reports stats");
    (stats.elapsed, stats, results)
}

/// The headline regression: with at least four real workers, cell
/// sharding must beat instance sharding on wall-clock, because the huge
/// row no longer serializes on one worker. Ignored by default — it is a
/// wall-time benchmark and needs parallel hardware to mean anything.
#[test]
#[ignore = "straggler wall-time benchmark: run explicitly in release (CI does)"]
fn cell_sharding_beats_instance_sharding_with_four_workers() {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    if cpus < 4 {
        println!("skipped: needs >= 4 available CPUs, host has {cpus}");
        return;
    }
    let instances = straggler_instances(17, 63); // 2^18 - 1 huge nodes
    let threads = cpus.min(8);

    // Warm-up run (page-in, allocator steady state), then take the best of
    // two timed runs per sharding to damp scheduler noise.
    let _ = timed_run(&instances, Granularity::Cell, threads);
    let best = |granularity| {
        (0..2)
            .map(|_| timed_run(&instances, granularity, threads).0)
            .min()
            .unwrap()
    };
    let instance_wall = best(Granularity::Instance);
    let cell_wall = best(Granularity::Cell);
    let ratio = instance_wall.as_secs_f64() / cell_wall.as_secs_f64();
    println!(
        "straggler x{threads}: instance {:.1} ms, cell {:.1} ms, ratio {ratio:.2}",
        instance_wall.as_secs_f64() * 1e3,
        cell_wall.as_secs_f64() * 1e3,
    );
    assert!(
        cell_wall < instance_wall,
        "cell sharding lost to instance sharding: {cell_wall:?} >= {instance_wall:?}"
    );

    // Steals are what spreads the huge row: the thieves must have fired.
    let (_, stats, _) = timed_run(&instances, Granularity::Cell, threads);
    assert!(
        stats.total_stolen() > 0,
        "no cells were stolen on the straggler grid"
    );
}

/// Cheap structural check, meaningful even on a single-core host: the
/// huge instance's solve cells land in one worker's deque (largest-first
/// seeding) and idle workers steal them while their owner is busy.
#[test]
fn thieves_steal_the_straggler_cells() {
    let instances = straggler_instances(10, 15); // 2^11 - 1 huge nodes
    let (_, stats, results) = timed_run(&instances, Granularity::Cell, 4);

    assert_eq!(stats.granularity, Granularity::Cell);
    assert_eq!(stats.threads, 4);
    assert_eq!(stats.workers.len(), 4);
    assert_eq!(stats.cells, 16 * 3, "16 instances x 3 scheduler cells");
    assert_eq!(
        stats.total_executed(),
        16 * 4,
        "one prep plus three solve cells per instance"
    );
    assert!(
        stats.total_stolen() > 0,
        "idle workers must steal the huge instance's cells"
    );
    assert!(stats.total_injected() > 0, "overflow work is injected");
    assert_eq!(results.results.len(), 16);
    // Per-cell wall-times are recorded for every scheduler column.
    for a in 0..3 {
        assert!(results.total_cell_time(a) > Duration::ZERO);
    }
}

/// Sharding must never change the numbers: instance- and cell-granularity
/// runs of the same straggler grid produce byte-identical CSV.
#[test]
fn sharding_is_invisible_in_the_results() {
    let instances = straggler_instances(8, 9); // 2^9 - 1 huge nodes
    let (_, _, cell) = timed_run(&instances, Granularity::Cell, 4);
    let (_, instance_stats, instance) = timed_run(&instances, Granularity::Instance, 1);
    assert_eq!(instance_stats.granularity, Granularity::Instance);
    assert_eq!(cell.to_csv(), instance.to_csv());
}
