//! Million-node stress test for the arena and the scratch-space hot paths.
//!
//! Ignored by default (it is a wall-time benchmark as much as a test); CI
//! runs it explicitly in release mode:
//!
//! ```text
//! cargo test --release --test stress -- --ignored --nocapture
//! ```
//!
//! The instance is a TREES-style complete binary tree of 2^20 − 1 nodes
//! with depth-dependent weights (heavier towards the leaves, as in the
//! paper's elimination-tree datasets, where the large fronts sit deep).

use std::time::Instant;

use oocts::minmem::{opt_min_mem_peak, post_order_min_mem};
use oocts::prelude::*;

/// 2^20 − 1 = 1 048 575 nodes.
const HEIGHT: usize = 19;

fn million_node_tree() -> Tree {
    let mut tree = oocts::gen::random::complete_kary(2, HEIGHT, 1);
    // Heavier leaves: weight grows with depth so postorder and optimal
    // traversals genuinely differ and the merge paths see large segments.
    for node in tree.node_ids().collect::<Vec<_>>() {
        let w = 1 + (tree.depth(node) as u64) * 3 + (node.index() as u64 % 5);
        tree.set_weight(node, w);
    }
    tree
}

#[test]
#[ignore = "million-node stress: run explicitly in release (CI does)"]
fn million_node_tree_through_liu_and_postorder() {
    let started = Instant::now();
    let tree = million_node_tree();
    println!(
        "build: {} nodes, height {}, {:.3}s",
        tree.len(),
        tree.height(),
        started.elapsed().as_secs_f64()
    );
    assert_eq!(tree.len(), (1 << (HEIGHT + 1)) - 1);
    assert_eq!(tree.height(), HEIGHT);
    assert_eq!(tree.postorder().len(), tree.len());

    // Liu's OptMinMem over the full arena.
    let t = Instant::now();
    let (s_opt, peak_opt) = opt_min_mem(&tree);
    println!(
        "OptMinMem: peak {peak_opt}, {:.3}s",
        t.elapsed().as_secs_f64()
    );
    assert_eq!(s_opt.len(), tree.len());
    assert_eq!(opt_min_mem_peak(&tree), peak_opt);

    // Best postorder for peak memory.
    let t = Instant::now();
    let (s_post, peak_post) = post_order_min_mem(&tree);
    println!(
        "PostOrderMinMem: peak {peak_post}, {:.3}s",
        t.elapsed().as_secs_f64()
    );
    assert_eq!(s_post.len(), tree.len());
    assert!(s_post.is_postorder(&tree));

    // Peak-memory monotonicity: LB ≤ optimal ≤ best postorder ≤ Σ w.
    let lb = tree.min_feasible_memory();
    let total = tree.total_weight();
    assert!(lb <= peak_opt, "optimal peak below the feasibility bound");
    assert!(
        peak_opt <= peak_post,
        "a postorder beat the optimal traversal: {peak_post} < {peak_opt}"
    );
    assert!(peak_post <= total, "peak above the total weight");

    // Replay the optimal traversal out-of-core at the Middle bound and
    // check the simulated in-core peak agrees with the solver's claim.
    let m = (lb + peak_opt) / 2;
    let t = Instant::now();
    let io = fif_io(&tree, &s_opt, m).unwrap();
    println!(
        "FiF at Mmid={m}: io {}, {:.3}s",
        io.total_io,
        t.elapsed().as_secs_f64()
    );
    assert!(io.total_io > 0, "Mmid is below the peak, I/O must occur");
    assert_eq!(io.peak_in_core, peak_memory(&tree, &s_opt).unwrap());
    assert_eq!(io.peak_in_core, peak_opt);

    println!("total: {:.3}s", started.elapsed().as_secs_f64());
}

/// The best-postorder I/O analysis also completes at this scale and its
/// prediction matches the FiF simulation exactly.
#[test]
#[ignore = "million-node stress: run explicitly in release (CI does)"]
fn million_node_postorder_io_analysis_matches_simulation() {
    let tree = million_node_tree();
    let lb = tree.min_feasible_memory();
    let m = lb + (opt_min_mem_peak(&tree) - lb) / 4;

    let t = Instant::now();
    let (schedule, analysis) = post_order_min_io(&tree, m);
    println!(
        "PostOrderMinIO: predicted io {}, {:.3}s",
        analysis.total_io(&tree),
        t.elapsed().as_secs_f64()
    );
    let sim = fif_io(&tree, &schedule, m).unwrap();
    assert_eq!(
        analysis.total_io(&tree),
        sim.total_io,
        "analysis and FiF simulation disagree at the million-node scale"
    );
}
